"""Tests for sweeps, metrics helpers, tables and figure definitions."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import FIGURES, run_figure
from repro.experiments.metrics import (
    METRICS,
    mean_of_summaries,
    reduction,
    summary_reduction,
)
from repro.experiments.sweep import run_sweep
from repro.experiments.tables import (
    figure_series,
    format_figure,
    format_metric_table,
    format_reductions,
)


class TestMetrics:
    def test_reduction_positive_when_faster(self):
        assert reduction(10.0, 5.0) == pytest.approx(50.0)

    def test_reduction_negative_when_slower(self):
        assert reduction(10.0, 12.0) == pytest.approx(-20.0)

    def test_reduction_nan_on_bad_baseline(self):
        assert math.isnan(reduction(0.0, 5.0))
        assert math.isnan(reduction(float("nan"), 5.0))

    def test_summary_reduction(self):
        baseline = {m: 10.0 for m in METRICS}
        other = {m: 5.0 for m in METRICS}
        assert summary_reduction(baseline, other) == {
            m: pytest.approx(50.0) for m in METRICS
        }

    def test_mean_of_summaries(self):
        merged = mean_of_summaries([{"mean": 1.0}, {"mean": 3.0}])
        assert merged == {"mean": 2.0}

    def test_mean_of_empty_raises(self):
        with pytest.raises(ConfigurationError):
            mean_of_summaries([])


@pytest.fixture(scope="module")
def small_sweep():
    base = ExperimentConfig.tiny(seed=1, total_requests=1500)
    return run_sweep(
        base,
        parameter="utilization",
        values=[0.3, 1.0],
        schemes=["clirs", "netrs-tor"],
        repetitions=1,
    )


class TestRunSweep:
    def test_grid_complete(self, small_sweep):
        assert set(small_sweep.cells) == {
            (0.3, "clirs"),
            (0.3, "netrs-tor"),
            (1.0, "clirs"),
            (1.0, "netrs-tor"),
        }

    def test_series_extraction(self, small_sweep):
        series = small_sweep.series("clirs", "mean")
        assert len(series) == 2
        assert all(v > 0 for v in series)

    def test_latency_rises_with_utilization(self, small_sweep):
        for scheme in ("clirs", "netrs-tor"):
            series = small_sweep.series(scheme, "mean")
            assert series[1] > series[0]

    def test_missing_cell_raises(self, small_sweep):
        with pytest.raises(ConfigurationError):
            small_sweep.summary(0.5, "clirs")

    def test_unknown_metric_raises(self, small_sweep):
        with pytest.raises(ConfigurationError):
            small_sweep.series("clirs", "p50")

    def test_series_unknown_scheme_raises(self, small_sweep):
        with pytest.raises(ConfigurationError):
            small_sweep.series("netrs-ilp", "mean")

    def test_extras_tracked(self, small_sweep):
        extras = small_sweep.extras[(1.0, "netrs-tor")]
        assert extras["rsnode_count"] >= 1

    def test_validation(self):
        base = ExperimentConfig.tiny()
        with pytest.raises(ConfigurationError):
            run_sweep(base, parameter="utilization", values=[], schemes=["clirs"])
        with pytest.raises(ConfigurationError):
            run_sweep(base, parameter="nope", values=[1], schemes=["clirs"])

    def test_repetitions_average(self):
        base = ExperimentConfig.tiny(seed=1)
        sweep = run_sweep(
            base,
            parameter="utilization",
            values=[0.7],
            schemes=["clirs"],
            repetitions=2,
        )
        merged = sweep.summary(0.7, "clirs")
        single = run_sweep(
            base,
            parameter="utilization",
            values=[0.7],
            schemes=["clirs"],
            repetitions=1,
        ).summary(0.7, "clirs")
        assert merged != single  # averaging two seeds changes the numbers


class TestTables:
    def test_metric_table_contains_values(self, small_sweep):
        text = format_metric_table(small_sweep, "mean")
        assert "CliRS" in text
        assert "NetRS-ToR" in text
        assert "0.3" in text and "1.0" in text

    def test_format_figure_has_all_metrics(self, small_sweep):
        text = format_figure(small_sweep, title="test figure")
        assert text.startswith("test figure")
        for label in ("Avg.", "95th", "99th", "99.9th"):
            assert label in text

    def test_format_reductions(self, small_sweep):
        text = format_reductions(
            small_sweep, baseline="clirs", target="netrs-tor"
        )
        assert "latency reduction" in text

    def test_figure_series_shape(self, small_sweep):
        data = figure_series(small_sweep)
        assert set(data) == set(METRICS)
        assert set(data["mean"]) == {"clirs", "netrs-tor"}


class TestFigureSpecs:
    def test_all_figures_defined(self):
        assert set(FIGURES) == {"fig4", "fig5", "fig6", "fig7"}

    def test_fig4_sweeps_clients(self):
        spec = FIGURES["fig4"]
        assert spec.parameter == "n_clients"
        assert spec.paper_values == (100, 300, 500, 700)

    def test_values_profile_selection(self):
        spec = FIGURES["fig4"]
        assert spec.values("paper") == (100, 300, 500, 700)
        assert spec.values("small") == (16, 32, 64, 96)
        with pytest.raises(ConfigurationError):
            spec.values("huge")

    def test_run_figure_tiny(self):
        """End-to-end figure run on a tiny override grid."""
        sweep = run_figure(
            "fig6",
            profile="small",
            seed=1,
            total_requests=400,
            values=[0.5],
            schemes=["clirs", "netrs-tor"],
        )
        assert sweep.parameter == "utilization"
        assert (0.5, "clirs") in sweep.cells

    def test_unknown_figure(self):
        with pytest.raises(ConfigurationError):
            run_figure("fig9")


class TestBarAndMarkdownRendering:
    def test_bars_scale_and_label(self, small_sweep):
        from repro.experiments.tables import format_bars

        text = format_bars(small_sweep, "mean", width=20)
        assert "CliRS" in text and "NetRS-ToR" in text
        assert "#" in text
        longest = max(line.count("#") for line in text.splitlines())
        assert longest == 20  # the peak value owns the full width

    def test_bars_reject_unknown_metric(self, small_sweep):
        from repro.experiments.tables import format_bars

        with pytest.raises(KeyError):
            format_bars(small_sweep, "p50")

    def test_markdown_report_structure(self, small_sweep):
        from repro.experiments.tables import format_markdown_report

        text = format_markdown_report(small_sweep, title="Test figure")
        assert text.startswith("## Test figure")
        assert "| utilization |" in text
        assert text.count("|") > 20

    def test_markdown_report_includes_reductions_when_possible(self):
        base = ExperimentConfig.tiny(seed=1, total_requests=400)
        sweep = run_sweep(
            base,
            parameter="utilization",
            values=[0.5],
            schemes=["clirs", "netrs-ilp"],
        )
        from repro.experiments.tables import format_markdown_report

        text = format_markdown_report(sweep, title="t")
        assert "Reductions" in text
