"""Tests for confidence intervals and paired scheme comparisons."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.statistics import (
    Estimate,
    mean_and_ci,
    paired_comparison,
)
from repro.experiments.sweep import run_sweep


class TestMeanAndCi:
    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_and_ci([])

    def test_confidence_bounds_checked(self):
        with pytest.raises(ConfigurationError):
            mean_and_ci([1.0, 2.0], confidence=1.5)

    def test_single_sample_infinite_interval(self):
        estimate = mean_and_ci([3.0])
        assert estimate.mean == 3.0
        assert math.isinf(estimate.half_width)

    def test_identical_samples_zero_width(self):
        estimate = mean_and_ci([2.0, 2.0, 2.0])
        assert estimate.mean == 2.0
        assert estimate.half_width == 0.0

    def test_interval_contains_true_mean_usually(self):
        """~95% of intervals from N(10, 2) samples should cover 10."""
        rng = np.random.default_rng(0)
        hits = 0
        trials = 300
        for _ in range(trials):
            samples = rng.normal(10.0, 2.0, size=10)
            estimate = mean_and_ci(list(samples))
            if estimate.low <= 10.0 <= estimate.high:
                hits += 1
        assert hits / trials == pytest.approx(0.95, abs=0.04)

    def test_interval_shrinks_with_samples(self):
        rng = np.random.default_rng(1)
        small = mean_and_ci(list(rng.normal(0, 1, size=5)))
        large = mean_and_ci(list(rng.normal(0, 1, size=100)))
        assert large.half_width < small.half_width

    def test_str_format(self):
        assert "+/-" in str(Estimate(1.0, 0.1, 0.95, 5))


class TestPairedComparison:
    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            paired_comparison([1.0], [1.0, 2.0])

    def test_needs_two_pairs(self):
        with pytest.raises(ConfigurationError):
            paired_comparison([1.0], [2.0])

    def test_clear_improvement_is_significant(self):
        baseline = [10.0, 11.0, 10.5, 10.8, 10.2]
        other = [5.0, 5.5, 5.2, 5.4, 5.1]
        comparison = paired_comparison(baseline, other)
        assert comparison.other_is_faster
        assert comparison.significant
        assert comparison.mean_difference == pytest.approx(5.26, rel=0.01)

    def test_noise_is_not_significant(self):
        rng = np.random.default_rng(2)
        baseline = list(rng.normal(10, 1, size=5))
        other = [b + rng.normal(0, 0.01) for b in baseline]
        comparison = paired_comparison(baseline, other)
        assert not comparison.significant

    def test_constant_difference(self):
        comparison = paired_comparison([2.0, 3.0], [1.0, 2.0])
        assert comparison.mean_difference == 1.0
        assert comparison.p_value == 0.0


class TestSweepStatistics:
    @pytest.fixture(scope="class")
    def sweep(self):
        base = ExperimentConfig.tiny(seed=1, total_requests=800)
        return run_sweep(
            base,
            parameter="utilization",
            values=[0.9],
            schemes=["clirs", "netrs-tor"],
            repetitions=3,
        )

    def test_raw_repetitions_stored(self, sweep):
        assert len(sweep.raw[(0.9, "clirs")]) == 3

    def test_confidence_interval(self, sweep):
        estimate = sweep.confidence_interval(0.9, "clirs", "mean")
        assert estimate.samples == 3
        assert estimate.low <= estimate.mean <= estimate.high

    def test_compare_schemes(self, sweep):
        comparison = sweep.compare_schemes(0.9, "clirs", "netrs-tor", "mean")
        assert isinstance(comparison.p_value, float)

    def test_missing_raw_raises(self, sweep):
        with pytest.raises(ConfigurationError):
            sweep.confidence_interval(0.1, "clirs", "mean")
