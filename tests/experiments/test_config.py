"""Tests for experiment configuration and derived quantities."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import (
    NETRS_SCHEMES,
    SCHEMES,
    ExperimentConfig,
)


class TestDerived:
    def test_arrival_rate_matches_paper_definition(self):
        """Paper profile: 0.9 * 100 * 4 / 4ms = 90,000 requests/s."""
        config = ExperimentConfig.paper()
        assert config.arrival_rate() == pytest.approx(90_000.0)

    def test_effective_utilization(self):
        """Paper: 2 * 0.9 / (1 + 3) = 45%."""
        config = ExperimentConfig.paper()
        assert config.effective_utilization() == pytest.approx(0.45)

    def test_extra_hops_budget_is_fraction_of_rate(self):
        config = ExperimentConfig.paper()
        assert config.extra_hops_budget() == pytest.approx(0.2 * 90_000.0)

    def test_prior_service_rate(self):
        config = ExperimentConfig()
        assert config.prior_service_rate() == pytest.approx(4 / 4e-3)

    def test_warmup_requests(self):
        config = ExperimentConfig(total_requests=1000, warmup_fraction=0.1)
        assert config.warmup_requests() == 100

    def test_total_hosts(self):
        assert ExperimentConfig(fat_tree_k=16).total_hosts() == 1024
        assert ExperimentConfig(fat_tree_k=8).total_hosts() == 128


class TestSchemes:
    def test_scheme_flags(self):
        assert not ExperimentConfig(scheme="clirs").netrs
        assert not ExperimentConfig(scheme="clirs").redundancy_enabled
        assert ExperimentConfig(scheme="clirs-r95").redundancy_enabled
        for scheme in NETRS_SCHEMES:
            assert ExperimentConfig(scheme=scheme).netrs

    def test_solver_mapping(self):
        assert ExperimentConfig(scheme="netrs-ilp").solver == "ilp"
        assert ExperimentConfig(scheme="netrs-tor").solver == "tor"
        assert ExperimentConfig(scheme="netrs-greedy").solver == "greedy"
        assert ExperimentConfig(scheme="netrs-core").solver == "core-only"

    def test_all_schemes_valid(self):
        for scheme in SCHEMES:
            ExperimentConfig.tiny(scheme=scheme).validate()


class TestValidation:
    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(scheme="bogus").validate()

    def test_odd_fat_tree(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(fat_tree_k=5).validate()

    def test_too_many_roles(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(
                fat_tree_k=4, n_servers=10, n_clients=10
            ).validate()

    def test_servers_below_replication(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(n_servers=2, replication_factor=3).validate()

    def test_skew_bounds(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(demand_skew=1.5).validate()

    def test_warmup_bounds(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(warmup_fraction=1.0).validate()

    def test_replace_validates(self):
        config = ExperimentConfig.tiny()
        with pytest.raises(ConfigurationError):
            config.replace(scheme="bogus")

    def test_replace_returns_copy(self):
        config = ExperimentConfig.tiny()
        other = config.replace(seed=9)
        assert other.seed == 9
        assert config.seed != 9


class TestProfiles:
    def test_paper_profile_dimensions(self):
        config = ExperimentConfig.paper(scheme="netrs-ilp")
        assert config.fat_tree_k == 16
        assert config.n_servers == 100
        assert config.n_clients == 500
        assert config.total_requests == 6_000_000
        assert config.key_space == 100_000_000
        config.validate()

    def test_small_profile_fits_topology(self):
        config = ExperimentConfig.small()
        assert config.n_servers + config.n_clients <= config.total_hosts()

    def test_overrides_apply(self):
        config = ExperimentConfig.small(scheme="netrs-tor", n_clients=16)
        assert config.n_clients == 16
        assert config.scheme == "netrs-tor"

    def test_tiny_is_fast_sized(self):
        config = ExperimentConfig.tiny()
        assert config.total_requests <= 1000
