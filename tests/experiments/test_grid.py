"""Tests for two-parameter grids and heatmap rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.grid import GridResult, format_heatmap, run_grid


@pytest.fixture(scope="module")
def grid():
    base = ExperimentConfig.tiny(seed=1, total_requests=500)
    return run_grid(
        base,
        row_parameter="utilization",
        row_values=[0.4, 1.0],
        column_parameter="n_clients",
        column_values=[4, 8],
        schemes=["clirs", "netrs-tor"],
    )


class TestRunGrid:
    def test_full_cross_product(self, grid):
        assert set(grid.cells) == {(0.4, 4), (0.4, 8), (1.0, 4), (1.0, 8)}
        for cell in grid.cells.values():
            assert set(cell) == {"clirs", "netrs-tor"}

    def test_value_lookup(self, grid):
        assert grid.value(0.4, 4, "clirs", "mean") > 0
        with pytest.raises(ConfigurationError):
            grid.value(0.5, 4, "clirs", "mean")

    def test_reduction_at(self, grid):
        cut = grid.reduction_at(1.0, 8, "clirs", "netrs-tor", "mean")
        assert isinstance(cut, float)

    def test_validation(self):
        base = ExperimentConfig.tiny()
        with pytest.raises(ConfigurationError):
            run_grid(
                base,
                row_parameter="utilization",
                row_values=[0.5],
                column_parameter="utilization",
                column_values=[0.5],
                schemes=["clirs"],
            )
        with pytest.raises(ConfigurationError):
            run_grid(
                base,
                row_parameter="nope",
                row_values=[1],
                column_parameter="n_clients",
                column_values=[4],
                schemes=["clirs"],
            )
        with pytest.raises(ConfigurationError):
            run_grid(
                base,
                row_parameter="utilization",
                row_values=[],
                column_parameter="n_clients",
                column_values=[4],
                schemes=["clirs"],
            )


class TestHeatmap:
    def test_absolute_mode(self, grid):
        text = format_heatmap(grid, metric="mean", scheme="clirs")
        assert "mean latency of clirs" in text
        assert "utilization" in text
        assert "n_clients" in text

    def test_reduction_mode(self, grid):
        text = format_heatmap(
            grid, metric="mean", baseline="clirs", other="netrs-tor"
        )
        assert "reduction of netrs-tor vs clirs" in text

    def test_mode_validation(self, grid):
        with pytest.raises(ConfigurationError):
            format_heatmap(grid, metric="mean")
        with pytest.raises(ConfigurationError):
            format_heatmap(grid, metric="mean", baseline="clirs")
        with pytest.raises(ConfigurationError):
            format_heatmap(grid, metric="p50", scheme="clirs")

    def test_every_cell_rendered(self, grid):
        text = format_heatmap(grid, metric="mean", scheme="clirs")
        data_lines = [l for l in text.splitlines() if "|" in l and "---" not in l]
        # Header + one line per row value.
        assert len(data_lines) == 1 + len(grid.row_values)

    def test_uniform_grid_does_not_crash(self):
        grid = GridResult(
            row_parameter="r",
            column_parameter="c",
            row_values=[1],
            column_values=[2],
            schemes=["clirs"],
        )
        grid.cells[(1, 2)] = {
            "clirs": {"mean": 5.0, "p95": 5.0, "p99": 5.0, "p999": 5.0}
        }
        text = format_heatmap(grid, metric="mean", scheme="clirs")
        assert "5.0" in text
