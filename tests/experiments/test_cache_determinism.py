"""Determinism of the hot-path optimizations (ISSUE 2 acceptance criterion).

The routing cache and the engine's cancelled-timer compaction are *pure*
performance knobs: running the same seed with them enabled must produce
byte-identical results to running with both bypassed
(``route_cache_size=0, engine_compaction=False``), down to packet-level
traces and sweep JSON dumps.  Mirrors the style of
``tests/exec/test_determinism.py``.
"""

import itertools

import pytest

from repro.analysis import attach_probes
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import build_scenario
from repro.experiments.sweep import run_sweep
from repro.kvstore import client as client_module

#: The cache-bypass overrides: everything computed from scratch, no
#: compaction, no pre-drawn RNG blocks, reference event-core loops.
BYPASS = dict(
    route_cache_size=0,
    engine_compaction=False,
    rng_batch_size=0,
    engine_backend="python",
)


def _run_with_trace(config):
    # Request IDs come from a process-global counter and feed the ECMP flow
    # key; reset it so both runs see identical packet identities, exactly as
    # two fresh processes would.
    client_module._request_ids = itertools.count(1)
    scenario = build_scenario(config)
    probes = attach_probes(scenario, staleness=False, queues=False)
    result = run_experiment(config, scenario=scenario)
    return result, probes.trace


@pytest.mark.parametrize("scheme", ["clirs-r95", "netrs-ilp"])
def test_experiment_identical_with_and_without_caches(
    scheme, backend, deterministic_sim
):
    """Same seed, caches on vs. bypassed: identical metrics and traces.

    ``clirs-r95`` exercises timer cancellation (redundant-request timers)
    and therefore heap compaction; ``netrs-ilp`` exercises in-network
    steering where packets change route targets mid-flight.  The cached
    side runs on every installed event-core backend (the ``backend``
    fixture); the bypass side always runs the pure-Python reference loops.
    """
    config = ExperimentConfig.tiny(scheme=scheme, seed=7).replace(
        engine_backend=backend
    )
    bypass = config.replace(**BYPASS)

    cached_result, cached_trace = _run_with_trace(config)
    plain_result, plain_trace = _run_with_trace(bypass)

    assert cached_result.summary() == plain_result.summary()
    assert cached_result.completed_requests == plain_result.completed_requests
    assert cached_result.transmissions == plain_result.transmissions
    assert cached_result.bytes_transferred == plain_result.bytes_transferred
    assert cached_result.sim_duration == plain_result.sim_duration
    # Packet-level: every request record (timestamps, hops, chosen server)
    # must match byte for byte.
    assert cached_trace.to_csv() == plain_trace.to_csv()


def test_sweep_json_identical_with_and_without_caches(backend, deterministic_sim):
    base = ExperimentConfig.tiny(seed=3, total_requests=500).replace(
        engine_backend=backend
    )
    kwargs = dict(
        parameter="utilization",
        values=[0.3, 0.9],
        schemes=["clirs", "netrs-tor"],
        repetitions=1,
    )
    cached = run_sweep(base, **kwargs)
    plain = run_sweep(base.replace(**BYPASS), **kwargs)
    assert cached.to_json() == plain.to_json()
    assert cached.raw == plain.raw
    assert cached.extras == plain.extras
    assert cached.cells == plain.cells


def test_events_executed_identical_with_and_without_compaction(
    backend, deterministic_sim
):
    """events_executed counts only callbacks that ran, so compaction (which
    merely discards cancelled entries earlier) must not change it."""
    config = ExperimentConfig.tiny(scheme="clirs-r95", seed=11).replace(
        engine_backend=backend
    )
    cached = run_experiment(config)
    plain = run_experiment(config.replace(**BYPASS))
    assert cached.events_executed == plain.events_executed
