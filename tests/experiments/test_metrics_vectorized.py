"""Vectorized metrics must equal the pure-Python formulas they replaced
(ISSUE 4 acceptance criterion).

The end-of-run aggregation path (``LatencyRecorder.summary``,
``mean_of_summaries``, ``mean_and_ci``, the load-share helpers) moved to
numpy for speed; these tests re-derive each value with plain Python
arithmetic on recorded traces and demand exact (or full-precision) matches,
so vectorization stays a pure performance knob.
"""

import math

import numpy as np
import pytest

from repro.analysis.loads import jain_fairness, server_load_shares
from repro.experiments.metrics import mean_of_summaries
from repro.experiments.statistics import mean_and_ci
from repro.sim.probes import LatencyRecorder
from repro.sim.rng import stream_from_seed


def _trace(n=5003, seed=42):
    """A latency-like trace: positive, heavy-tailed, unsorted."""
    rng = stream_from_seed(seed, "metrics.trace")
    return [float(v) for v in rng.exponential(1e-3, size=n)]


def _percentile_linear(sorted_samples, q):
    """NumPy's default 'linear' quantile, spelled out in pure Python."""
    n = len(sorted_samples)
    rank = (q / 100.0) * (n - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return sorted_samples[low]
    frac = rank - low
    return sorted_samples[low] * (1 - frac) + sorted_samples[high] * frac


class TestLatencyRecorder:
    def test_summary_matches_pure_python(self):
        samples = _trace()
        recorder = LatencyRecorder()
        recorder.extend(samples)
        summary = recorder.summary()
        ordered = sorted(samples)
        for key, q in (("p95", 95.0), ("p99", 99.0), ("p999", 99.9)):
            assert summary[key] == pytest.approx(
                _percentile_linear(ordered, q), rel=0, abs=0
            ), key
        # The mean is computed over the *sorted* array (numpy pairwise
        # summation); re-derive it the same way.
        assert summary["mean"] == float(np.asarray(ordered).mean())

    def test_summary_matches_per_quantile_calls(self):
        recorder = LatencyRecorder()
        recorder.extend(_trace(997))
        summary = recorder.summary()
        assert summary["p95"] == recorder.percentile(95.0)
        assert summary["p99"] == recorder.percentile(99.0)
        assert summary["p999"] == recorder.percentile(99.9)
        assert summary["mean"] == recorder.mean()

    def test_empty_recorder_is_all_nan(self):
        summary = LatencyRecorder().summary()
        assert set(summary) == {"mean", "p95", "p99", "p999"}
        assert all(math.isnan(v) for v in summary.values())


class TestAggregation:
    def test_mean_of_summaries_matches_pure_python(self):
        summaries = []
        for seed in range(7):
            recorder = LatencyRecorder()
            recorder.extend(_trace(503, seed=seed))
            summaries.append(recorder.summary())
        merged = mean_of_summaries(summaries)
        for key in summaries[0]:
            column = [s[key] for s in summaries]
            # np.mean over a column equals the vectorized row-matrix mean.
            assert merged[key] == float(np.mean(column)), key

    def test_mean_and_ci_matches_pure_python(self):
        samples = _trace(25)
        estimate = mean_and_ci(samples, confidence=0.95)
        n = len(samples)
        mean = float(np.mean(samples))
        assert estimate.mean == mean
        variance = float(np.var(samples, ddof=1))
        from scipy import stats

        t_value = stats.t.ppf(0.975, df=n - 1)
        assert estimate.half_width == pytest.approx(
            t_value * math.sqrt(variance / n), rel=1e-12
        )


class TestLoadHelpers:
    def test_server_load_shares_matches_pure_python(self):
        counts = {"s0": 120, "s1": 37, "s2": 0, "s3": 843}
        shares = server_load_shares(counts)
        total = sum(counts.values())
        for name, count in counts.items():
            assert shares[name] == count / total

    def test_jain_fairness_matches_pure_python(self):
        counts = {"s0": 120, "s1": 37, "s2": 1, "s3": 843}
        values = list(counts.values())
        total = sum(values)
        squares = sum(v * v for v in values)
        want = (total * total) / (len(values) * squares)
        assert jain_fairness(counts) == pytest.approx(want, rel=1e-15)
