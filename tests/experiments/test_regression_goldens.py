"""Golden regression tests: exact results for fixed seeds.

The simulation is fully deterministic for a given seed, so these values
must not drift.  If a deliberate behavioural change moves them, re-record
the goldens (`python -m tests.experiments.test_regression_goldens` prints
fresh values) and explain the change in the commit.

Unlike the shape tests these guard against *accidental* semantic changes --
an off-by-one in queue handling, a reordered RNG draw -- that could silently
alter results while still "looking right".
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment

#: scheme -> (mean_ms, p99_ms, transmissions, rsnode_count)
GOLDENS = {
    "clirs": (2.5231663236202495, 12.601789163305439, 6500, 0),
    "clirs-r95": (2.3937341439397897, 8.951745362420295, 7219, 0),
    "netrs-tor": (2.5343442122893074, 14.689889904494255, 6444, 6),
    "netrs-ilp": (2.42953678625917, 12.835605980737673, 6636, 4),
}


@pytest.mark.parametrize("scheme", sorted(GOLDENS))
def test_tiny_seed42_unchanged(scheme):
    result = run_experiment(ExperimentConfig.tiny(scheme=scheme, seed=42))
    mean_ms, p99_ms, transmissions, rsnodes = GOLDENS[scheme]
    summary = result.summary()
    assert summary["mean"] == pytest.approx(mean_ms, rel=1e-12)
    assert summary["p99"] == pytest.approx(p99_ms, rel=1e-12)
    assert result.transmissions == transmissions
    assert result.rsnode_count == rsnodes


def _print_goldens():  # pragma: no cover - manual re-recording helper
    for scheme in sorted(GOLDENS):
        result = run_experiment(ExperimentConfig.tiny(scheme=scheme, seed=42))
        summary = result.summary()
        print(
            f'    "{scheme}": ({summary["mean"]!r}, {summary["p99"]!r}, '
            f"{result.transmissions}, {result.rsnode_count}),"
        )


if __name__ == "__main__":  # pragma: no cover
    _print_goldens()
