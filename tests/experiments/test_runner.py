"""Tests for the experiment runner and result accounting."""

import math

import pytest

from repro.experiments.config import SCHEMES, ExperimentConfig
from repro.experiments.runner import run_experiment


class TestRunExperiment:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_all_schemes_complete(self, scheme):
        config = ExperimentConfig.tiny(scheme=scheme, seed=1)
        result = run_experiment(config)
        assert result.completed_requests == config.total_requests
        recorded = config.total_requests - config.warmup_requests()
        assert len(result.latency) == recorded

    def test_latency_metrics_ordered(self):
        result = run_experiment(ExperimentConfig.tiny(seed=2))
        summary = result.summary()
        assert 0 < summary["mean"]
        assert summary["mean"] <= summary["p95"] <= summary["p99"] <= summary["p999"]

    def test_latency_floor_is_service_plus_network(self):
        """No response can beat one network round trip."""
        config = ExperimentConfig.tiny(seed=2)
        result = run_experiment(config)
        floor_seconds = 2 * 2 * config.host_link_latency  # >= 2 hops each way
        assert min(result.latency.samples) >= floor_seconds

    def test_deterministic_given_seed(self):
        a = run_experiment(ExperimentConfig.tiny(scheme="netrs-ilp", seed=7))
        b = run_experiment(ExperimentConfig.tiny(scheme="netrs-ilp", seed=7))
        assert a.summary() == b.summary()
        assert a.transmissions == b.transmissions

    def test_seeds_differ(self):
        a = run_experiment(ExperimentConfig.tiny(seed=1))
        b = run_experiment(ExperimentConfig.tiny(seed=2))
        assert a.summary() != b.summary()

    def test_fabric_accounting_positive(self):
        result = run_experiment(ExperimentConfig.tiny(seed=1))
        assert result.transmissions > 0
        assert result.bytes_transferred > 0
        # Trunk collapse delivers a whole mechanical switch run as one
        # event, so transmissions (per-hop accounting) now exceed engine
        # events; each request still needs several events end to end.
        assert result.events_executed > result.completed_requests

    def test_netrs_records_plan_stats(self):
        result = run_experiment(ExperimentConfig.tiny(scheme="netrs-ilp", seed=1))
        assert result.rsnode_count >= 1
        assert result.plan_description
        assert result.selector_requests_handled == result.config.total_requests
        assert 0 <= result.accelerator_max_utilization <= 1

    def test_r95_sends_redundant_requests(self):
        config = ExperimentConfig.tiny(
            scheme="clirs-r95", seed=1, total_requests=900, utilization=1.2
        )
        result = run_experiment(config)
        assert result.redundant_requests > 0

    def test_describe_readable(self):
        result = run_experiment(ExperimentConfig.tiny(scheme="netrs-ilp", seed=1))
        text = result.describe()
        assert "netrs-ilp" in text
        assert "rsnodes=" in text

    def test_sim_duration_close_to_expected(self):
        config = ExperimentConfig.tiny(seed=1)
        result = run_experiment(config)
        expected = config.total_requests / config.arrival_rate()
        assert result.sim_duration == pytest.approx(expected, rel=0.5)

    def test_keep_scenario(self):
        result = run_experiment(
            ExperimentConfig.tiny(seed=1), keep_scenario=True
        )
        assert result.scenario.tracker.completed == result.completed_requests

    def test_no_nan_metrics(self):
        result = run_experiment(ExperimentConfig.tiny(seed=4))
        assert not any(math.isnan(v) for v in result.summary().values())


class TestClosedLoopMode:
    def test_closed_loop_completes(self):
        config = ExperimentConfig.tiny(
            scheme="clirs", seed=1, workload_mode="closed", closed_window=2
        )
        result = run_experiment(config)
        assert result.completed_requests == config.total_requests

    def test_closed_loop_netrs(self):
        config = ExperimentConfig.tiny(
            scheme="netrs-tor", seed=1, workload_mode="closed"
        )
        result = run_experiment(config)
        assert result.completed_requests == config.total_requests
        assert result.rsnode_count >= 1

    def test_closed_loop_rejects_skew(self):
        import pytest as _pytest

        from repro.errors import ConfigurationError

        with _pytest.raises(ConfigurationError):
            ExperimentConfig.tiny(
                scheme="clirs", workload_mode="closed", demand_skew=0.8
            )

    def test_larger_window_raises_throughput(self):
        narrow = run_experiment(
            ExperimentConfig.tiny(
                scheme="clirs", seed=1, workload_mode="closed", closed_window=1
            )
        )
        wide = run_experiment(
            ExperimentConfig.tiny(
                scheme="clirs", seed=1, workload_mode="closed", closed_window=4
            )
        )
        assert wide.sim_duration < narrow.sim_duration


class TestBandwidthModeling:
    def test_realistic_bandwidth_barely_changes_results(self):
        """10 Gbps links: ~1 us per KB, negligible next to 4 ms service."""
        pure = run_experiment(ExperimentConfig.tiny(seed=5))
        modeled = run_experiment(
            ExperimentConfig.tiny(seed=5, link_bandwidth=10e9)
        )
        assert modeled.summary()["mean"] == pytest.approx(
            pure.summary()["mean"], rel=0.02
        )

    def test_starved_links_inflate_latency(self):
        pure = run_experiment(ExperimentConfig.tiny(seed=5))
        starved = run_experiment(
            ExperimentConfig.tiny(seed=5, link_bandwidth=20e6)
        )
        assert starved.summary()["mean"] > pure.summary()["mean"]
