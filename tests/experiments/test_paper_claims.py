"""Shape-level reproduction of the paper's section V-B claims.

These run the scaled-down profile with enough requests for stable tail
percentiles, so they are marked ``slow`` (a couple of minutes total).
Deselect with ``-m "not slow"``.

We assert the *shape* of the results -- orderings, trends, crossovers -- not
the paper's absolute numbers, per DESIGN.md.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import reduction
from repro.experiments.runner import run_experiment

pytestmark = pytest.mark.slow

REQUESTS = 20_000


def _summary(scheme, seed=1, **overrides):
    config = ExperimentConfig.small(
        scheme=scheme, seed=seed, total_requests=REQUESTS, **overrides
    )
    return run_experiment(config).summary()


@pytest.fixture(scope="module")
def defaults():
    """The three main schemes at the default operating point."""
    return {
        scheme: _summary(scheme)
        for scheme in ("clirs", "netrs-tor", "netrs-ilp")
    }


class TestHeadlineOrdering:
    def test_netrs_ilp_beats_clirs_on_every_metric(self, defaults):
        for metric in ("mean", "p95", "p99", "p999"):
            assert defaults["netrs-ilp"][metric] < defaults["clirs"][metric]

    def test_netrs_tor_beats_clirs_on_mean_and_tail(self, defaults):
        assert defaults["netrs-tor"]["mean"] < defaults["clirs"]["mean"]
        assert defaults["netrs-tor"]["p99"] < defaults["clirs"]["p99"]

    def test_netrs_ilp_beats_netrs_tor(self, defaults):
        assert defaults["netrs-ilp"]["mean"] < defaults["netrs-tor"]["mean"]
        assert defaults["netrs-ilp"]["p99"] < defaults["netrs-tor"]["p99"]

    def test_reductions_are_substantial(self, defaults):
        """Paper reports 32-48% mean and 34-56% p99 reduction at defaults."""
        mean_cut = reduction(
            defaults["clirs"]["mean"], defaults["netrs-ilp"]["mean"]
        )
        p99_cut = reduction(
            defaults["clirs"]["p99"], defaults["netrs-ilp"]["p99"]
        )
        assert mean_cut > 15.0
        assert p99_cut > 15.0


class TestFig4Shape:
    """CliRS degrades as clients multiply; NetRS stays flat."""

    def test_client_scaling(self):
        clirs_small = _summary("clirs", n_clients=16)
        clirs_large = _summary("clirs", n_clients=96)
        ilp_small = _summary("netrs-ilp", n_clients=16)
        ilp_large = _summary("netrs-ilp", n_clients=96)
        # CliRS gets worse with more RSNodes (more herding, staler info).
        assert clirs_large["mean"] > clirs_small["mean"]
        # NetRS's RSNode count is independent of the client count: the
        # latency change should be comparatively small.
        clirs_growth = clirs_large["mean"] / clirs_small["mean"]
        ilp_growth = ilp_large["mean"] / ilp_small["mean"]
        assert ilp_growth < clirs_growth
        # And NetRS-ILP wins at the large end.
        assert ilp_large["mean"] < clirs_large["mean"]


class TestFig5Shape:
    """NetRS's advantage shrinks as demand skew rises."""

    def test_skew_narrows_the_gap(self):
        cut_none = reduction(
            _summary("clirs")["mean"], _summary("netrs-ilp")["mean"]
        )
        cut_heavy = reduction(
            _summary("clirs", demand_skew=0.95)["mean"],
            _summary("netrs-ilp", demand_skew=0.95)["mean"],
        )
        assert cut_heavy < cut_none
        assert cut_heavy > 0  # NetRS still wins


class TestFig6Shape:
    """Latency rises with utilization; NetRS-ILP's edge widens when loaded."""

    def test_utilization_trend(self):
        low = _summary("clirs", utilization=0.3)
        high = _summary("clirs", utilization=0.9)
        assert high["mean"] > low["mean"]

    def test_netrs_ilp_degrades_under_overload(self):
        """At this scale NetRS-ILP's selection keeps queueing flat through
        90% nominal utilization; genuine overload must still hurt it."""
        nominal = _summary("netrs-ilp", utilization=0.9)
        overloaded = _summary("netrs-ilp", utilization=1.5)
        assert overloaded["mean"] > nominal["mean"]

    def test_advantage_widens_with_load(self):
        cut_low = reduction(
            _summary("clirs", utilization=0.3)["mean"],
            _summary("netrs-ilp", utilization=0.3)["mean"],
        )
        cut_high = reduction(
            _summary("clirs", utilization=0.9)["mean"],
            _summary("netrs-ilp", utilization=0.9)["mean"],
        )
        assert cut_high > cut_low

    def test_r95_wins_tails_only_at_low_utilization(self):
        clirs_low = _summary("clirs", utilization=0.3)
        r95_low = _summary("clirs-r95", utilization=0.3)
        assert r95_low["p999"] < clirs_low["p999"]
        clirs_high = _summary("clirs", utilization=0.9)
        r95_high = _summary("clirs-r95", utilization=0.9)
        # Under load, redundancy's extra work stops paying off (the paper
        # sees outright blowups); at minimum the tail advantage vanishes
        # or reverses relative to the low-utilization regime.
        gain_low = reduction(clirs_low["p999"], r95_low["p999"])
        gain_high = reduction(clirs_high["p999"], r95_high["p999"])
        assert gain_high < gain_low


class TestFig7Shape:
    """Mean-latency advantage shrinks at small service times; tails keep it."""

    def test_service_time_interplay(self):
        cut_fast = reduction(
            _summary("clirs", mean_service_time=0.1e-3)["mean"],
            _summary("netrs-ilp", mean_service_time=0.1e-3)["mean"],
        )
        cut_slow = reduction(
            _summary("clirs", mean_service_time=4e-3)["mean"],
            _summary("netrs-ilp", mean_service_time=4e-3)["mean"],
        )
        assert cut_slow > cut_fast

    def test_latency_scales_with_service_time(self):
        fast = _summary("netrs-ilp", mean_service_time=0.5e-3)
        slow = _summary("netrs-ilp", mean_service_time=4e-3)
        assert slow["mean"] > fast["mean"]


class TestClaimVerifierAtScale:
    """The `netrs verify` claim suite must fully pass at bench scale."""

    def test_all_claims_reproduce(self):
        from repro.experiments.claims import ClaimVerifier

        verifier = ClaimVerifier(
            base_config=ExperimentConfig.small(
                seed=1, total_requests=REQUESTS
            )
        )
        checks = verifier.all_claims()
        failed = [c for c in checks if not c.passed]
        assert not failed, "; ".join(
            f"{c.claim_id}: {c.details}" for c in failed
        )
