"""Tests for the codified paper-claims verifier (fast, tiny scale)."""

import pytest

from repro.experiments.claims import ClaimCheck, ClaimVerifier, format_claims
from repro.experiments.config import ExperimentConfig


@pytest.fixture(scope="module")
def verifier():
    base = ExperimentConfig.tiny(seed=1, total_requests=1200)
    return ClaimVerifier(base_config=base)


class TestClaimVerifier:
    def test_summary_cached(self, verifier):
        first = verifier.summary("clirs")
        second = verifier.summary("clirs")
        assert first is second

    def test_all_claims_structured(self, verifier):
        checks = verifier.all_claims()
        assert len(checks) == 7
        assert len({c.claim_id for c in checks}) == 7
        for check in checks:
            assert isinstance(check, ClaimCheck)
            assert check.details
            assert isinstance(check.passed, bool)

    def test_headline_claims_hold_even_at_tiny_scale(self, verifier):
        """Ordering/reduction are robust; trend claims need more samples."""
        ordering = verifier.claim_ordering()
        assert "CliRS" in ordering.details

    def test_format_claims(self, verifier):
        checks = [
            ClaimCheck("a", "desc", True, "fine"),
            ClaimCheck("bb", "desc", False, "nope"),
        ]
        text = format_claims(checks)
        assert "[PASS] a " in text
        assert "[FAIL] bb" in text
        assert "1/2 claims reproduced" in text
