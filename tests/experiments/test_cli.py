"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "bogus"])

    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["run", "clirs", "--seed", "4"])
        assert args.scheme == "clirs"
        assert args.seed == 4

    def test_engine_backend_flag_reaches_config(self):
        from repro.cli import _config_from_args

        parser = build_parser()
        args = parser.parse_args(["run", "clirs", "--engine-backend", "python"])
        assert _config_from_args(args, "clirs").engine_backend == "python"
        args = parser.parse_args(["run", "clirs"])
        assert _config_from_args(args, "clirs").engine_backend == "auto"

    def test_engine_backend_flag_rejects_unknown_values(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "clirs", "--engine-backend", "fortran"])

    @pytest.mark.parametrize("command", ["sweep", "figure", "compare"])
    def test_exec_flags_parse(self, command):
        parser = build_parser()
        positional = {
            "sweep": ["sweep", "utilization", "0.5"],
            "figure": ["figure", "fig6"],
            "compare": ["compare"],
        }[command]
        args = parser.parse_args(
            positional + ["--jobs", "4", "--resume", "--run-dir", "runs/x"]
        )
        assert args.jobs == 4
        assert args.resume is True
        assert args.run_dir == "runs/x"

    @pytest.mark.parametrize("command", ["sweep", "figure", "compare"])
    def test_exec_flags_default_to_serial(self, command):
        parser = build_parser()
        positional = {
            "sweep": ["sweep", "utilization", "0.5"],
            "figure": ["figure", "fig6"],
            "compare": ["compare"],
        }[command]
        args = parser.parse_args(positional)
        assert args.jobs == 1
        assert args.resume is False
        assert args.run_dir == ""


class TestCommands:
    def test_topology_command(self, capsys):
        assert main(["topology", "--k", "8"]) == 0
        out = capsys.readouterr().out
        assert "8-ary fat-tree" in out
        assert "hosts: 128" in out

    def test_run_command_tiny(self, capsys):
        code = main(
            [
                "run",
                "clirs",
                "--requests",
                "300",
                "--clients",
                "8",
                "--servers",
                "6",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "latency ms" in out
        assert "scheme=clirs" in out

    def test_plan_command(self, capsys):
        code = main(
            [
                "plan",
                "--scheme",
                "netrs-ilp",
                "--clients",
                "8",
                "--servers",
                "6",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RSP[ilp]" in out
        assert "operator" in out

    def test_figure_command_smallest(self, capsys):
        code = main(
            [
                "figure",
                "fig6",
                "--requests",
                "300",
                "--clients",
                "8",
                "--servers",
                "6",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 6" in out
        assert "latency reduction" in out

    def test_compare_command(self, capsys):
        code = main(
            [
                "compare",
                "--schemes",
                "clirs",
                "netrs-tor",
                "--requests",
                "300",
                "--clients",
                "8",
                "--servers",
                "6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scheme comparison" in out


class TestAnalysisCommands:
    def test_factors_command(self, capsys):
        code = main(
            [
                "factors",
                "--schemes",
                "clirs",
                "--requests",
                "300",
                "--clients",
                "8",
                "--servers",
                "6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "feedback age at selection" in out
        assert "latency breakdown" in out

    def test_trace_command(self, tmp_path, capsys):
        output = tmp_path / "trace.csv"
        code = main(
            [
                "trace",
                "netrs-tor",
                "--output",
                str(output),
                "--requests",
                "300",
                "--clients",
                "8",
                "--servers",
                "6",
            ]
        )
        assert code == 0
        content = output.read_text()
        assert content.startswith("request_id,")
        assert content.count("\n") == 301  # header + one row per request

    def test_figure_markdown_mode(self, capsys):
        code = main(
            [
                "figure",
                "fig6",
                "--markdown",
                "--requests",
                "300",
                "--clients",
                "8",
                "--servers",
                "6",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("## Fig. 6")

    def test_verify_command_tiny(self, capsys):
        code = main(
            [
                "verify",
                "--requests",
                "400",
                "--clients",
                "8",
                "--servers",
                "6",
                "--seed",
                "1",
            ]
        )
        out = capsys.readouterr().out
        # At toy scale some trend claims may legitimately fail; the command
        # must still render every verdict and exit 0/1 accordingly.
        assert "claims reproduced" in out
        assert out.count("[") >= 7
        assert code in (0, 1)

    def test_sweep_command_parallel_matches_serial(self, tmp_path, capsys):
        argv = [
            "sweep",
            "utilization",
            "0.4",
            "0.9",
            "--schemes",
            "clirs",
            "--requests",
            "300",
            "--clients",
            "8",
            "--servers",
            "6",
        ]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert (
            main(argv + ["--jobs", "2", "--run-dir", str(tmp_path / "run")])
            == 0
        )
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out
        # The ledger spooled both jobs; --resume replays without re-running.
        assert (tmp_path / "run" / "ledger.jsonl").exists()
        assert (
            main(argv + ["--resume", "--run-dir", str(tmp_path / "run")]) == 0
        )
        assert capsys.readouterr().out == serial_out

    def test_sweep_command(self, capsys):
        code = main(
            [
                "sweep",
                "utilization",
                "0.4",
                "0.9",
                "--schemes",
                "clirs",
                "--requests",
                "300",
                "--clients",
                "8",
                "--servers",
                "6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep of utilization" in out
        assert "0.4" in out and "0.9" in out
