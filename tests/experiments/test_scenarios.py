"""Tests for scenario construction."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.scenarios import build_scenario


class TestRoles:
    def test_one_role_per_host(self):
        scenario = build_scenario(ExperimentConfig.tiny(seed=1))
        assert not set(scenario.client_hosts) & set(scenario.server_hosts)
        assert len(scenario.client_hosts) == scenario.config.n_clients
        assert len(scenario.server_hosts) == scenario.config.n_servers

    def test_placement_depends_on_seed(self):
        a = build_scenario(ExperimentConfig.tiny(seed=1))
        b = build_scenario(ExperimentConfig.tiny(seed=2))
        assert a.client_hosts != b.client_hosts

    def test_placement_reproducible(self):
        a = build_scenario(ExperimentConfig.tiny(seed=1))
        b = build_scenario(ExperimentConfig.tiny(seed=1))
        assert a.client_hosts == b.client_hosts
        assert a.server_hosts == b.server_hosts


class TestWiring:
    def test_clirs_has_no_accelerators(self):
        scenario = build_scenario(ExperimentConfig.tiny(scheme="clirs"))
        assert scenario.accelerators() == []
        assert scenario.controller is None
        assert scenario.plan is None

    def test_netrs_has_accelerators_everywhere(self):
        scenario = build_scenario(ExperimentConfig.tiny(scheme="netrs-tor"))
        assert len(scenario.accelerators()) == len(scenario.switches)

    def test_netrs_tor_plan_uses_client_tors(self):
        scenario = build_scenario(ExperimentConfig.tiny(scheme="netrs-tor", seed=2))
        plan = scenario.plan
        client_tors = {
            scenario.topology.tor_of(h).name for h in scenario.client_hosts
        }
        rsnode_switches = {
            scenario.controller.operators[oid].spec.switch
            for oid in plan.rsnode_ids
        }
        assert rsnode_switches == client_tors

    def test_netrs_ilp_plan_is_smaller_than_tor(self):
        tor = build_scenario(ExperimentConfig.tiny(scheme="netrs-tor", seed=2))
        ilp = build_scenario(ExperimentConfig.tiny(scheme="netrs-ilp", seed=2))
        assert ilp.plan.rsnode_count <= tor.plan.rsnode_count

    def test_monitors_on_client_tors(self):
        scenario = build_scenario(ExperimentConfig.tiny(scheme="netrs-ilp"))
        client_tors = {
            scenario.topology.tor_of(h).name for h in scenario.client_hosts
        }
        assert set(scenario.controller.monitors) == client_tors
        for name in client_tors:
            assert scenario.switches[name].monitor is not None

    def test_clients_configured_for_scheme(self):
        netrs = build_scenario(ExperimentConfig.tiny(scheme="netrs-ilp"))
        assert all(c.netrs for c in netrs.clients)
        plain = build_scenario(ExperimentConfig.tiny(scheme="clirs-r95"))
        assert all(not c.netrs for c in plain.clients)
        assert all(c.redundancy is not None for c in plain.clients)

    def test_ring_spans_server_hosts(self):
        scenario = build_scenario(ExperimentConfig.tiny(seed=5))
        assert sorted(scenario.ring.servers) == scenario.server_hosts

    def test_host_granularity_makes_per_host_groups(self):
        scenario = build_scenario(
            ExperimentConfig.tiny(scheme="netrs-ilp", group_granularity="host")
        )
        assert len(scenario.groups) == scenario.config.n_clients
