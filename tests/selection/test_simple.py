"""Tests for the baseline selectors."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network.packet import ServerStatus
from repro.selection.simple import (
    LeastOutstandingSelector,
    RandomSelector,
    RoundRobinSelector,
    TwoChoicesSelector,
)


def _status(queue=0):
    return ServerStatus(queue_size=queue, service_rate=1000.0, timestamp=0.0)


CANDIDATES = ["a", "b", "c"]


class TestRandom:
    def test_uniformish(self):
        selector = RandomSelector(rng=np.random.default_rng(0))
        counts = {c: 0 for c in CANDIDATES}
        for _ in range(3000):
            counts[selector.select(CANDIDATES, 0.0)] += 1
        assert all(800 < v < 1200 for v in counts.values())

    def test_empty_candidates(self):
        with pytest.raises(ConfigurationError):
            RandomSelector(rng=np.random.default_rng(0)).select([], 0.0)

    def test_selection_counter(self):
        selector = RandomSelector(rng=np.random.default_rng(0))
        for _ in range(5):
            selector.select(CANDIDATES, 0.0)
        assert selector.selections == 5


class TestRoundRobin:
    def test_cycles_in_order(self):
        selector = RoundRobinSelector()
        picks = [selector.select(CANDIDATES, 0.0) for _ in range(6)]
        assert picks == ["a", "b", "c", "a", "b", "c"]

    def test_single_candidate(self):
        selector = RoundRobinSelector()
        assert selector.select(["only"], 0.0) == "only"


class TestLeastOutstanding:
    def test_prefers_idle_server(self):
        selector = LeastOutstandingSelector(rng=np.random.default_rng(0))
        selector.note_sent("a", 0.0)
        selector.note_sent("a", 0.0)
        selector.note_sent("b", 0.0)
        assert selector.select(CANDIDATES, 0.0) == "c"

    def test_response_decrements(self):
        selector = LeastOutstandingSelector(rng=np.random.default_rng(0))
        selector.note_sent("a", 0.0)
        selector.note_response("a", 0.001, _status(), 0.0)
        selector.note_sent("b", 0.0)
        assert selector.select(["a", "b"], 0.0) == "a"

    def test_clamps_at_zero(self):
        selector = LeastOutstandingSelector()
        selector.note_response("a", 0.001, _status(), 0.0)
        selector.note_sent("a", 0.0)
        # would be -1+1 = 0 if unclamped; must be 1 (clamped then +1)
        assert selector._outstanding["a"] == 1

    def test_spreads_burst(self):
        selector = LeastOutstandingSelector(rng=np.random.default_rng(1))
        for _ in range(9):
            choice = selector.select(CANDIDATES, 0.0)
            selector.note_sent(choice, 0.0)
        assert set(selector._outstanding.values()) == {3}


class TestTwoChoices:
    def test_requires_rng(self):
        with pytest.raises(ConfigurationError):
            TwoChoicesSelector(rng=None)

    def test_single_candidate(self):
        selector = TwoChoicesSelector(rng=np.random.default_rng(0))
        assert selector.select(["only"], 0.0) == "only"

    def test_prefers_shorter_queue_feedback(self):
        selector = TwoChoicesSelector(rng=np.random.default_rng(0))
        selector.note_response("a", 0.001, _status(queue=10), 0.0)
        selector.note_response("b", 0.001, _status(queue=0), 0.0)
        picks = [selector.select(["a", "b"], 0.0) for _ in range(50)]
        assert all(p == "b" for p in picks)

    def test_considers_outstanding_without_feedback(self):
        selector = TwoChoicesSelector(rng=np.random.default_rng(0))
        for _ in range(5):
            selector.note_sent("a", 0.0)
        picks = [selector.select(["a", "b"], 0.0) for _ in range(50)]
        assert all(p == "b" for p in picks)

    def test_samples_only_two(self):
        """With three loaded candidates, the unseen one is not guaranteed."""
        selector = TwoChoicesSelector(rng=np.random.default_rng(0))
        selector.note_response("a", 0.001, _status(queue=5), 0.0)
        selector.note_response("b", 0.001, _status(queue=5), 0.0)
        selector.note_response("c", 0.001, _status(queue=0), 0.0)
        picks = {selector.select(CANDIDATES, 0.0) for _ in range(200)}
        # c wins whenever sampled, but a-vs-b rounds exist too.
        assert "c" in picks
        assert len(picks) >= 2
