"""Tests for the snitch, oracle, registry and rate control."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network.packet import ServerStatus
from repro.selection import (
    C3Selector,
    EwmaSnitchSelector,
    OracleSelector,
    available_algorithms,
    create_selector,
    register,
)
from repro.selection.rate_control import CubicRateLimiter


def _status(queue=0):
    return ServerStatus(queue_size=queue, service_rate=1000.0, timestamp=0.0)


class TestEwmaSnitch:
    def test_unseen_servers_explored_first(self):
        selector = EwmaSnitchSelector(rng=np.random.default_rng(0))
        selector.note_response("a", 0.010, _status(), 0.0)
        assert selector.select(["a", "b"], 0.0) == "b"

    def test_prefers_lower_latency(self):
        selector = EwmaSnitchSelector(rng=np.random.default_rng(0))
        selector.note_response("a", 0.010, _status(), 0.0)
        selector.note_response("b", 0.001, _status(), 0.0)
        assert selector.select(["a", "b"], 0.0) == "b"

    def test_scores_reset_periodically(self):
        selector = EwmaSnitchSelector(
            reset_interval=1.0, rng=np.random.default_rng(0)
        )
        selector.note_response("a", 0.010, _status(), 0.0)
        selector.note_response("b", 0.001, _status(), 0.0)
        # After the reset interval both look fresh -> tie, random pick.
        picks = {selector.select(["a", "b"], now=2.0) for _ in range(50)}
        assert len(picks) == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EwmaSnitchSelector(ewma_alpha=1.5)
        with pytest.raises(ConfigurationError):
            EwmaSnitchSelector(reset_interval=0.0)

    def test_ewma_update(self):
        selector = EwmaSnitchSelector(ewma_alpha=0.5)
        selector.note_response("a", 0.010, _status(), 0.0)
        selector.note_response("a", 0.020, _status(), 0.0)
        assert selector._tracks["a"].ewma == pytest.approx(0.015)


class TestOracle:
    def test_picks_true_shortest_queue(self):
        queues = {"a": 5, "b": 1, "c": 3}
        selector = OracleSelector(queues.__getitem__)
        assert selector.select(["a", "b", "c"], 0.0) == "b"

    def test_ties_broken(self):
        queues = {"a": 1, "b": 1}
        selector = OracleSelector(
            queues.__getitem__, rng=np.random.default_rng(0)
        )
        picks = {selector.select(["a", "b"], 0.0) for _ in range(50)}
        assert len(picks) == 2


class TestRegistry:
    def test_known_algorithms_present(self):
        names = available_algorithms()
        for expected in (
            "c3",
            "random",
            "round-robin",
            "least-outstanding",
            "two-choices",
            "ewma-snitch",
        ):
            assert expected in names

    def test_create_c3(self):
        selector = create_selector(
            "c3",
            concurrency_weight=5,
            prior_service_rate=100.0,
            rng=np.random.default_rng(0),
        )
        assert isinstance(selector, C3Selector)
        assert selector.concurrency_weight == 5

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            create_selector(
                "nope", concurrency_weight=1, prior_service_rate=1.0
            )

    def test_duplicate_registration_raises(self):
        with pytest.raises(ConfigurationError):
            register("c3", lambda n, p, r: None)

    def test_custom_registration(self):
        class Fixed(C3Selector):
            algorithm_name = "test-fixed"

        register(
            "test-fixed",
            lambda n, prior, rng: Fixed(
                concurrency_weight=n, prior_service_rate=prior, rng=rng
            ),
        )
        selector = create_selector(
            "test-fixed", concurrency_weight=2, prior_service_rate=10.0
        )
        assert isinstance(selector, Fixed)


class TestCubicRateLimiter:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CubicRateLimiter(initial_rate=0.0)
        with pytest.raises(ConfigurationError):
            CubicRateLimiter(beta=1.5)
        with pytest.raises(ConfigurationError):
            CubicRateLimiter(window=0.0)

    def test_tokens_gate_sends(self):
        limiter = CubicRateLimiter(initial_rate=10.0)
        assert limiter.may_send(0.0)
        limiter.on_send(0.0)
        # Next token arrives after 1/rate = 0.1 s.
        assert not limiter.may_send(0.01)
        assert limiter.may_send(0.2)

    def test_rates_measured_over_window(self):
        limiter = CubicRateLimiter(initial_rate=1000.0, window=0.1)
        for i in range(10):
            limiter.on_send(i * 0.01)
        assert limiter.send_rate(0.1) == pytest.approx(100.0, rel=0.2)

    def test_decrease_when_sends_outpace_receives(self):
        limiter = CubicRateLimiter(initial_rate=1000.0, window=0.1)
        for i in range(20):
            limiter.on_send(i * 0.001)
        limiter.on_receive(0.05)
        assert limiter.decreases >= 1
        assert limiter.rate < 1000.0

    def test_cubic_growth_after_decrease(self):
        limiter = CubicRateLimiter(initial_rate=1000.0, window=0.1)
        for i in range(20):
            limiter.on_send(i * 0.001)
        limiter.on_receive(0.05)
        dropped = limiter.rate
        # Balanced traffic afterwards: rate should recover over time.
        t = 0.2
        for _ in range(200):
            limiter.on_send(t)
            limiter.on_receive(t + 0.0005)
            t += 0.01
        assert limiter.rate > dropped

    def test_rate_capped(self):
        limiter = CubicRateLimiter(initial_rate=100.0, max_rate=500.0)
        t = 0.0
        for _ in range(500):
            limiter.on_send(t)
            limiter.on_receive(t + 0.001)
            t += 0.05
        assert limiter.rate <= 500.0


class TestC3RateRegistration:
    def test_c3_rate_creates_limited_selector(self):
        selector = create_selector(
            "c3-rate",
            concurrency_weight=2,
            prior_service_rate=1000.0,
            rng=np.random.default_rng(0),
        )
        assert isinstance(selector, C3Selector)
        assert selector._rate_limiter_factory is not None
        # Exercising the send path must create per-server limiters.
        choice = selector.select(["a", "b"], 0.0)
        selector.note_sent(choice, 0.0)
        assert choice in selector._limiters

    def test_c3_rate_runs_tiny_experiment(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_experiment

        config = ExperimentConfig.tiny(
            scheme="clirs", seed=2, algorithm="c3-rate", total_requests=300
        )
        result = run_experiment(config)
        assert result.completed_requests == 300
