"""Tests for the C3 selector: scoring, feedback, herd-avoidance behaviour."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network.packet import ServerStatus
from repro.selection.c3 import C3Selector


def _status(queue=0, rate=1000.0, t=0.0):
    return ServerStatus(queue_size=queue, service_rate=rate, timestamp=t)


def _selector(**kwargs):
    defaults = dict(
        concurrency_weight=1,
        prior_service_rate=1000.0,
        rng=np.random.default_rng(0),
    )
    defaults.update(kwargs)
    return C3Selector(**defaults)


class TestValidation:
    def test_concurrency_weight_positive(self):
        with pytest.raises(ConfigurationError):
            _selector(concurrency_weight=0)

    def test_prior_rate_positive(self):
        with pytest.raises(ConfigurationError):
            _selector(prior_service_rate=0.0)

    def test_alpha_range(self):
        with pytest.raises(ConfigurationError):
            _selector(ewma_alpha=1.0)

    def test_exponent_range(self):
        with pytest.raises(ConfigurationError):
            _selector(cubic_exponent=0.5)

    def test_empty_candidates(self):
        with pytest.raises(ConfigurationError):
            _selector().select([], 0.0)


class TestScoring:
    def test_cold_servers_score_zero(self):
        selector = _selector()
        assert selector.score("s1") == pytest.approx(0.0)

    def test_outstanding_raises_score(self):
        selector = _selector()
        selector.note_sent("s1", 0.0)
        assert selector.score("s1") > selector.score("s2")

    def test_cubic_scaling(self):
        """Doubling q_hat multiplies the queue term by 8."""
        selector = _selector(concurrency_weight=1)
        tau = 1.0 / 1000.0
        selector.note_sent("s1", 0.0)  # q_hat = 2
        score_two = selector.score("s1") + tau  # strip the -1/mu term
        selector.note_sent("s1", 0.0)
        selector.note_sent("s1", 0.0)  # q_hat = 4
        score_four = selector.score("s1") + tau
        assert score_four / score_two == pytest.approx(8.0)

    def test_concurrency_weight_scales_outstanding(self):
        light = _selector(concurrency_weight=1)
        heavy = _selector(concurrency_weight=10)
        for selector in (light, heavy):
            selector.note_sent("s1", 0.0)
        assert heavy.score("s1") > light.score("s1")

    def test_queue_feedback_raises_score(self):
        selector = _selector()
        selector.note_response("s1", 0.004, _status(queue=10), 0.0)
        selector.note_response("s2", 0.004, _status(queue=0), 0.0)
        assert selector.score("s1") > selector.score("s2")

    def test_latency_feedback_raises_score(self):
        selector = _selector()
        selector.note_response("s1", 0.050, _status(), 0.0)
        selector.note_response("s2", 0.001, _status(), 0.0)
        assert selector.score("s1") > selector.score("s2")

    def test_selects_minimum_score(self):
        selector = _selector()
        selector.note_response("slow", 0.050, _status(queue=8), 0.0)
        selector.note_response("fast", 0.001, _status(queue=0), 0.0)
        assert selector.select(["slow", "fast"], 0.0) == "fast"

    def test_ties_broken_randomly(self):
        selector = _selector()
        picks = {selector.select(["a", "b", "c"], 0.0) for _ in range(100)}
        assert len(picks) > 1

    def test_ties_deterministic_without_rng(self):
        selector = C3Selector(
            concurrency_weight=1, prior_service_rate=1000.0, rng=None
        )
        picks = {selector.select(["a", "b", "c"], 0.0) for _ in range(20)}
        assert picks == {"a"}


class TestFeedback:
    def test_outstanding_decrements_on_response(self):
        selector = _selector()
        selector.note_sent("s1", 0.0)
        selector.note_sent("s1", 0.0)
        assert selector.outstanding("s1") == 2
        selector.note_response("s1", 0.001, _status(), 0.0)
        assert selector.outstanding("s1") == 1

    def test_outstanding_clamps_at_zero(self):
        """NetRS clients receive responses they never counted as sent."""
        selector = _selector()
        selector.note_response("s1", 0.001, _status(), 0.0)
        assert selector.outstanding("s1") == 0

    def test_first_feedback_seeds_ewmas(self):
        selector = _selector()
        selector.note_response("s1", 0.007, _status(queue=3, rate=500.0), 0.0)
        track = selector._tracks["s1"]
        assert track.response_time == pytest.approx(0.007)
        assert track.queue_size == pytest.approx(3.0)
        assert track.service_rate == pytest.approx(500.0)

    def test_ewma_smoothing(self):
        selector = _selector(ewma_alpha=0.9)
        selector.note_response("s1", 0.010, _status(), 0.0)
        selector.note_response("s1", 0.020, _status(), 0.0)
        track = selector._tracks["s1"]
        assert track.response_time == pytest.approx(0.9 * 0.010 + 0.1 * 0.020)

    def test_feedback_age(self):
        selector = _selector()
        assert selector.feedback_age("s1", 10.0) == float("inf")
        selector.note_response("s1", 0.001, _status(), 4.0)
        assert selector.feedback_age("s1", 10.0) == pytest.approx(6.0)

    def test_feedback_counter(self):
        selector = _selector()
        for _ in range(5):
            selector.note_response("s1", 0.001, _status(), 0.0)
        assert selector.feedback_updates == 5


class TestBehaviour:
    def test_avoids_momentarily_slow_server(self):
        """After bad feedback, traffic shifts; after recovery, it returns."""
        selector = _selector()
        # s1 reports a deep queue.
        selector.note_response("s1", 0.020, _status(queue=12), 0.0)
        selector.note_response("s2", 0.004, _status(queue=1), 0.0)
        first = [selector.select(["s1", "s2"], 0.0) for _ in range(10)]
        assert all(pick == "s2" for pick in first)
        # s1 recovers (several good reports drive the EWMA down).
        for _ in range(30):
            selector.note_response("s1", 0.001, _status(queue=0), 0.0)
        for _ in range(30):
            selector.note_response("s2", 0.015, _status(queue=9), 0.0)
        later = [selector.select(["s1", "s2"], 0.0) for _ in range(10)]
        assert all(pick == "s1" for pick in later)

    def test_outstanding_spreads_burst(self):
        """A burst without feedback must not herd onto one replica."""
        selector = _selector(concurrency_weight=1)
        picks = []
        for _ in range(9):
            choice = selector.select(["a", "b", "c"], 0.0)
            selector.note_sent(choice, 0.0)
            picks.append(choice)
        assert picks.count("a") == picks.count("b") == picks.count("c") == 3

    def test_rate_limiter_integration(self):
        calls = []

        def factory():
            from repro.selection.rate_control import CubicRateLimiter

            limiter = CubicRateLimiter(initial_rate=10.0)
            calls.append(limiter)
            return limiter

        selector = _selector(rate_limiter_factory=factory)
        choice = selector.select(["a", "b"], 0.0)
        selector.note_sent(choice, 0.0)
        assert len(calls) >= 1
