"""End-to-end fault injection: crashes, failover, and byte-identity."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import build_scenario
from repro.faults import FaultInjector, FaultSchedule

#: The crash-and-recover scenario of docs/FAULTS.md: server#0 goes down at
#: 20 ms and comes back at 60 ms, while clients retry on a 20 ms timeout.
CRASH_SPEC = "server-down@0.02:server#0;server-up@0.06:server#0"


def _crash_config(**overrides):
    changes = dict(
        fault_schedule=CRASH_SPEC,
        request_timeout=0.02,
        max_retries=5,
    )
    changes.update(overrides)
    return dataclasses.replace(
        ExperimentConfig.tiny(scheme="clirs", seed=42), **changes
    )


class TestCrashAndRecover:
    def test_retries_happen_and_nothing_is_lost(self):
        result = run_experiment(_crash_config())
        assert result.faults_injected == 2
        assert result.timeouts > 0
        assert result.retries > 0
        assert result.requests_lost == 0
        assert result.completed_requests == result.config.total_requests
        assert result.unavailability == pytest.approx(0.04)

    def test_same_seed_runs_are_identical(self, backend):
        """Fault counters are byte-identical across runs *and* across every
        installed event-core backend (python is the oracle)."""
        first = run_experiment(_crash_config(engine_backend="python"))
        second = run_experiment(_crash_config(engine_backend=backend))
        assert first.summary() == second.summary()
        assert first.timeouts == second.timeouts
        assert first.retries == second.retries
        assert first.transmissions == second.transmissions
        assert first.events_executed == second.events_executed
        assert first.faults_injected == second.faults_injected
        assert first.requests_lost == second.requests_lost

    def test_crash_loses_in_flight_work_but_clients_recover(self):
        result = run_experiment(_crash_config(), keep_scenario=True)
        servers = result.scenario.servers.values()
        # The crash wipes the victim's queue and in-service work, and its
        # door stays shut until recovery ...
        assert sum(s.lost_in_service for s in servers) > 0
        assert result.server_dropped_requests > 0
        # ... yet every request still completes, via timeout-driven retry.
        assert result.requests_lost == 0
        assert result.completed_requests == result.config.total_requests

    def test_unavailability_tracks_open_windows(self):
        # No recovery event: the window stays open until the end of the run.
        config = _crash_config(fault_schedule="server-down@0.02:server#0")
        result = run_experiment(config)
        assert result.unavailability == pytest.approx(result.sim_duration - 0.02)


class TestRSNodeFailover:
    def test_all_operators_down_falls_back_to_client_selection(self):
        config = ExperimentConfig.tiny(scheme="netrs-tor", seed=42)
        scenario = build_scenario(config)
        schedule = FaultSchedule()
        for operator_id in sorted(scenario.plan.rsnode_ids):
            schedule.rsnode_down(0.0, operator_id)
        scenario.faults = FaultInjector(
            scenario.env,
            schedule,
            network=scenario.network,
            servers=scenario.servers,
            server_hosts=scenario.server_hosts,
            client_hosts=scenario.client_hosts,
            controller=scenario.controller,
        )
        scenario.faults.arm()
        result = run_experiment(config, scenario=scenario)
        # Every group degraded => no request is ever steered by an operator,
        # and no request needs one: DRS answers from client-side selection.
        assert result.selector_requests_handled == 0
        assert result.drs_group_count == len(scenario.groups)
        assert result.completed_requests == config.total_requests
        assert result.requests_lost == 0

    def test_busiest_operator_failure_completes_without_timeouts(self):
        config = dataclasses.replace(
            ExperimentConfig.tiny(scheme="netrs-tor", seed=42),
            fault_schedule="rsnode-down@0.01:busiest",
        )
        result = run_experiment(config)
        assert result.faults_injected == 1
        assert result.drs_group_count > 0
        assert result.completed_requests == config.total_requests
        assert result.unavailability > 0


class TestByteIdentityWithoutFaults:
    """Arming timeouts that never fire must not change any output bit."""

    @pytest.mark.parametrize("scheme", ["clirs", "netrs-tor"])
    def test_timeout_knobs_alone_change_nothing(self, scheme):
        baseline = run_experiment(ExperimentConfig.tiny(scheme=scheme, seed=42))
        guarded = run_experiment(
            dataclasses.replace(
                ExperimentConfig.tiny(scheme=scheme, seed=42),
                request_timeout=50.0,
                max_retries=3,
            )
        )
        assert guarded.summary() == baseline.summary()
        assert guarded.transmissions == baseline.transmissions
        assert guarded.events_executed == baseline.events_executed
        assert guarded.timeouts == 0
        assert guarded.retries == 0


class TestTargetResolution:
    def _injector(self, scenario, schedule):
        return FaultInjector(
            scenario.env,
            schedule,
            network=scenario.network,
            servers=scenario.servers,
            server_hosts=scenario.server_hosts,
            client_hosts=scenario.client_hosts,
            controller=scenario.controller,
        )

    @pytest.fixture(scope="class")
    def scenario(self):
        return build_scenario(ExperimentConfig.tiny(scheme="clirs", seed=42))

    def test_server_index_resolves_to_server_host(self, scenario):
        injector = self._injector(
            scenario, FaultSchedule().server_down(0.1, "server#0")
        )
        resolved = injector._resolved[0]
        assert resolved.server == scenario.server_hosts[0]
        assert resolved.server in scenario.servers

    def test_tor_reference_resolves_recursively(self, scenario):
        tor = scenario.network.router.tor_of(scenario.server_hosts[0])
        injector = self._injector(
            scenario, FaultSchedule().link_down(0.1, "tor(server#0)", "agg0.0")
        )
        assert injector._resolved[0].a == tor

    @pytest.mark.parametrize(
        "schedule, fragment",
        [
            (FaultSchedule().server_down(0.1, "server#99"), "out of range"),
            (FaultSchedule().server_down(0.1, "server#x"), "bad fault target"),
            (FaultSchedule().server_down(0.1, "nonexistent"), "not a topology"),
            (
                FaultSchedule().server_down(0.1, "client#0"),
                "runs no key-value server",
            ),
            (FaultSchedule().rsnode_down(0.1, 0), "NetRS scheme"),
        ],
    )
    def test_bad_targets_fail_fast(self, scenario, schedule, fragment):
        with pytest.raises(ConfigurationError) as excinfo:
            self._injector(scenario, schedule)
        assert fragment in str(excinfo.value)


class TestConfigValidation:
    def test_stranding_schedule_requires_timeout(self):
        config = dataclasses.replace(
            ExperimentConfig.tiny(), fault_schedule=CRASH_SPEC
        )
        with pytest.raises(ConfigurationError, match="request_timeout"):
            config.validate()

    def test_non_stranding_schedule_needs_no_timeout(self):
        dataclasses.replace(
            ExperimentConfig.tiny(scheme="netrs-tor"),
            fault_schedule="rsnode-down@0.01:busiest",
        ).validate()

    def test_bad_spec_rejected_at_validation(self):
        config = dataclasses.replace(
            ExperimentConfig.tiny(), fault_schedule="reboot@0.1:server#0"
        )
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            config.validate()
