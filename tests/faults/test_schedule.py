"""FaultSchedule: spec parsing, ordering, validation, seeded randomness."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    FaultSchedule,
    LinkDegrade,
    LinkDown,
    LinkUp,
    RSNodeDown,
    RSNodeUp,
    ServerDown,
    ServerUp,
    parse_fault_schedule,
)
from repro.sim.rng import RngRegistry


class TestParsing:
    def test_every_kind_parses(self):
        spec = (
            "server-down@0.05:server#0;"
            "server-up@0.1:server#0;"
            "link-down@0.2:tor0.0/agg0.0;"
            "link-up@0.3:tor0.0/agg0.0;"
            "link-degrade@0.4:tor0.1/agg0.0*50;"
            "rsnode-down@0.5:busiest;"
            "rsnode-up@0.6:3"
        )
        events = parse_fault_schedule(spec).events
        assert events == (
            ServerDown(0.05, "server#0"),
            ServerUp(0.1, "server#0"),
            LinkDown(0.2, "tor0.0", "agg0.0"),
            LinkUp(0.3, "tor0.0", "agg0.0"),
            LinkDegrade(0.4, "tor0.1", "agg0.0", 50.0),
            RSNodeDown(0.5, "busiest"),
            RSNodeUp(0.6, 3),
        )

    def test_whitespace_and_empty_clauses_ignored(self):
        spec = "  server-down @ 0.05 : server#0 ; ; server-up@0.1:server#0 ;"
        events = parse_fault_schedule(spec).events
        assert events == (
            ServerDown(0.05, "server#0"),
            ServerUp(0.1, "server#0"),
        )

    @pytest.mark.parametrize(
        "spec, fragment",
        [
            ("reboot@0.1:server#0", "unknown fault kind"),
            ("server-down@0.1", "kind@time:target"),
            ("server-down:server#0", "kind@time:target"),
            ("server-down@soon:server#0", "bad time"),
            ("link-down@0.1:tor0.0", "must be 'a/b'"),
            ("link-degrade@0.1:tor0.0/agg0.0", "a/b*factor"),
            ("link-degrade@0.1:tor0.0/agg0.0*slow", "bad factor"),
            ("rsnode-down@0.1:quietest", "operator ID or 'busiest'"),
            ("", "no events"),
            (" ; ; ", "no events"),
        ],
    )
    def test_malformed_clause_is_named(self, spec, fragment):
        with pytest.raises(ConfigurationError) as excinfo:
            parse_fault_schedule(spec)
        assert fragment in str(excinfo.value)

    def test_from_spec_matches_parse(self):
        spec = "server-down@0.05:server#0"
        assert FaultSchedule.from_spec(spec).events == (
            parse_fault_schedule(spec).events
        )


class TestOrdering:
    def test_events_sorted_by_time(self):
        schedule = (
            FaultSchedule()
            .server_up(0.2, "s")
            .server_down(0.1, "s")
        )
        assert [e.at for e in schedule] == [0.1, 0.2]

    def test_ties_keep_insertion_order(self):
        schedule = (
            FaultSchedule()
            .server_down(0.1, "first")
            .server_down(0.1, "second")
            .server_down(0.1, "third")
        )
        assert [e.server for e in schedule] == ["first", "second", "third"]

    def test_len_counts_events(self):
        assert len(FaultSchedule().server_down(0.1, "s")) == 1


class TestValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError, match=">= 0"):
            ServerDown(-0.1, "server#0")

    def test_degrade_factor_below_one_rejected(self):
        with pytest.raises(ConfigurationError, match="factor"):
            LinkDegrade(0.1, "a", "b", 0.5)

    @pytest.mark.parametrize(
        "spec, expected",
        [
            ("server-down@0.1:server#0", True),
            ("link-down@0.1:tor0.0/agg0.0", True),
            ("link-degrade@0.1:tor0.0/agg0.0*10", False),
            ("rsnode-down@0.1:busiest", False),
            ("server-up@0.1:server#0", False),
        ],
    )
    def test_requires_timeouts(self, spec, expected):
        assert parse_fault_schedule(spec).requires_timeouts() is expected


class TestDescribe:
    def test_describe_round_trips_through_parser(self):
        spec = (
            "server-down@0.05:server#0;link-degrade@0.4:tor0.1/agg0.0*50;"
            "rsnode-down@0.5:busiest;link-down@0.6:tor0.0/agg0.1"
        )
        schedule = parse_fault_schedule(spec)
        assert parse_fault_schedule(schedule.describe()).events == schedule.events


class TestRandomServerCrashes:
    def _make(self, seed):
        rng = RngRegistry(seed).stream("faults")
        return FaultSchedule.random_server_crashes(
            rng,
            servers=["hostA", "hostB", "hostC"],
            count=4,
            window=(0.0, 1.0),
            downtime=0.05,
        )

    def test_same_seed_same_schedule(self):
        assert self._make(7).describe() == self._make(7).describe()

    def test_different_seed_different_schedule(self):
        assert self._make(7).describe() != self._make(8).describe()

    def test_shape(self):
        schedule = self._make(7)
        downs = [e for e in schedule if isinstance(e, ServerDown)]
        ups = [e for e in schedule if isinstance(e, ServerUp)]
        assert len(downs) == len(ups) == 4
        assert all(0.0 <= e.at <= 1.0 for e in downs)
        assert schedule.requires_timeouts()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(servers=[], count=1, window=(0.0, 1.0), downtime=0.05),
            dict(servers=["h"], count=0, window=(0.0, 1.0), downtime=0.05),
            dict(servers=["h"], count=1, window=(1.0, 0.5), downtime=0.05),
            dict(servers=["h"], count=1, window=(0.0, 1.0), downtime=0.0),
        ],
    )
    def test_bad_arguments_rejected(self, kwargs):
        rng = RngRegistry(1).stream("faults")
        with pytest.raises(ConfigurationError):
            FaultSchedule.random_server_crashes(rng, **kwargs)
