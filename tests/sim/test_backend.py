"""The event-core backend registry and its kernel dispatch plumbing.

Compiled backends (numba/Cython) may be absent -- in-container CI legs run
without them -- so besides the registry contract these tests exercise the
dispatch plumbing (C3 mirror arrays, pool gather, tie fallback, trunk
timing, vectorized settlement) through *fake* pure-Python kernels that
honour the compiled-kernel interface.  Byte-identity against the reference
loops must hold regardless of who implements the interface.
"""

import sys

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.network.fabric import Network
from repro.network.fattree import build_fat_tree
from repro.network.packet import ServerStatus
from repro.selection.c3 import C3Selector
from repro.sim.backend import (
    BACKEND_CHOICES,
    KERNEL_NAMES,
    Backend,
    available_backends,
    resolve,
)
from repro.sim.core import Environment
from repro.sim.rng import stream_from_seed


class TestResolve:
    def test_python_always_available(self):
        backend = resolve("python")
        assert backend.name == "python"
        assert backend.compiled is False
        assert backend.kernels is None
        assert backend.describe() == "python"

    def test_auto_resolves_to_an_installed_backend(self):
        backend = resolve("auto")
        assert backend.name in available_backends()

    def test_auto_is_the_default(self):
        assert resolve().name == resolve("auto").name

    def test_unknown_name_is_refused(self):
        with pytest.raises(ConfigurationError, match="bogus"):
            resolve("bogus")

    def test_python_is_always_listed_first(self):
        names = available_backends()
        assert names[0] == "python"
        assert set(names) < set(BACKEND_CHOICES)  # "auto" is never concrete

    def test_compiled_backends_export_every_kernel(self):
        for name in available_backends():
            backend = resolve(name)
            if backend.compiled:
                for kernel in KERNEL_NAMES:
                    assert callable(getattr(backend.kernels, kernel))
                assert backend.describe() == f"{backend.name}-{backend.version}"

    def test_config_knob_default_and_validation(self):
        assert ExperimentConfig.tiny().engine_backend == "auto"
        with pytest.raises(ConfigurationError, match="engine_backend"):
            ExperimentConfig.tiny().replace(engine_backend="fortran")


class TestMissingCompilers:
    """The no-numba environment, simulated via blocked imports."""

    @pytest.fixture
    def no_compilers(self, monkeypatch):
        # A None entry makes ``import numba`` raise ImportError without
        # uninstalling anything that may actually be present.
        monkeypatch.setitem(sys.modules, "numba", None)
        monkeypatch.setitem(sys.modules, "Cython", None)
        monkeypatch.delitem(
            sys.modules, "repro.sim._kernels_numba", raising=False
        )
        monkeypatch.delitem(
            sys.modules, "repro.sim._kernels_cython", raising=False
        )

    def test_auto_falls_back_to_python(self, no_compilers):
        assert available_backends() == ("python",)
        backend = resolve("auto")
        assert backend.name == "python"
        assert backend.compiled is False

    def test_explicit_requests_fail_loudly(self, no_compilers):
        with pytest.raises(ConfigurationError, match="numba"):
            resolve("numba")
        with pytest.raises(ConfigurationError, match="cython"):
            resolve("cython")

    def test_experiment_still_runs(self, no_compilers):
        config = ExperimentConfig.tiny(scheme="clirs", seed=2)
        result = run_experiment(config)
        assert result.completed_requests == config.total_requests


# ---------------------------------------------------------------------------
# Fake kernels: the compiled-kernel interface, implemented in plain Python.
# ---------------------------------------------------------------------------
class _FakeKernels:
    """Interface-faithful stand-ins for a compiled backend's kernels.

    Each mirrors the reference loop exactly (see
    ``repro.sim._kernels_numba`` for the pairing), so installing them must
    be byte-invisible -- which lets the dispatch plumbing be identity-tested
    even on interpreters with no compiled backend installed.
    """

    @staticmethod
    def c3_select(
        service_rate, outstanding, queue_size, response_time,
        prior, weight, exponent,
    ):
        best = -1
        best_score = float("inf")
        ties = 0
        for i in range(service_rate.shape[0]):
            rate = service_rate[i]
            if not rate > 0.0:
                rate = prior
            expected_service = 1.0 / rate
            q_hat = 1.0 + outstanding[i] * weight + queue_size[i]
            score = (
                response_time[i]
                - expected_service
                + q_hat**exponent * expected_service
            )
            if score < best_score:
                best = i
                best_score = score
                ties = 1
            elif score == best_score:
                ties += 1
        return best, ties

    @staticmethod
    def chained_arrival(base, delay, hops):
        when = base
        for _ in range(hops):
            when += delay
        return when

    @staticmethod
    def count_undone_hops(bases, delays, hops, stop_time, undone):
        total = 0
        for j in range(bases.shape[0]):
            t = bases[j]
            delay = delays[j]
            count = 0
            for _ in range(1, int(hops[j])):
                t += delay
                if t >= stop_time:
                    count += 1
            undone[j] = count
            total += count
        return total


FAKE_BACKEND = Backend(
    "python", compiled=True, version="fake", kernels=_FakeKernels
)


class TestC3KernelDispatch:
    def _pair(self, seed):
        kwargs = dict(prior_service_rate=1000.0)
        kernelled = C3Selector(rng=stream_from_seed(seed, "t.c3"), **kwargs)
        reference = C3Selector(rng=stream_from_seed(seed, "t.c3"), **kwargs)
        kernelled.use_kernel(_FakeKernels)
        return kernelled, reference

    def test_selection_matches_reference_under_feedback(self):
        kernelled, reference = self._pair(2)
        pool = [f"s{i}" for i in range(8)]
        feed = stream_from_seed(3, "t.feed")
        for i in range(300):
            now = i * 1e-3
            a = kernelled.select(pool, now)
            b = reference.select(pool, now)
            assert a == b
            kernelled.note_sent(a, now)
            reference.note_sent(b, now)
            if i % 3 == 0:
                status = ServerStatus(
                    queue_size=int(feed.integers(0, 6)),
                    service_rate=float(feed.uniform(500.0, 1500.0)),
                    timestamp=now,
                )
                latency = float(feed.uniform(1e-4, 5e-3))
                kernelled.note_response(a, latency, status, now)
                reference.note_response(b, latency, status, now)

    def test_all_equal_scores_fall_back_to_scalar_tie_break(self):
        # Fresh tracks all share the prior -> every candidate ties, the
        # kernel reports ties > 1, and the scalar path's RNG draw decides.
        # 40 servers also forces the mirror past its initial 16 rows
        # (two doublings), covering the growth path.
        kernelled, reference = self._pair(5)
        pool = [f"s{i}" for i in range(40)]
        assert kernelled.select(pool, 0.0) == reference.select(pool, 0.0)

    def test_servers_discovered_after_install_get_mirror_rows(self):
        kernelled, reference = self._pair(7)
        first = [f"s{i}" for i in range(3)]
        status = ServerStatus(queue_size=2, service_rate=800.0, timestamp=0.0)
        for selector in (kernelled, reference):
            choice = selector.select(first, 0.0)
            selector.note_sent(choice, 0.0)
            selector.note_response(choice, 2e-3, status, 1e-3)
        # A pool of brand-new servers plus the fed-back one: the new tracks
        # are created inside select() and must land in the mirror.
        pool = first + [f"late{i}" for i in range(4)]
        assert kernelled.select(pool, 2e-3) == reference.select(pool, 2e-3)


class _Device:
    def __init__(self):
        self.packets_forwarded = 5


class TestTrunkKernels:
    def test_chained_arrival_is_ulp_exact(self):
        # The kernel must reproduce the hop-by-hop chain, not delay * hops.
        base, delay, hops = 0.1, 1.7e-5, 7
        chained = base
        for _ in range(hops):
            chained += delay
        assert _FakeKernels.chained_arrival(base, delay, hops) == chained

    def _network_with_pending(self, kernels):
        network = Network(Environment(), build_fat_tree(4))
        if kernels:
            network.use_backend(FAKE_BACKEND)
        network.transmissions = 100
        network.bytes_transferred = 10_000
        network.netrs_overhead_bytes = 800
        devices = []
        # Three trunks: fully delivered, one undone hop, three undone hops.
        for base, hops, when in ((0.0, 4, 0.2), (0.0, 4, 0.4), (0.2, 4, 0.6)):
            absorbed = tuple(_Device() for _ in range(hops - 1))
            devices.append(absorbed)
            network._pending_trunks.append(
                (base, 0.1, hops, 100, 8, absorbed, when)
            )
        return network, devices

    def test_settle_trunks_kernel_path_matches_reference(self):
        plain, plain_devices = self._network_with_pending(kernels=False)
        fast, fast_devices = self._network_with_pending(kernels=True)
        for network in (plain, fast):
            network.settle_trunks(0.3)
        assert fast.transmissions == plain.transmissions
        assert fast.bytes_transferred == plain.bytes_transferred
        assert fast.netrs_overhead_bytes == plain.netrs_overhead_bytes
        for fast_absorbed, plain_absorbed in zip(fast_devices, plain_devices):
            assert [d.packets_forwarded for d in fast_absorbed] == [
                d.packets_forwarded for d in plain_absorbed
            ]
        assert not fast._pending_trunks and not plain._pending_trunks


class TestFakeBackendByteIdentity:
    """End-to-end: a compiled-looking backend must be byte-invisible."""

    @pytest.mark.parametrize("scheme", ["clirs", "clirs-r95", "netrs-ilp"])
    def test_experiment_identical_with_fake_kernels(self, scheme, monkeypatch):
        from repro.experiments import scenarios

        config = ExperimentConfig.tiny(scheme=scheme, seed=7)
        plain = run_experiment(config)
        monkeypatch.setattr(
            scenarios, "resolve_backend", lambda name: FAKE_BACKEND
        )
        fake = run_experiment(config)
        assert fake.summary() == plain.summary()
        assert fake.latency.samples == plain.latency.samples
        assert fake.transmissions == plain.transmissions
        assert fake.bytes_transferred == plain.bytes_transferred
        assert fake.netrs_overhead_bytes == plain.netrs_overhead_bytes
        assert fake.events_executed == plain.events_executed
