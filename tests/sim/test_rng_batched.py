"""BatchedStream equivalence: pre-drawn blocks must replay the scalar
bitstream exactly (ISSUE 4 acceptance criterion).

numpy Generators produce the identical value sequence for ``dist(size=n)``
as for ``n`` scalar calls, which is the whole contract that lets the
simulator turn batching on and off without changing a single result.  These
tests pin that contract for every supported distribution, across block
boundaries, through the bypass mode, and through ``spawn``.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.rng import (
    BatchedStream,
    RngRegistry,
    batched_from_seed,
    stream_from_seed,
)


def _pair(seed=123, name="test.stream", block_size=1024):
    """A batched stream and an independent scalar twin of the same stream."""
    return (
        batched_from_seed(seed, name, block_size=block_size),
        stream_from_seed(seed, name),
    )


N_LONG = 5000  # crosses several 1024-blocks and many small blocks


class TestScalarEquivalence:
    def test_random(self):
        batched, scalar = _pair()
        assert [batched.random() for _ in range(N_LONG)] == [
            float(scalar.random()) for _ in range(N_LONG)
        ]

    def test_uniform(self):
        batched, scalar = _pair()
        got = [batched.uniform(2.0, 5.0) for _ in range(N_LONG)]
        want = [2.0 + 3.0 * float(scalar.random()) for _ in range(N_LONG)]
        assert got == want

    def test_standard_exponential(self):
        batched, scalar = _pair()
        assert [batched.standard_exponential() for _ in range(N_LONG)] == [
            float(scalar.standard_exponential()) for _ in range(N_LONG)
        ]

    def test_exponential_fixed_scale(self):
        batched, scalar = _pair()
        got = [batched.exponential(1e-4) for _ in range(N_LONG)]
        want = [1e-4 * float(scalar.standard_exponential()) for _ in range(N_LONG)]
        assert got == want

    def test_exponential_varying_scale(self):
        # Fluctuating service times vary the scale per draw; the scale is
        # applied outside the block so values stay exact.
        batched, scalar = _pair()
        scales = [1e-4 * (1 + i % 7) for i in range(N_LONG)]
        got = [batched.exponential(s) for s in scales]
        want = [s * float(scalar.standard_exponential()) for s in scales]
        assert got == want

    def test_integers(self):
        batched, scalar = _pair()
        assert [batched.integers(0, 17) for _ in range(N_LONG)] == [
            int(scalar.integers(0, 17)) for _ in range(N_LONG)
        ]

    @pytest.mark.parametrize("block_size", [1, 2, 3, 7, 64, 1023])
    def test_block_boundary_crossing(self, block_size):
        """Tiny blocks force refills mid-sequence; values must not notice."""
        batched, scalar = _pair(block_size=block_size)
        n = 5 * block_size + 3
        assert [batched.standard_exponential() for _ in range(n)] == [
            float(scalar.standard_exponential()) for _ in range(n)
        ]

    def test_block_size_zero_bypasses(self):
        batched, scalar = _pair(block_size=0)
        got = [batched.random() for _ in range(100)]
        want = [float(scalar.random()) for _ in range(100)]
        assert got == want
        # Bypass mode never pre-draws: the wrapped generator stays in
        # lockstep with a scalar twin draw for draw.
        assert float(batched._rng.random()) == float(scalar.random())


class TestFamilyLock:
    def test_mixed_families_raise(self):
        batched, _ = _pair()
        batched.random()
        with pytest.raises(ConfigurationError):
            batched.standard_exponential()

    def test_integers_bound_change_raises(self):
        batched, _ = _pair()
        batched.integers(0, 8)
        with pytest.raises(ConfigurationError):
            batched.integers(0, 9)

    def test_lock_applies_in_bypass_mode_too(self):
        # Same API surface whichever mode the config picked, so a batch-size
        # sweep cannot silently change which call patterns are legal.
        batched, _ = _pair(block_size=0)
        batched.exponential(1.0)
        with pytest.raises(ConfigurationError):
            batched.random()


class TestSpawn:
    def test_spawn_is_draw_position_independent(self):
        """A batched parent pre-draws ahead of its scalar twin, but spawned
        children derive from the SeedSequence spawn counter, not the draw
        position -- so both parents spawn identical children."""
        batched, scalar = _pair()
        for _ in range(10):  # batched parent has pre-drawn a full block
            batched.random()
        child_b = batched.spawn()
        child_s = scalar.spawn(1)[0]
        assert [child_b.random() for _ in range(200)] == [
            float(child_s.random()) for _ in range(200)
        ]

    def test_spawn_inherits_block_size(self):
        batched, _ = _pair(block_size=13)
        assert batched.spawn().block_size == 13


class TestRegistryParity:
    def test_batched_from_seed_matches_registry(self):
        a = batched_from_seed(7, "parity.stream", block_size=256)
        b = RngRegistry(7).batched("parity.stream", block_size=256)
        assert [a.exponential(2.0) for _ in range(300)] == [
            b.exponential(2.0) for _ in range(300)
        ]

    def test_registry_batched_is_cached(self):
        registry = RngRegistry(5)
        assert registry.batched("x") is registry.batched("x")

    def test_registry_batched_block_size_conflict(self):
        registry = RngRegistry(5)
        registry.batched("x", block_size=64)
        with pytest.raises(ConfigurationError):
            registry.batched("x", block_size=128)

    def test_values_are_python_floats(self):
        # .tolist() conversion: downstream arithmetic and JSON dumps see
        # the exact same Python floats as scalar numpy draws produce.
        batched, _ = _pair()
        value = batched.random()
        assert type(value) is float

    def test_integers_are_python_ints(self):
        batched, _ = _pair()
        value = batched.integers(0, 1000)
        assert type(value) is int


def test_same_stream_name_same_values_across_modes():
    """End-to-end restatement of the contract: any block size (including
    bypass) yields one identical value sequence."""
    sequences = []
    for block_size in (0, 1, 1024):
        stream = batched_from_seed(99, "modes.stream", block_size=block_size)
        sequences.append([stream.exponential(3.0) for _ in range(2500)])
    assert sequences[0] == sequences[1] == sequences[2]
