"""Tests for named RNG streams."""

import numpy as np
import pytest

from repro.sim import RngRegistry


class TestRngRegistry:
    def test_same_name_returns_same_stream(self):
        registry = RngRegistry(1)
        assert registry.stream("a") is registry.stream("a")

    def test_different_names_differ(self):
        registry = RngRegistry(1)
        a = registry.stream("a").random(100)
        b = registry.stream("b").random(100)
        assert not np.allclose(a, b)

    def test_reproducible_across_registries(self):
        draws1 = RngRegistry(42).stream("workload").random(50)
        draws2 = RngRegistry(42).stream("workload").random(50)
        assert np.array_equal(draws1, draws2)

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("x").random(50)
        b = RngRegistry(2).stream("x").random(50)
        assert not np.allclose(a, b)

    def test_adding_streams_does_not_perturb_existing(self):
        registry1 = RngRegistry(7)
        registry1.stream("noise")  # extra stream created first
        late = registry1.stream("target").random(20)

        registry2 = RngRegistry(7)
        early = registry2.stream("target").random(20)
        assert np.array_equal(late, early)

    def test_contains(self):
        registry = RngRegistry(0)
        assert "x" not in registry
        registry.stream("x")
        assert "x" in registry

    def test_seed_type_checked(self):
        with pytest.raises(TypeError):
            RngRegistry("not-an-int")

    def test_streams_are_generators(self):
        assert isinstance(RngRegistry(0).stream("g"), np.random.Generator)
