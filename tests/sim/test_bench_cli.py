"""The benchmark harness CLI: stamping, name selection, compare mode.

Runs the cheapest benchmark in-process (``event_scheduling``, ~10 ms) so the
CLI contract is covered without paying for the full suite.
"""

import json

import numpy as np
import pytest

from repro.sim import bench
from repro.sim.backend import cython_version, numba_version, resolve


def _run(argv):
    return bench.main(argv)


def test_report_is_stamped(tmp_path):
    out = tmp_path / "report.json"
    assert _run(["event_scheduling", "--repeats", "1", "--out", str(out)]) == 0
    report = json.loads(out.read_text())
    assert report["schema_version"] == bench.SCHEMA_VERSION
    assert report["numpy"] == np.__version__
    assert isinstance(report["git_commit"], str) and report["git_commit"]
    # Schema v2: the event-core backend the numbers were measured under.
    assert report["engine_backend"] == resolve("auto").describe()
    assert report["numba"] == numba_version()
    assert report["cython"] == cython_version()
    assert set(report["benchmarks"]) == {"event_scheduling"}
    entry = report["benchmarks"]["event_scheduling"]
    assert entry["units"] == 10_000
    assert entry["wall_s"] > 0
    assert entry["rate_per_s"] > 0


def test_unknown_benchmark_name_is_refused(capsys):
    with pytest.raises(SystemExit) as excinfo:
        _run(["no_such_benchmark"])
    assert excinfo.value.code != 0
    err = capsys.readouterr().err
    assert "no_such_benchmark" in err
    assert "event_scheduling" in err  # the valid names are listed


def test_registry_covers_every_bench_function():
    prefix = "bench_"
    defined = {
        name[len(prefix):]
        for name in vars(bench)
        if name.startswith(prefix)
    }
    assert defined == set(bench.BENCHMARKS)


def test_compare_flags_only_real_regressions(tmp_path):
    baseline = {
        "git_commit": "cafe",
        "benchmarks": {
            "fast": {"units": 1, "wall_s": 1.0, "rate_per_s": 100.0},
            "slow": {"units": 1, "wall_s": 1.0, "rate_per_s": 100.0},
            "gone": {"units": 1, "wall_s": 1.0, "rate_per_s": 100.0},
        },
    }
    current = {
        "git_commit": "beef",
        "benchmarks": {
            "fast": {"units": 1, "wall_s": 1.0, "rate_per_s": 90.0},
            "slow": {"units": 1, "wall_s": 1.0, "rate_per_s": 40.0},
            "new": {"units": 1, "wall_s": 1.0, "rate_per_s": 1.0},
        },
    }
    comparison = bench.compare_reports(baseline, current, tolerance=0.5)
    assert comparison["regressions"] == ["slow"]
    assert comparison["benchmarks"]["fast"]["regressed"] is False
    assert comparison["benchmarks"]["slow"]["ratio"] == pytest.approx(0.4)
    # Benchmarks present on only one side are skipped, not errors.
    assert "gone" not in comparison["benchmarks"]
    assert "new" not in comparison["benchmarks"]


def test_compare_respects_per_benchmark_thresholds():
    baseline = {
        "git_commit": "cafe",
        "benchmarks": {
            "fig4_slice": {"units": 1, "wall_s": 1.0, "rate_per_s": 100.0},
            "rng_draws": {"units": 1, "wall_s": 1.0, "rate_per_s": 100.0},
        },
    }
    current = {
        "git_commit": "beef",
        "benchmarks": {
            # 45/s: below the default 0.5 band but inside fig4's 0.6 band.
            "fig4_slice": {"units": 1, "wall_s": 1.0, "rate_per_s": 45.0},
            "rng_draws": {"units": 1, "wall_s": 1.0, "rate_per_s": 45.0},
        },
    }
    comparison = bench.compare_reports(
        baseline, current, tolerance=0.5, thresholds=bench.THRESHOLDS
    )
    assert comparison["regressions"] == ["rng_draws"]
    assert comparison["benchmarks"]["fig4_slice"]["tolerance"] == 0.6
    assert comparison["benchmarks"]["rng_draws"]["tolerance"] == 0.5


def _impossible_baseline(tmp_path):
    baseline = {
        "git_commit": "cafe",
        # Match the current backend so the cross-backend guard stays out of
        # the way: these tests isolate the rate check.
        "engine_backend": resolve("auto").describe(),
        "benchmarks": {
            "event_scheduling": {
                "units": 10_000,
                "wall_s": 1e-9,
                "rate_per_s": 1e12,  # unattainable: guarantees a regression
            }
        },
    }
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(json.dumps(baseline))
    return baseline_path


def test_compare_cli_gates_on_regressions(tmp_path, capsys):
    """A regression beyond threshold fails the run (the CI gate)."""
    comparison_path = tmp_path / "comparison.json"
    code = _run(
        [
            "event_scheduling",
            "--repeats",
            "1",
            "--compare",
            str(_impossible_baseline(tmp_path)),
            "--compare-out",
            str(comparison_path),
        ]
    )
    assert code == 1
    comparison = json.loads(comparison_path.read_text())
    assert comparison["regressions"] == ["event_scheduling"]
    assert "FAIL" in capsys.readouterr().err


def test_compare_warn_is_the_escape_hatch(tmp_path, capsys):
    """--compare-warn restores warn-only behaviour: exit 0 regardless."""
    code = _run(
        [
            "event_scheduling",
            "--repeats",
            "1",
            "--compare",
            str(_impossible_baseline(tmp_path)),
            "--compare-warn",
        ]
    )
    assert code == 0
    assert "WARNING" in capsys.readouterr().err


def _mismatched_baseline(tmp_path):
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(
        json.dumps(
            {
                "git_commit": "cafe",
                "engine_backend": "some-other-backend-1.0",
                "benchmarks": {
                    "event_scheduling": {
                        "units": 10_000,
                        "wall_s": 1.0,
                        "rate_per_s": 1.0,  # would trivially pass the gate
                    }
                },
            }
        )
    )
    return baseline_path


def test_compare_refuses_cross_backend_baselines(tmp_path, capsys):
    """Rates from different event-core backends are not comparable."""
    code = _run(
        [
            "event_scheduling",
            "--repeats",
            "1",
            "--compare",
            str(_mismatched_baseline(tmp_path)),
        ]
    )
    assert code == 1
    err = capsys.readouterr().err
    assert "not comparable" in err
    assert "some-other-backend-1.0" in err


def test_compare_warn_downgrades_backend_mismatch(tmp_path, capsys):
    code = _run(
        [
            "event_scheduling",
            "--repeats",
            "1",
            "--compare",
            str(_mismatched_baseline(tmp_path)),
            "--compare-warn",
        ]
    )
    assert code == 0
    assert "WARNING" in capsys.readouterr().err


def test_v1_baselines_are_treated_as_python(tmp_path, monkeypatch, capsys):
    """Schema-v1 reports predate the field and were always pure Python."""
    from repro.sim import backend as backend_module

    # Pin the current run to pure Python so the v1 default ("python")
    # matches regardless of what this interpreter has installed.
    monkeypatch.setattr(backend_module, "numba_version", lambda: None)
    monkeypatch.setattr(backend_module, "cython_version", lambda: None)
    baseline_path = tmp_path / "baseline.json"
    baseline_path.write_text(
        json.dumps(
            {
                "git_commit": "cafe",
                "benchmarks": {
                    "event_scheduling": {
                        "units": 10_000,
                        "wall_s": 1.0,
                        "rate_per_s": 1.0,
                    }
                },
            }
        )
    )
    code = _run(
        ["event_scheduling", "--repeats", "1", "--compare", str(baseline_path)]
    )
    assert code == 0
    assert "not comparable" not in capsys.readouterr().err


def test_backend_dispatch_benchmark_runs(tmp_path):
    out = tmp_path / "report.json"
    assert _run(["backend_dispatch", "--repeats", "1", "--out", str(out)]) == 0
    report = json.loads(out.read_text())
    entry = report["benchmarks"]["backend_dispatch"]
    assert entry["units"] == 20_000
    assert entry["rate_per_s"] > 0
