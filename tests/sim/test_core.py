"""Tests for the event loop: scheduling, ordering, events, stop semantics."""

import pytest

from repro.sim import Environment, SimulationError
from repro.sim.core import AllOf, AnyOf, Event, Timeout


@pytest.fixture
def env():
    return Environment()


class TestClockAndCallbacks:
    def test_initial_time_is_zero(self, env):
        assert env.now == 0.0

    def test_custom_initial_time(self):
        assert Environment(initial_time=5.0).now == 5.0

    def test_call_in_advances_clock(self, env):
        seen = []
        env.call_in(1.5, lambda: seen.append(env.now))
        env.run()
        assert seen == [1.5]

    def test_call_at_absolute_time(self, env):
        seen = []
        env.call_at(2.0, lambda: seen.append(env.now))
        env.run()
        assert seen == [2.0]

    def test_call_at_past_raises(self, env):
        env.call_in(1.0, lambda: None)
        env.run()
        with pytest.raises(SimulationError):
            env.call_at(0.5, lambda: None)

    def test_negative_delay_raises(self, env):
        with pytest.raises(SimulationError):
            env.call_in(-0.1, lambda: None)

    def test_callback_args_passed(self, env):
        seen = []
        env.call_in(0.0, seen.append, 42)
        env.run()
        assert seen == [42]

    def test_fifo_order_at_same_time(self, env):
        seen = []
        for i in range(5):
            env.call_in(1.0, seen.append, i)
        env.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_time_order(self, env):
        seen = []
        env.call_in(3.0, seen.append, "c")
        env.call_in(1.0, seen.append, "a")
        env.call_in(2.0, seen.append, "b")
        env.run()
        assert seen == ["a", "b", "c"]

    def test_cancel_prevents_execution(self, env):
        seen = []
        handle = env.call_in(1.0, seen.append, 1)
        handle.cancel()
        env.run()
        assert seen == []

    def test_nested_scheduling(self, env):
        seen = []

        def outer():
            seen.append(("outer", env.now))
            env.call_in(1.0, inner)

        def inner():
            seen.append(("inner", env.now))

        env.call_in(1.0, outer)
        env.run()
        assert seen == [("outer", 1.0), ("inner", 2.0)]

    def test_events_executed_counter(self, env):
        for _ in range(7):
            env.call_in(0.1, lambda: None)
        env.run()
        assert env.events_executed == 7


class TestRunUntil:
    def test_run_until_stops_clock_at_bound(self, env):
        env.call_in(10.0, lambda: None)
        env.run(until=5.0)
        assert env.now == 5.0

    def test_run_until_executes_due_events(self, env):
        seen = []
        env.call_in(1.0, seen.append, 1)
        env.call_in(9.0, seen.append, 2)
        env.run(until=5.0)
        assert seen == [1]

    def test_run_until_past_raises(self, env):
        env.call_in(1.0, lambda: None)
        env.run()
        with pytest.raises(SimulationError):
            env.run(until=0.5)

    def test_resume_after_run_until(self, env):
        seen = []
        env.call_in(1.0, seen.append, 1)
        env.call_in(9.0, seen.append, 2)
        env.run(until=5.0)
        env.run()
        assert seen == [1, 2]

    def test_stop_from_callback(self, env):
        seen = []
        env.call_in(1.0, lambda: env.stop("bail"))
        env.call_in(2.0, seen.append, "never")
        value = env.run()
        assert value == "bail"
        assert seen == []

    def test_peek_empty_heap(self, env):
        assert env.peek() == float("inf")

    def test_peek_next_time(self, env):
        env.call_in(3.0, lambda: None)
        assert env.peek() == 3.0


class TestEvent:
    def test_succeed_delivers_value(self, env):
        event = env.event()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        event.succeed(99)
        env.run()
        assert seen == [99]

    def test_event_not_triggered_initially(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_double_succeed_raises(self, env):
        event = env.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_then_succeed_raises(self, env):
        event = env.event()
        event.fail(RuntimeError("x"))
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self, env):
        event = env.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_ok_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            _ = env.event().ok

    def test_ok_after_succeed(self, env):
        event = env.event()
        event.succeed()
        assert event.ok

    def test_ok_after_fail(self, env):
        event = env.event()
        event.fail(ValueError("boom"))
        assert not event.ok

    def test_callback_after_processing_raises(self, env):
        event = env.event()
        event.succeed()
        env.run()
        with pytest.raises(SimulationError):
            event.add_callback(lambda e: None)

    def test_callbacks_fifo(self, env):
        event = env.event()
        seen = []
        event.add_callback(lambda e: seen.append(1))
        event.add_callback(lambda e: seen.append(2))
        event.succeed()
        env.run()
        assert seen == [1, 2]


class TestTimeout:
    def test_timeout_fires_after_delay(self, env):
        timeout = env.timeout(2.5)
        seen = []
        timeout.add_callback(lambda e: seen.append(env.now))
        env.run()
        assert seen == [2.5]

    def test_timeout_carries_value(self, env):
        timeout = env.timeout(1.0, value="payload")
        seen = []
        timeout.add_callback(lambda e: seen.append(e.value))
        env.run()
        assert seen == ["payload"]

    def test_negative_timeout_raises(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_zero_timeout_runs_this_instant(self, env):
        timeout = env.timeout(0.0)
        seen = []
        timeout.add_callback(lambda e: seen.append(env.now))
        env.run()
        assert seen == [0.0]


class TestCombinators:
    def test_any_of_first_wins(self, env):
        fast = env.timeout(1.0, value="fast")
        slow = env.timeout(2.0, value="slow")
        combined = env.any_of([fast, slow])
        seen = []
        combined.add_callback(lambda e: seen.append(e.value))
        env.run()
        assert seen == [{fast: "fast"}]

    def test_any_of_empty_succeeds_immediately(self, env):
        combined = env.any_of([])
        assert combined.triggered

    def test_all_of_waits_for_all(self, env):
        a = env.timeout(1.0, value="a")
        b = env.timeout(3.0, value="b")
        combined = env.all_of([a, b])
        seen = []
        combined.add_callback(lambda e: seen.append((env.now, e.value)))
        env.run()
        assert seen == [(3.0, {a: "a", b: "b"})]

    def test_all_of_empty_succeeds_immediately(self, env):
        assert env.all_of([]).triggered

    def test_any_of_propagates_failure(self, env):
        event = env.event()
        combined = env.any_of([event])
        event.fail(RuntimeError("bad"))
        env.run()
        assert combined.triggered
        assert not combined.ok

    def test_all_of_with_already_processed_event(self, env):
        a = env.timeout(0.5)
        env.run()
        combined = env.all_of([a])
        assert isinstance(combined, AllOf)
        assert combined.triggered

    def test_any_of_with_already_processed_event(self, env):
        a = env.timeout(0.5, value=1)
        env.run()
        combined = env.any_of([a])
        assert isinstance(combined, AnyOf)
        assert combined.triggered


class TestAnyOfPreProcessedChildren:
    def test_pre_processed_failed_child_fails_anyof(self, env):
        """Regression: a child processed as *failed* before construction
        must fail the AnyOf, not succeed it with the exception as value."""
        child = env.event()
        child.fail(RuntimeError("boom"))
        env.run()  # child is now processed
        combined = env.any_of([child])
        assert combined.triggered
        assert not combined.ok
        assert isinstance(combined.value, RuntimeError)

    def test_pre_processed_failed_child_beats_pending_children(self, env):
        failed = env.event()
        failed.fail(ValueError("first"))
        env.run()
        pending = env.event()
        combined = env.any_of([failed, pending])
        assert combined.triggered
        assert not combined.ok
        assert isinstance(combined.value, ValueError)

    def test_no_callbacks_registered_after_trigger(self, env):
        """Regression: once a pre-processed child triggers the AnyOf, the
        remaining children must not get _on_child registered."""
        done = env.timeout(0.5, value=1)
        env.run()
        late_a = env.event()
        late_b = env.event()
        combined = env.any_of([done, late_a, late_b])
        assert combined.triggered and combined.ok
        assert late_a.callbacks == []
        assert late_b.callbacks == []

    def test_pre_processed_success_still_succeeds(self, env):
        done = env.timeout(0.5, value="v")
        env.run()
        combined = env.any_of([done])
        assert combined.triggered and combined.ok
        assert combined.value == {done: "v"}


class TestLazyDeletion:
    def test_cancelled_entries_do_not_count_as_executed(self, env):
        handles = [env.call_in(0.1, lambda: None) for _ in range(5)]
        handles[1].cancel()
        handles[3].cancel()
        env.run()
        assert env.events_executed == 3

    def test_cancelled_entries_do_not_advance_clock(self, env):
        env.call_in(1.0, lambda: None).cancel()
        env.run()
        assert env.now == 0.0

    def test_peek_skips_cancelled_prefix(self, env):
        env.call_in(1.0, lambda: None).cancel()
        env.call_in(2.0, lambda: None)
        assert env.peek() == 2.0

    def test_peek_all_cancelled_is_inf(self, env):
        for _ in range(3):
            env.call_in(1.0, lambda: None).cancel()
        assert env.peek() == float("inf")

    def test_run_until_does_not_stop_at_cancelled_timestamp(self, env):
        """run(until) must not advance ``now`` to a cancelled entry's time."""
        seen = []
        env.call_in(1.0, seen.append, 1)
        env.call_in(3.0, seen.append, "never").cancel()
        env.run(until=2.0)
        assert seen == [1]
        assert env.now == 2.0
        env.run()
        assert env.now == 2.0  # the cancelled 3.0 entry never ran

    def test_step_skips_cancelled(self, env):
        """step() must run exactly one *live* entry, skipping cancelled ones."""
        seen = []
        env.call_in(1.0, seen.append, "cancelled").cancel()
        env.call_in(2.0, seen.append, "live")
        env.step()
        assert seen == ["live"]
        assert env.now == 2.0
        assert env.events_executed == 1

    def test_cancel_after_execution_is_noop(self, env):
        seen = []
        handle = env.call_in(0.5, seen.append, 1)
        env.run()
        handle.cancel()
        handle.cancel()
        assert seen == [1]
        assert env.pending_cancelled == 0

    def test_compaction_purges_cancelled_timers(self):
        env = Environment()
        handles = [env.call_in(1.0, lambda: None) for _ in range(500)]
        for handle in handles:
            handle.cancel()
        # Threshold compaction ran: far fewer than 500 entries remain.
        assert len(env._heap) + len(env._dq) < 500
        env.run()
        assert env.events_executed == 0

    def test_compaction_off_keeps_lazy_entries(self):
        env = Environment(compaction=False)
        handles = [env.call_in(1.0, lambda: None) for _ in range(500)]
        for handle in handles:
            handle.cancel()
        assert len(env._heap) + len(env._dq) == 500
        env.run()  # drains lazily, still runs nothing
        assert env.events_executed == 0
        assert env.now == 0.0

    def test_compaction_on_off_same_behaviour(self):
        def run_once(compaction):
            env = Environment(compaction=compaction)
            seen = []
            handles = []
            for i in range(300):
                handles.append(env.call_in(0.1 + i * 1e-3, seen.append, i))
            for handle in handles[::2]:
                handle.cancel()
            env.run()
            return seen, env.events_executed, env.now

        assert run_once(True) == run_once(False)


class TestFastPostPath:
    def test_post_in_runs_callback(self, env):
        seen = []
        env.post_in(1.5, seen.append, (42,))
        env.run()
        assert seen == [42]
        assert env.now == 1.5

    def test_post_at_absolute(self, env):
        seen = []
        env.post_at(2.0, lambda: seen.append(env.now))
        env.run()
        assert seen == [2.0]

    def test_post_and_call_fifo_at_same_time(self, env):
        seen = []
        env.call_in(1.0, seen.append, "a")
        env.post_in(1.0, seen.append, ("b",))
        env.call_in(1.0, seen.append, "c")
        env.run()
        assert seen == ["a", "b", "c"]

    def test_posts_count_as_executed(self, env):
        for _ in range(4):
            env.post_in(0.1, lambda: None)
        env.run()
        assert env.events_executed == 4


class TestDequeHeapOrdering:
    def test_out_of_order_scheduling_is_globally_ordered(self, env):
        """Interleaved in-order (deque) and out-of-order (heap) entries must
        execute in exact (time, insertion) order."""
        seen = []
        times = [5.0, 1.0, 3.0, 3.0, 0.5, 5.0, 2.0, 4.0, 0.5, 3.0]
        for i, t in enumerate(times):
            env.call_in(t, seen.append, (t, i))
        env.run()
        assert seen == sorted(seen)

    def test_mixed_nested_scheduling_order(self, env):
        seen = []

        def at_two():
            seen.append(("outer", env.now))
            env.call_in(0.5, lambda: seen.append(("nested", env.now)))
            env.post_in(0.25, lambda: seen.append(("posted", env.now)))

        env.call_in(2.0, at_two)
        env.call_in(1.0, lambda: seen.append(("early", env.now)))
        env.call_in(2.3, lambda: seen.append(("mid", env.now)))
        env.run()
        assert seen == [
            ("early", 1.0),
            ("outer", 2.0),
            ("posted", 2.25),
            ("mid", 2.3),
            ("nested", 2.5),
        ]


class TestSameTimestampBatch:
    """The batched same-timestamp drain in :meth:`Environment.run`.

    Every schedule here puts a far-future entry at the deque front so the
    same-time cluster lands in the heap -- the shape that triggers the
    batch drain after the first cluster entry dispatches.
    """

    def test_batch_merges_deque_and_heap_in_seq_order(self, env):
        seen = []
        env.call_in(1.0, seen.append, "dq-a")  # deque (in order)
        env.call_in(2.0, seen.append, "later")  # deque
        env.call_in(1.0, seen.append, "heap-b")  # heap (out of order now)
        env.post_in(1.0, seen.append, ("heap-c",))
        env.run()
        assert seen == ["dq-a", "heap-b", "heap-c", "later"]
        assert env.events_executed == 4

    def test_entries_scheduled_mid_batch_run_after_it(self, env):
        seen = []

        def first():
            seen.append("first")
            # Same timestamp, but a higher seq: must run after the batch.
            env.call_in(0.0, lambda: seen.append("nested"))

        env.call_in(2.0, seen.append, "later")
        env.call_in(1.0, first)
        env.call_in(1.0, seen.append, "second")
        env.run()
        assert seen == ["first", "second", "nested", "later"]

    def test_cancel_landing_mid_batch_skips_without_counter_drift(self, env):
        seen = []
        handles = {}

        def canceller():
            seen.append("canceller")
            handles["victim"].cancel()

        env.call_in(2.0, seen.append, "later")
        env.call_in(1.0, seen.append, "lead")  # dispatched by the outer loop
        env.call_in(1.0, canceller)  # batch[0]: cancels a drained entry
        handles["victim"] = env.call_in(1.0, seen.append, "victim")
        env.run()
        assert seen == ["lead", "canceller", "later"]
        assert env.events_executed == 3
        # The victim had already left the schedule when it was cancelled, so
        # the lazy-deletion counter must not have been touched.
        assert env._cancelled == 0

    def test_entry_cancelled_before_drain_is_settled_in_batch(self, env):
        seen = []

        def canceller():
            seen.append("canceller")
            victim.cancel()  # victim is still *in* the heap here

        env.call_in(2.0, seen.append, "later")
        env.call_in(1.0, canceller)
        victim = env.call_in(1.0, seen.append, "victim")
        env.run()
        assert seen == ["canceller", "later"]
        assert env.events_executed == 2
        assert env._cancelled == 0

    def test_stop_mid_batch_requeues_tail_for_resume(self, env):
        seen = []
        env.call_in(2.0, seen.append, "later")
        env.call_in(1.0, seen.append, "lead")
        env.call_in(1.0, lambda: env.stop("halt"))
        env.call_in(1.0, seen.append, "tail1")
        env.call_in(1.0, seen.append, "tail2")
        assert env.run() == "halt"
        assert seen == ["lead"]
        assert env.events_executed == 2  # lead + the stop callback
        assert env.now == 1.0
        # The undispatched tail went back to the schedule front: resuming
        # picks up exactly past the entry that raised.
        assert env.run() is None
        assert seen == ["lead", "tail1", "tail2", "later"]
        assert env.events_executed == 5

    def test_stop_mid_batch_restores_cancelled_tail_bookkeeping(self, env):
        seen = []
        handles = {}

        def cancel_and_stop():
            handles["victim"].cancel()
            env.stop("halt")

        env.call_in(2.0, seen.append, "later")
        env.call_in(1.0, seen.append, "lead")
        env.call_in(1.0, cancel_and_stop)
        handles["victim"] = env.call_in(1.0, seen.append, "victim")
        assert env.run() == "halt"
        # The cancelled victim was re-queued, so its cancellation counts
        # toward lazy deletion again until the resume drops it.
        assert env._cancelled == 1
        assert env.run() is None
        assert seen == ["lead", "later"]
        assert env.events_executed == 3
        assert env._cancelled == 0

    def test_batched_and_stepwise_runs_agree(self):
        def run_once(batched):
            env = Environment()
            seen = []
            # Clustered timestamps: thirds collide, interleaved dq/heap.
            for i in range(60):
                env.call_in((i % 20) * 0.1, seen.append, i)
            if batched:
                env.run()
            else:
                while env.peek() != float("inf"):
                    env.step()
            return seen, env.events_executed

        assert run_once(batched=True) == run_once(batched=False)


class TestDeterminism:
    def test_same_schedule_same_order(self):
        def run_once():
            env = Environment()
            seen = []
            for i in range(50):
                env.call_in((i * 7919) % 13 * 0.1, seen.append, i)
            env.run()
            return seen

        assert run_once() == run_once()
