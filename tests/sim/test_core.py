"""Tests for the event loop: scheduling, ordering, events, stop semantics."""

import pytest

from repro.sim import Environment, SimulationError
from repro.sim.core import AllOf, AnyOf, Event, Timeout


@pytest.fixture
def env():
    return Environment()


class TestClockAndCallbacks:
    def test_initial_time_is_zero(self, env):
        assert env.now == 0.0

    def test_custom_initial_time(self):
        assert Environment(initial_time=5.0).now == 5.0

    def test_call_in_advances_clock(self, env):
        seen = []
        env.call_in(1.5, lambda: seen.append(env.now))
        env.run()
        assert seen == [1.5]

    def test_call_at_absolute_time(self, env):
        seen = []
        env.call_at(2.0, lambda: seen.append(env.now))
        env.run()
        assert seen == [2.0]

    def test_call_at_past_raises(self, env):
        env.call_in(1.0, lambda: None)
        env.run()
        with pytest.raises(SimulationError):
            env.call_at(0.5, lambda: None)

    def test_negative_delay_raises(self, env):
        with pytest.raises(SimulationError):
            env.call_in(-0.1, lambda: None)

    def test_callback_args_passed(self, env):
        seen = []
        env.call_in(0.0, seen.append, 42)
        env.run()
        assert seen == [42]

    def test_fifo_order_at_same_time(self, env):
        seen = []
        for i in range(5):
            env.call_in(1.0, seen.append, i)
        env.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_time_order(self, env):
        seen = []
        env.call_in(3.0, seen.append, "c")
        env.call_in(1.0, seen.append, "a")
        env.call_in(2.0, seen.append, "b")
        env.run()
        assert seen == ["a", "b", "c"]

    def test_cancel_prevents_execution(self, env):
        seen = []
        handle = env.call_in(1.0, seen.append, 1)
        handle.cancel()
        env.run()
        assert seen == []

    def test_nested_scheduling(self, env):
        seen = []

        def outer():
            seen.append(("outer", env.now))
            env.call_in(1.0, inner)

        def inner():
            seen.append(("inner", env.now))

        env.call_in(1.0, outer)
        env.run()
        assert seen == [("outer", 1.0), ("inner", 2.0)]

    def test_events_executed_counter(self, env):
        for _ in range(7):
            env.call_in(0.1, lambda: None)
        env.run()
        assert env.events_executed == 7


class TestRunUntil:
    def test_run_until_stops_clock_at_bound(self, env):
        env.call_in(10.0, lambda: None)
        env.run(until=5.0)
        assert env.now == 5.0

    def test_run_until_executes_due_events(self, env):
        seen = []
        env.call_in(1.0, seen.append, 1)
        env.call_in(9.0, seen.append, 2)
        env.run(until=5.0)
        assert seen == [1]

    def test_run_until_past_raises(self, env):
        env.call_in(1.0, lambda: None)
        env.run()
        with pytest.raises(SimulationError):
            env.run(until=0.5)

    def test_resume_after_run_until(self, env):
        seen = []
        env.call_in(1.0, seen.append, 1)
        env.call_in(9.0, seen.append, 2)
        env.run(until=5.0)
        env.run()
        assert seen == [1, 2]

    def test_stop_from_callback(self, env):
        seen = []
        env.call_in(1.0, lambda: env.stop("bail"))
        env.call_in(2.0, seen.append, "never")
        value = env.run()
        assert value == "bail"
        assert seen == []

    def test_peek_empty_heap(self, env):
        assert env.peek() == float("inf")

    def test_peek_next_time(self, env):
        env.call_in(3.0, lambda: None)
        assert env.peek() == 3.0


class TestEvent:
    def test_succeed_delivers_value(self, env):
        event = env.event()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        event.succeed(99)
        env.run()
        assert seen == [99]

    def test_event_not_triggered_initially(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_double_succeed_raises(self, env):
        event = env.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_then_succeed_raises(self, env):
        event = env.event()
        event.fail(RuntimeError("x"))
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_requires_exception(self, env):
        event = env.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_ok_before_trigger_raises(self, env):
        with pytest.raises(SimulationError):
            _ = env.event().ok

    def test_ok_after_succeed(self, env):
        event = env.event()
        event.succeed()
        assert event.ok

    def test_ok_after_fail(self, env):
        event = env.event()
        event.fail(ValueError("boom"))
        assert not event.ok

    def test_callback_after_processing_raises(self, env):
        event = env.event()
        event.succeed()
        env.run()
        with pytest.raises(SimulationError):
            event.add_callback(lambda e: None)

    def test_callbacks_fifo(self, env):
        event = env.event()
        seen = []
        event.add_callback(lambda e: seen.append(1))
        event.add_callback(lambda e: seen.append(2))
        event.succeed()
        env.run()
        assert seen == [1, 2]


class TestTimeout:
    def test_timeout_fires_after_delay(self, env):
        timeout = env.timeout(2.5)
        seen = []
        timeout.add_callback(lambda e: seen.append(env.now))
        env.run()
        assert seen == [2.5]

    def test_timeout_carries_value(self, env):
        timeout = env.timeout(1.0, value="payload")
        seen = []
        timeout.add_callback(lambda e: seen.append(e.value))
        env.run()
        assert seen == ["payload"]

    def test_negative_timeout_raises(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_zero_timeout_runs_this_instant(self, env):
        timeout = env.timeout(0.0)
        seen = []
        timeout.add_callback(lambda e: seen.append(env.now))
        env.run()
        assert seen == [0.0]


class TestCombinators:
    def test_any_of_first_wins(self, env):
        fast = env.timeout(1.0, value="fast")
        slow = env.timeout(2.0, value="slow")
        combined = env.any_of([fast, slow])
        seen = []
        combined.add_callback(lambda e: seen.append(e.value))
        env.run()
        assert seen == [{fast: "fast"}]

    def test_any_of_empty_succeeds_immediately(self, env):
        combined = env.any_of([])
        assert combined.triggered

    def test_all_of_waits_for_all(self, env):
        a = env.timeout(1.0, value="a")
        b = env.timeout(3.0, value="b")
        combined = env.all_of([a, b])
        seen = []
        combined.add_callback(lambda e: seen.append((env.now, e.value)))
        env.run()
        assert seen == [(3.0, {a: "a", b: "b"})]

    def test_all_of_empty_succeeds_immediately(self, env):
        assert env.all_of([]).triggered

    def test_any_of_propagates_failure(self, env):
        event = env.event()
        combined = env.any_of([event])
        event.fail(RuntimeError("bad"))
        env.run()
        assert combined.triggered
        assert not combined.ok

    def test_all_of_with_already_processed_event(self, env):
        a = env.timeout(0.5)
        env.run()
        combined = env.all_of([a])
        assert isinstance(combined, AllOf)
        assert combined.triggered

    def test_any_of_with_already_processed_event(self, env):
        a = env.timeout(0.5, value=1)
        env.run()
        combined = env.any_of([a])
        assert isinstance(combined, AnyOf)
        assert combined.triggered


class TestDeterminism:
    def test_same_schedule_same_order(self):
        def run_once():
            env = Environment()
            seen = []
            for i in range(50):
                env.call_in((i * 7919) % 13 * 0.1, seen.append, i)
            env.run()
            return seen

        assert run_once() == run_once()
