"""Tests for Resource and Store."""

import pytest

from repro.sim import Environment, Resource, SimulationError, Store


@pytest.fixture
def env():
    return Environment()


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Resource(env, 0)

    def test_grant_under_capacity_is_immediate(self, env):
        resource = Resource(env, 2)
        grant = resource.request()
        assert grant.triggered
        assert resource.in_use == 1

    def test_waiters_queue_fifo(self, env):
        resource = Resource(env, 1)
        seen = []

        def worker(env, name, hold):
            grant = resource.request()
            yield grant
            seen.append((name, "start", env.now))
            yield env.timeout(hold)
            resource.release()
            seen.append((name, "end", env.now))

        env.process(worker(env, "a", 2.0))
        env.process(worker(env, "b", 1.0))
        env.run()
        assert seen == [
            ("a", "start", 0.0),
            ("a", "end", 2.0),
            ("b", "start", 2.0),
            ("b", "end", 3.0),
        ]

    def test_parallel_capacity(self, env):
        resource = Resource(env, 3)
        finished = []

        def worker(env, i):
            yield resource.request()
            yield env.timeout(1.0)
            resource.release()
            finished.append((i, env.now))

        for i in range(6):
            env.process(worker(env, i))
        env.run()
        # Two waves of three: first three finish at t=1, next at t=2.
        assert [t for _, t in finished] == [1.0, 1.0, 1.0, 2.0, 2.0, 2.0]

    def test_release_without_request_raises(self, env):
        resource = Resource(env, 1)
        with pytest.raises(SimulationError):
            resource.release()

    def test_queue_length(self, env):
        resource = Resource(env, 1)
        resource.request()
        resource.request()
        resource.request()
        assert resource.in_use == 1
        assert resource.queue_length == 2

    def test_handoff_keeps_in_use_constant(self, env):
        resource = Resource(env, 1)
        resource.request()
        waiting = resource.request()
        resource.release()
        env.run()
        assert waiting.triggered
        assert resource.in_use == 1


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)
        store.put("x")
        got = store.get()
        assert got.triggered
        assert got.value == "x"

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        seen = []

        def consumer(env):
            item = yield store.get()
            seen.append((env.now, item))

        env.process(consumer(env))
        env.call_in(3.0, store.put, "late")
        env.run()
        assert seen == [(3.0, "late")]

    def test_fifo_item_order(self, env):
        store = Store(env)
        for i in range(4):
            store.put(i)
        values = [store.get().value for _ in range(4)]
        assert values == [0, 1, 2, 3]

    def test_fifo_getter_order(self, env):
        store = Store(env)
        seen = []

        def consumer(env, name):
            item = yield store.get()
            seen.append((name, item))

        env.process(consumer(env, "first"))
        env.process(consumer(env, "second"))
        env.call_in(1.0, store.put, "a")
        env.call_in(2.0, store.put, "b")
        env.run()
        assert seen == [("first", "a"), ("second", "b")]

    def test_len_counts_items(self, env):
        store = Store(env)
        assert len(store) == 0
        store.put(1)
        store.put(2)
        assert len(store) == 2

    def test_waiting_getters_counter(self, env):
        store = Store(env)
        store.get()
        store.get()
        assert store.waiting_getters == 2
