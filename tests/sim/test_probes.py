"""Tests for measurement probes."""

import math

import numpy as np
import pytest

from repro.sim import Counter, LatencyRecorder, TimeSeries, WelfordStats


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter().get("anything") == 0

    def test_increment(self):
        counter = Counter()
        counter.increment("a")
        counter.increment("a", 4)
        assert counter.get("a") == 5

    def test_as_dict_snapshot(self):
        counter = Counter()
        counter.increment("x")
        snapshot = counter.as_dict()
        counter.increment("x")
        assert snapshot == {"x": 1}


class TestWelfordStats:
    def test_empty_stats_are_nan(self):
        stats = WelfordStats()
        assert math.isnan(stats.mean)
        assert math.isnan(stats.variance)
        assert math.isnan(stats.minimum)
        assert math.isnan(stats.maximum)

    def test_single_sample(self):
        stats = WelfordStats()
        stats.add(3.0)
        assert stats.mean == 3.0
        assert math.isnan(stats.variance)
        assert stats.minimum == stats.maximum == 3.0

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(10, 2, size=500)
        stats = WelfordStats()
        for x in samples:
            stats.add(float(x))
        assert stats.mean == pytest.approx(np.mean(samples))
        assert stats.variance == pytest.approx(np.var(samples, ddof=1))
        assert stats.stddev == pytest.approx(np.std(samples, ddof=1))
        assert stats.minimum == pytest.approx(samples.min())
        assert stats.maximum == pytest.approx(samples.max())
        assert stats.count == 500


class TestLatencyRecorder:
    def test_empty_summary_is_nan(self):
        recorder = LatencyRecorder()
        assert all(math.isnan(v) for v in recorder.summary().values())

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().add(-0.1)

    def test_mean_and_percentiles_match_numpy(self):
        rng = np.random.default_rng(1)
        samples = rng.exponential(0.004, size=2000)
        recorder = LatencyRecorder()
        recorder.extend(samples)
        assert recorder.mean() == pytest.approx(np.mean(samples))
        for q in (50, 95, 99, 99.9):
            assert recorder.percentile(q) == pytest.approx(
                np.percentile(samples, q)
            )

    def test_percentile_bounds_checked(self):
        recorder = LatencyRecorder()
        recorder.add(1.0)
        with pytest.raises(ValueError):
            recorder.percentile(101)
        with pytest.raises(ValueError):
            recorder.percentile(-1)

    def test_summary_keys(self):
        recorder = LatencyRecorder()
        recorder.add(1.0)
        assert set(recorder.summary()) == {"mean", "p95", "p99", "p999"}

    def test_len_and_samples(self):
        recorder = LatencyRecorder()
        recorder.extend([0.1, 0.2])
        assert len(recorder) == 2
        assert recorder.samples == (0.1, 0.2)

    def test_add_after_percentile_invalidates_cache(self):
        recorder = LatencyRecorder()
        recorder.add(1.0)
        assert recorder.percentile(50) == 1.0
        recorder.add(3.0)
        assert recorder.percentile(50) == 2.0


class TestTimeSeries:
    def test_record_and_length(self):
        ts = TimeSeries()
        ts.record(0.0, 1.0)
        ts.record(1.0, 2.0)
        assert len(ts) == 2

    def test_time_must_not_go_backwards(self):
        ts = TimeSeries()
        ts.record(1.0, 1.0)
        with pytest.raises(ValueError):
            ts.record(0.5, 2.0)

    def test_as_arrays(self):
        ts = TimeSeries()
        ts.record(0.0, 5.0)
        times, values = ts.as_arrays()
        assert times.tolist() == [0.0]
        assert values.tolist() == [5.0]

    def test_time_average_step_function(self):
        ts = TimeSeries()
        ts.record(0.0, 0.0)
        ts.record(1.0, 10.0)
        # 0 for [0,1), 10 for [1,2) -> average 5 over [0,2).
        assert ts.time_average(2.0) == pytest.approx(5.0)

    def test_time_average_empty_is_nan(self):
        assert math.isnan(TimeSeries().time_average(1.0))

    def test_time_average_before_first_raises(self):
        ts = TimeSeries()
        ts.record(1.0, 1.0)
        with pytest.raises(ValueError):
            ts.time_average(0.5)
