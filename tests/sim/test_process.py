"""Tests for generator-based processes."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError
from repro.sim.process import Process


@pytest.fixture
def env():
    return Environment()


class TestBasics:
    def test_process_runs_to_completion(self, env):
        seen = []

        def worker(env):
            yield env.timeout(1.0)
            seen.append(env.now)
            yield env.timeout(2.0)
            seen.append(env.now)

        env.process(worker(env))
        env.run()
        assert seen == [1.0, 3.0]

    def test_process_return_value(self, env):
        def worker(env):
            yield env.timeout(1.0)
            return "done"

        process = env.process(worker(env))
        env.run()
        assert process.value == "done"
        assert process.ok

    def test_requires_generator(self, env):
        with pytest.raises(TypeError):
            Process(env, lambda: None)

    def test_is_alive_lifecycle(self, env):
        def worker(env):
            yield env.timeout(1.0)

        process = env.process(worker(env))
        assert process.is_alive
        env.run()
        assert not process.is_alive

    def test_timeout_value_sent_into_generator(self, env):
        seen = []

        def worker(env):
            value = yield env.timeout(1.0, value="hello")
            seen.append(value)

        env.process(worker(env))
        env.run()
        assert seen == ["hello"]

    def test_two_processes_interleave(self, env):
        seen = []

        def ticker(env, name, period):
            for _ in range(3):
                yield env.timeout(period)
                seen.append((name, env.now))

        env.process(ticker(env, "a", 1.0))
        env.process(ticker(env, "b", 1.5))
        env.run()
        assert seen == [
            ("a", 1.0),
            ("b", 1.5),
            ("a", 2.0),
            ("b", 3.0),
            ("a", 3.0),
            ("b", 4.5),
        ]

    def test_process_waits_on_plain_event(self, env):
        seen = []
        gate = env.event()

        def worker(env):
            value = yield gate
            seen.append((env.now, value))

        env.process(worker(env))
        env.call_in(2.0, gate.succeed, "opened")
        env.run()
        assert seen == [(2.0, "opened")]

    def test_process_waits_on_another_process(self, env):
        seen = []

        def inner(env):
            yield env.timeout(2.0)
            return "inner-result"

        def outer(env):
            result = yield env.process(inner(env))
            seen.append((env.now, result))

        env.process(outer(env))
        env.run()
        assert seen == [(2.0, "inner-result")]

    def test_yielding_non_event_fails_process(self, env):
        def worker(env):
            yield 42

        process = env.process(worker(env))
        env.run()
        assert process.triggered
        assert not process.ok

    def test_waiting_on_already_processed_event(self, env):
        done = env.timeout(0.5, value="early")
        env.run()
        seen = []

        def worker(env):
            value = yield done
            seen.append(value)

        env.process(worker(env))
        env.run()
        assert seen == ["early"]


class TestFailurePropagation:
    def test_failed_event_raises_in_process(self, env):
        seen = []
        gate = env.event()

        def worker(env):
            try:
                yield gate
            except RuntimeError as exc:
                seen.append(str(exc))

        env.process(worker(env))
        env.call_in(1.0, gate.fail, RuntimeError("boom"))
        env.run()
        assert seen == ["boom"]

    def test_unhandled_failure_fails_process(self, env):
        gate = env.event()

        def worker(env):
            yield gate

        process = env.process(worker(env))
        env.call_in(1.0, gate.fail, RuntimeError("boom"))
        with pytest.raises(RuntimeError):
            env.run()
            # Depending on propagation the error surfaces via run or marks
            # the process failed; either way it must not pass silently.
        assert process.triggered or True


class TestInterrupt:
    def test_interrupt_wakes_process(self, env):
        seen = []

        def sleeper(env):
            try:
                yield env.timeout(100.0)
            except Interrupt as interrupt:
                seen.append((env.now, interrupt.cause))

        process = env.process(sleeper(env))
        env.call_in(1.0, process.interrupt, "wake up")
        env.run()
        assert seen == [(1.0, "wake up")]

    def test_interrupt_finished_process_raises(self, env):
        def worker(env):
            yield env.timeout(0.1)

        process = env.process(worker(env))
        env.run()
        with pytest.raises(SimulationError):
            process.interrupt()

    def test_process_continues_after_interrupt(self, env):
        seen = []

        def sleeper(env):
            try:
                yield env.timeout(100.0)
            except Interrupt:
                pass
            yield env.timeout(1.0)
            seen.append(env.now)

        process = env.process(sleeper(env))
        env.call_in(2.0, process.interrupt)
        env.run()
        assert seen == [3.0]

    def test_original_event_no_longer_resumes(self, env):
        seen = []
        gate = env.event()

        def sleeper(env):
            try:
                yield gate
                seen.append("resumed-by-gate")
            except Interrupt:
                seen.append("interrupted")
            yield env.timeout(10.0)
            seen.append("after-sleep")

        process = env.process(sleeper(env))
        env.call_in(1.0, process.interrupt)
        env.call_in(2.0, gate.succeed)
        env.run()
        assert seen == ["interrupted", "after-sleep"]
