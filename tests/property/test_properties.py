"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.placement import solve_greedy, solve_ilp
from repro.core.placement.problem import PlacementProblem, build_operator_specs
from repro.core.plan import make_traffic_groups
from repro.errors import InfeasiblePlanError, RoutingError
from repro.kvstore.hashing import ConsistentHashRing
from repro.kvstore.workload import DemandWeights, ZipfSampler
from repro.network.fattree import build_fat_tree
from repro.network.packet import (
    MAGIC_MONITOR,
    MAGIC_REQUEST,
    MAGIC_RESPONSE,
    magic_transform,
    magic_untransform,
)
from repro.network.routing import Router
from repro.network.topology import NodeKind
from repro.sim import Environment
from repro.sim.probes import LatencyRecorder

TOPO = build_fat_tree(4)
ROUTER = Router(TOPO)
HOSTS = [h.name for h in TOPO.hosts]


class TestEventOrdering:
    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=60))
    def test_callbacks_fire_in_time_order(self, delays):
        env = Environment()
        fired = []
        for delay in delays:
            env.call_in(delay, lambda d=delay: fired.append((env.now, d)))
        env.run()
        times = [t for t, _ in fired]
        assert times == sorted(times)
        assert len(fired) == len(delays)

    @given(
        st.lists(
            st.tuples(st.floats(min_value=0, max_value=10), st.integers()),
            min_size=1,
            max_size=40,
        )
    )
    def test_equal_times_preserve_insertion_order(self, items):
        env = Environment()
        fired = []
        for delay, tag in items:
            env.call_in(delay, fired.append, (delay, tag))
        env.run()
        for delay in {d for d, _ in items}:
            expected = [(d, t) for d, t in items if d == delay]
            got = [(d, t) for d, t in fired if d == delay]
            assert got == expected


class TestMagicField:
    @given(st.integers(min_value=0, max_value=2**48 - 1))
    def test_transform_is_an_involution(self, magic):
        assert magic_untransform(magic_transform(magic)) == magic

    @given(st.sampled_from([MAGIC_REQUEST, MAGIC_RESPONSE, MAGIC_MONITOR]))
    def test_transform_never_collides_with_base_magics(self, magic):
        assert magic_transform(magic) not in {
            MAGIC_REQUEST,
            MAGIC_RESPONSE,
            MAGIC_MONITOR,
        }


class TestRoutingProperties:
    @given(
        st.sampled_from(HOSTS),
        st.sampled_from(HOSTS),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_paths_are_wired_and_terminate(self, src, dst, key):
        if src == dst:
            assert ROUTER.path(src, dst, key) == []
            return
        path = ROUTER.path(src, dst, key)
        previous = src
        for node in path:
            assert node in TOPO.neighbors(previous)
            previous = node
        assert path[-1] == dst
        assert len(path) <= 6

    @given(
        st.sampled_from(HOSTS),
        st.sampled_from(HOSTS),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_paths_are_valley_free(self, src, dst, key):
        """Tier sequence descends only after it is done ascending."""
        path = ROUTER.path(src, dst, key)
        tiers = [TOPO.node(n).tier for n in path]
        if not tiers:
            return
        turned_down = False
        previous = TOPO.node(src).tier
        for tier in tiers:
            if tier > previous:  # moving away from core
                turned_down = True
            elif tier < previous and turned_down:
                raise AssertionError(f"valley in path {path}")
            previous = tier

    @given(
        st.sampled_from(HOSTS),
        st.sampled_from([s.name for s in TOPO.switches]),
        st.sampled_from(HOSTS),
        st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_waypoint_paths_pass_the_waypoint(self, src, waypoint, dst, key):
        """Where routing via a waypoint is defined, it visits the waypoint."""
        try:
            up = ROUTER.path(src, waypoint, key)
            down = ROUTER.path(waypoint, dst, key)
        except RoutingError:
            return  # combination not used by NetRS (e.g. foreign-rack ToR)
        full = up + down
        if src != waypoint:
            assert waypoint in full


class TestHashRingProperties:
    @given(
        st.integers(min_value=4, max_value=20),
        st.integers(min_value=1, max_value=3),
        st.lists(st.integers(min_value=0), min_size=1, max_size=50),
    )
    def test_groups_always_have_rf_distinct_members(self, n_servers, rf, keys):
        servers = [f"s{i}" for i in range(n_servers)]
        ring = ConsistentHashRing(
            servers, replication_factor=rf, virtual_nodes=4
        )
        for key in keys:
            rgid, replicas = ring.group_for_key(key)
            assert len(set(replicas)) == rf
            assert ring.replicas(rgid) == replicas


class TestZipfProperties:
    @given(
        st.integers(min_value=1, max_value=10**6),
        st.floats(min_value=0.1, max_value=3.0),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
    def test_samples_always_in_bounds(self, n, s, seed):
        sampler = ZipfSampler(n, s, np.random.default_rng(seed))
        for _ in range(100):
            assert 1 <= sampler.sample() <= n


class TestDemandWeightProperties:
    @given(
        st.integers(min_value=2, max_value=200),
        st.one_of(st.none(), st.floats(min_value=0.01, max_value=0.99)),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_probabilities_form_a_distribution(self, n, skew, seed):
        weights = DemandWeights(
            n, skew=skew, rng=np.random.default_rng(seed) if skew else None
        )
        assert np.all(weights.probabilities >= 0)
        assert weights.probabilities.sum() == np.float64(1.0) or abs(
            weights.probabilities.sum() - 1.0
        ) < 1e-9
        sample = weights.sample(np.random.default_rng(seed))
        assert 0 <= sample < n


class TestLatencyRecorderProperties:
    @given(
        st.lists(
            st.floats(min_value=0, max_value=1e3, allow_nan=False),
            min_size=1,
            max_size=300,
        )
    )
    def test_percentiles_are_monotone_and_bounded(self, samples):
        recorder = LatencyRecorder()
        recorder.extend(samples)
        p50 = recorder.percentile(50)
        p95 = recorder.percentile(95)
        p99 = recorder.percentile(99.9)
        assert min(samples) <= p50 <= p95 <= p99 <= max(samples)
        epsilon = 1e-9 * max(1.0, max(samples))
        assert min(samples) - epsilon <= recorder.mean() <= max(samples) + epsilon


class TestPlacementProperties:
    OPERATORS = build_operator_specs(
        TOPO,
        accelerator_cores=1,
        accelerator_service_time=5e-6,
        max_utilization=0.5,
        work_per_request=2.0,
    )

    @given(
        st.lists(st.sampled_from(HOSTS), min_size=1, max_size=10, unique=True),
        st.floats(min_value=100.0, max_value=40_000.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=0.3),
    )
    @settings(max_examples=25, deadline=None)
    def test_solved_plans_always_satisfy_constraints(
        self, clients, rate, tier_mix, budget_fraction
    ):
        groups = make_traffic_groups(TOPO, clients)
        traffic = {
            g.group_id: (
                rate * (1 - tier_mix),
                rate * tier_mix * 0.7,
                rate * tier_mix * 0.3,
            )
            for g in groups
        }
        total = sum(sum(t) for t in traffic.values())
        problem = PlacementProblem(
            groups=groups,
            operators=self.OPERATORS,
            traffic=traffic,
            extra_hops_budget=budget_fraction * total,
        )
        try:
            ilp = solve_ilp(problem)
        except InfeasiblePlanError:
            ilp = None
        try:
            greedy = solve_greedy(problem)
        except InfeasiblePlanError:
            greedy = None
        # check_assignment runs inside both solvers; re-check here and compare.
        if ilp is not None:
            problem.check_assignment(ilp.assignments)
        if greedy is not None:
            problem.check_assignment(greedy.assignments)
        if ilp is not None and greedy is not None:
            assert ilp.rsnode_count <= greedy.rsnode_count
        # If the exact solver proves infeasibility, greedy must not "succeed".
        if ilp is None:
            assert greedy is None
