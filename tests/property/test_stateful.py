"""Stateful property tests: engine primitives against reference models."""

from collections import deque

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.sim import Environment, Resource, Store


class StoreMachine(RuleBasedStateMachine):
    """Store must behave like a FIFO queue with blocking getters."""

    def __init__(self):
        super().__init__()
        self.env = Environment()
        self.store = Store(self.env)
        self.model = deque()
        self.pending_gets = deque()  # events awaiting items
        self.delivered = []
        self.expected = []

    @rule(item=st.integers())
    def put(self, item):
        if self.pending_gets:
            # The oldest blocked getter must receive this item.
            self.expected.append(item)
            self.pending_gets.popleft()
        else:
            self.model.append(item)
        self.store.put(item)

    @rule()
    def get(self):
        event = self.store.get()
        if self.model:
            expected = self.model.popleft()
            assert event.triggered
            assert event.value == expected
        else:
            assert not event.triggered
            event.add_callback(lambda e: self.delivered.append(e.value))
            self.pending_gets.append(event)

    @invariant()
    def sizes_agree(self):
        assert len(self.store) == len(self.model)

    def teardown(self):
        self.env.run()
        assert self.delivered == self.expected


class ResourceMachine(RuleBasedStateMachine):
    """Resource must never exceed capacity and must grant FIFO."""

    def __init__(self):
        super().__init__()
        self.env = Environment()
        self.capacity = 3
        self.resource = Resource(self.env, self.capacity)
        self.held = 0
        self.waiting = deque()
        self.granted_order = []
        self.request_counter = 0

    @rule()
    def request(self):
        self.request_counter += 1
        tag = self.request_counter
        event = self.resource.request()
        if self.held < self.capacity and not self.waiting:
            assert event.triggered
            self.held += 1
            self.granted_order.append(tag)
        else:
            assert not event.triggered
            event.add_callback(
                lambda e, t=tag: self.granted_order.append(t)
            )
            self.waiting.append(tag)

    @precondition(lambda self: self.held > 0)
    @rule()
    def release(self):
        self.resource.release()
        if self.waiting:
            expected = self.waiting.popleft()
            self.env.run()
            assert self.granted_order[-1] == expected
        else:
            self.held -= 1

    @invariant()
    def capacity_respected(self):
        assert self.resource.in_use <= self.capacity
        assert self.resource.queue_length == len(self.waiting)


class EnvironmentClockMachine(RuleBasedStateMachine):
    """The clock is monotone and callbacks never run early or twice."""

    def __init__(self):
        super().__init__()
        self.env = Environment()
        self.fired = {}
        self.scheduled = {}
        self.counter = 0

    @rule(delay=st.floats(min_value=0, max_value=10))
    def schedule(self, delay):
        self.counter += 1
        tag = self.counter
        when = self.env.now + delay
        self.scheduled[tag] = when

        def fire(t=tag):
            assert t not in self.fired, "callback ran twice"
            self.fired[t] = self.env.now

        self.env.call_in(delay, fire)

    @rule(step=st.floats(min_value=0, max_value=5))
    def advance(self, step):
        before = self.env.now
        self.env.run(until=before + step)
        assert self.env.now == before + step

    @invariant()
    def fired_on_time(self):
        for tag, at in self.fired.items():
            expected = self.scheduled[tag]
            assert abs(at - expected) < 1e-9

    def teardown(self):
        self.env.run()
        assert set(self.fired) == set(self.scheduled)


TestStoreMachine = StoreMachine.TestCase
TestResourceMachine = ResourceMachine.TestCase
TestEnvironmentClockMachine = EnvironmentClockMachine.TestCase

TestStoreMachine.settings = settings(max_examples=40, stateful_step_count=40)
TestResourceMachine.settings = settings(max_examples=40, stateful_step_count=40)
TestEnvironmentClockMachine.settings = settings(
    max_examples=30, stateful_step_count=30
)
