"""Property test: random configurations must satisfy system invariants.

Hypothesis samples small-but-varied experiment configurations across the
whole parameter space (scheme, roles, utilization, skew, granularity,
writes) and asserts conservation and sanity invariants on each full run.
This is the broadest net for wiring bugs: anything that loses, duplicates
or misroutes a packet shows up as a conservation violation.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment

CONFIGS = st.fixed_dictionaries(
    {
        "scheme": st.sampled_from(
            ["clirs", "clirs-r95", "netrs-tor", "netrs-ilp", "netrs-greedy"]
        ),
        "seed": st.integers(min_value=0, max_value=50),
        "n_servers": st.integers(min_value=3, max_value=7),
        "n_clients": st.integers(min_value=2, max_value=8),
        "utilization": st.sampled_from([0.3, 0.7, 1.0]),
        "group_granularity": st.sampled_from(["rack", "host", 2]),
        "write_fraction": st.sampled_from([0.0, 0.2]),
        "demand_skew": st.sampled_from([None, 0.8]),
    }
)


@given(params=CONFIGS)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_configurations_conserve_requests(params):
    if params["scheme"] == "clirs-r95" and params["write_fraction"]:
        params["write_fraction"] = 0.0  # redundancy is a read-path feature
    config = ExperimentConfig.tiny(total_requests=300, **params)
    result = run_experiment(config, keep_scenario=True)
    scenario = result.scenario

    # Completion: every request answered exactly once.
    assert result.completed_requests == 300

    # Server-side conservation: arrivals = reads + RF*writes + redundant.
    arrivals = sum(s.arrivals for s in scenario.servers.values())
    completions = sum(s.completions for s in scenario.servers.values())
    writes = getattr(scenario.workload, "writes_issued", 0)
    reads = 300 - writes
    expected = (
        reads
        + writes * config.replication_factor
        + result.redundant_requests
    )
    if config.redundancy_enabled:
        # The run stops at the last *tracked* completion; losing redundant
        # copies may still be in flight (not yet arrived) or in service.
        base_load = reads + writes * config.replication_factor
        assert base_load <= arrivals <= expected
        assert 0 <= arrivals - completions <= result.redundant_requests
    else:
        assert arrivals == expected
        assert completions == arrivals

    # Latency sanity.
    summary = result.summary()
    assert all(not math.isnan(v) for v in summary.values())
    assert 0 < summary["mean"] <= summary["p999"]

    # NetRS bookkeeping: reads selected in-network exactly once each.
    if config.netrs:
        selected = sum(
            s.requests_selected for s in scenario.switches.values()
        )
        assert selected == reads
        cloned = sum(s.responses_cloned for s in scenario.switches.values())
        assert cloned == reads
