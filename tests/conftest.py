"""Shared fixtures.

``deterministic_sim`` is the opt-in runtime guard from the determinism
sanitizer (:mod:`repro.lint.runtime`): any test that requests it will fail
with :class:`~repro.lint.runtime.NondeterminismError` if code under test
reaches for the stdlib ``random`` module or numpy's global/fresh-entropy
entry points instead of a seeded :mod:`repro.sim.rng` stream.
"""

import pytest

from repro.lint.runtime import deterministic_guard
from repro.sim.backend import available_backends


@pytest.fixture
def deterministic_sim():
    """Fail the test if global RNG entry points are called while it runs."""
    with deterministic_guard():
        yield


@pytest.fixture(params=available_backends())
def backend(request):
    """Each installed event-core backend name (see :mod:`repro.sim.backend`).

    The byte-identity suites parametrize over this fixture so every
    installed compiled backend is held to the pure-Python oracle.  On a
    bare interpreter this is just ``("python",)``; the CI numba leg adds
    ``"numba"`` without any test edits.
    """
    return request.param
