"""Shared fixtures.

``deterministic_sim`` is the opt-in runtime guard from the determinism
sanitizer (:mod:`repro.lint.runtime`): any test that requests it will fail
with :class:`~repro.lint.runtime.NondeterminismError` if code under test
reaches for the stdlib ``random`` module or numpy's global/fresh-entropy
entry points instead of a seeded :mod:`repro.sim.rng` stream.
"""

import pytest

from repro.lint.runtime import deterministic_guard


@pytest.fixture
def deterministic_sim():
    """Fail the test if global RNG entry points are called while it runs."""
    with deterministic_guard():
        yield
