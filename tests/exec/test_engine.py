"""Engine tests: serial/parallel execution, retries, fallback, resume.

The fake runners below are module-level so the spawn-based pool can pickle
them by reference; they key side effects off environment variables, which
propagate to spawned workers.
"""

import json
import multiprocessing
import os
from pathlib import Path

import pytest

from repro.errors import ConfigurationError, ExecutionError
from repro.exec import (
    ExecutionPolicy,
    Job,
    JobOutcome,
    ProgressReporter,
    RunLedger,
    default_run_dir,
    execute_jobs,
)
from repro.experiments.config import ExperimentConfig

#: Environment variable pointing fake runners at a scratch directory.
SCRATCH_ENV = "REPRO_TEST_EXEC_SCRATCH"


def _jobs(count: int):
    """Cheap distinct jobs (never actually simulated by fake runners)."""
    jobs = []
    for index in range(count):
        config = ExperimentConfig.tiny(seed=index)
        jobs.append(Job.from_config(config, index))
    return jobs


def echo_runner(job: Job) -> JobOutcome:
    """Deterministic outcome derived from the config, no simulation."""
    return JobOutcome(
        key=job.key,
        digest=job.digest,
        summary={"mean": float(job.config.seed)},
        wall_time=0.01,
    )


def touch_counting_runner(job: Job) -> JobOutcome:
    """Echo runner that appends one line per invocation to a scratch file."""
    marker = Path(os.environ[SCRATCH_ENV]) / f"{job.key}.runs"
    with marker.open("a") as handle:
        handle.write("run\n")
    return echo_runner(job)


def flaky_runner(job: Job) -> JobOutcome:
    """Fails on the first attempt per job, succeeds afterwards."""
    marker = Path(os.environ[SCRATCH_ENV]) / f"{job.key}.attempts"
    attempts = int(marker.read_text()) if marker.exists() else 0
    marker.write_text(str(attempts + 1))
    if attempts == 0:
        raise RuntimeError("injected first-attempt crash")
    return echo_runner(job)


def always_failing_runner(job: Job) -> JobOutcome:
    raise RuntimeError("injected permanent crash")


def worker_only_crash_runner(job: Job) -> JobOutcome:
    """Crashes in pool workers; succeeds in the parent process."""
    if multiprocessing.current_process().name != "MainProcess":
        raise RuntimeError("injected worker-only crash")
    return echo_runner(job)


@pytest.fixture
def scratch(tmp_path, monkeypatch):
    monkeypatch.setenv(SCRATCH_ENV, str(tmp_path))
    return tmp_path


class TestSerialExecution:
    def test_outcomes_ordered_by_job_key(self):
        jobs = _jobs(4)
        outcomes = execute_jobs(jobs, runner=echo_runner)
        assert list(outcomes) == [job.key for job in jobs]
        assert outcomes[jobs[2].key].summary == {"mean": 2.0}

    def test_duplicate_keys_rejected(self):
        job = _jobs(1)[0]
        with pytest.raises(ConfigurationError):
            execute_jobs([job, job], runner=echo_runner)

    def test_retry_recovers_from_one_crash(self, scratch):
        jobs = _jobs(2)
        outcomes = execute_jobs(
            jobs, policy=ExecutionPolicy(retries=1), runner=flaky_runner
        )
        assert all(outcome.attempts == 2 for outcome in outcomes.values())

    def test_exhausted_retries_raise_execution_error(self, scratch):
        with pytest.raises(ExecutionError):
            execute_jobs(
                _jobs(1),
                policy=ExecutionPolicy(retries=1),
                runner=always_failing_runner,
            )


class TestParallelExecution:
    def test_parallel_merge_matches_serial(self):
        jobs = _jobs(4)
        serial = execute_jobs(jobs, runner=echo_runner)
        parallel = execute_jobs(
            jobs, policy=ExecutionPolicy(workers=2), runner=echo_runner
        )
        # Identical keys, order and payloads (attempt counts included).
        assert parallel == serial

    def test_worker_crash_falls_back_in_process(self):
        jobs = _jobs(3)
        outcomes = execute_jobs(
            jobs,
            policy=ExecutionPolicy(workers=2, retries=1),
            runner=worker_only_crash_runner,
        )
        assert list(outcomes) == [job.key for job in jobs]

    def test_worker_retry_happens_inside_worker(self, scratch):
        jobs = _jobs(2)
        outcomes = execute_jobs(
            jobs,
            policy=ExecutionPolicy(workers=2, retries=1),
            runner=flaky_runner,
        )
        assert all(outcome.attempts == 2 for outcome in outcomes.values())
        for job in jobs:
            marker = scratch / f"{job.key}.attempts"
            assert marker.read_text() == "2"


class TestLedgerAndResume:
    def test_completed_jobs_spool_to_ledger(self, scratch, tmp_path):
        run_dir = tmp_path / "run"
        jobs = _jobs(3)
        execute_jobs(
            jobs,
            policy=ExecutionPolicy(run_dir=run_dir),
            runner=touch_counting_runner,
        )
        assert set(RunLedger(run_dir).load()) == {job.key for job in jobs}

    def test_resume_skips_completed_jobs(self, scratch, tmp_path):
        run_dir = tmp_path / "run"
        jobs = _jobs(4)
        # Simulate an interrupted sweep: only half the batch completed.
        execute_jobs(
            jobs[:2],
            policy=ExecutionPolicy(run_dir=run_dir),
            runner=touch_counting_runner,
        )
        outcomes = execute_jobs(
            jobs,
            policy=ExecutionPolicy(run_dir=run_dir, resume=True),
            runner=touch_counting_runner,
        )
        assert list(outcomes) == [job.key for job in jobs]
        for job in jobs:  # every job ran exactly once across both calls
            assert (scratch / f"{job.key}.runs").read_text() == "run\n"

    def test_resume_reruns_on_digest_mismatch(self, scratch, tmp_path):
        run_dir = tmp_path / "run"
        jobs = _jobs(2)
        execute_jobs(
            jobs,
            policy=ExecutionPolicy(run_dir=run_dir),
            runner=touch_counting_runner,
        )
        # Same key, different experiment: the cached outcome must not count.
        stale = Job.from_config(
            jobs[0].config.replace(utilization=0.123), 0
        )
        assert stale.key == jobs[0].key and stale.digest != jobs[0].digest
        execute_jobs(
            [stale, jobs[1]],
            policy=ExecutionPolicy(run_dir=run_dir, resume=True),
            runner=touch_counting_runner,
        )
        assert (scratch / f"{stale.key}.runs").read_text() == "run\nrun\n"
        assert (scratch / f"{jobs[1].key}.runs").read_text() == "run\n"

    def test_resume_accepts_pre_fidelity_ledger(self, scratch, tmp_path):
        """Ledgers written before the ``fidelity``/``micro_events`` fields
        existed must resume cleanly against today's configs.

        Hand-writes records in the pre-PR6 layout: no ``micro_events``
        counter, and digests computed over a config payload with no
        ``fidelity`` key (which ``config_digest`` reproduces by eliding
        the default).  Every job must be skipped, not re-run.
        """
        run_dir = tmp_path / "run"
        run_dir.mkdir(parents=True)
        jobs = _jobs(2)
        lines = []
        for job in jobs:
            record = {"schema": 1}
            record.update(echo_runner(job).to_record())
            del record["micro_events"]  # the counter did not exist yet
            lines.append(json.dumps(record))
        RunLedger(run_dir).path.write_text("\n".join(lines) + "\n")
        outcomes = execute_jobs(
            jobs,
            policy=ExecutionPolicy(run_dir=run_dir, resume=True),
            runner=touch_counting_runner,
        )
        assert list(outcomes) == [job.key for job in jobs]
        for job in jobs:  # resumed from the ledger, never executed
            assert not (scratch / f"{job.key}.runs").exists()
        assert all(o.micro_events == 0 for o in outcomes.values())

    def test_resume_accepts_pre_consistency_ledger(self, scratch, tmp_path):
        """Ledgers written before the consistency layer existed must
        resume cleanly against today's configs.

        Hand-writes records in the pre-PR10 layout: digests computed over
        a config payload with no ``read_quorum``/``churn_schedule`` keys
        (which ``config_digest`` reproduces by eliding the defaults) and
        records carrying none of the write/churn counters.  Every job
        must be skipped, not re-run, and the missing counters default to
        zero on load.
        """
        import dataclasses
        import hashlib

        run_dir = tmp_path / "run"
        run_dir.mkdir(parents=True)
        jobs = _jobs(2)
        lines = []
        for job in jobs:
            fields = dataclasses.asdict(job.config)
            # The pre-PR10 config had none of these fields; earlier-era
            # elided fields (all at their defaults in _jobs) were likewise
            # absent from the hashed payload.
            for name in (
                "fidelity",
                "vector_batch",
                "shards",
                "read_quorum",
                "churn_schedule",
            ):
                fields.pop(name)
            legacy = hashlib.sha256(
                json.dumps(fields, sort_keys=True, default=repr).encode()
            ).hexdigest()[:16]
            assert legacy == job.digest  # elision keeps old ledgers valid
            record = {"schema": 1}
            record.update(echo_runner(job).to_record())
            record["digest"] = legacy
            for name in (  # none of these counters existed yet
                "writes_completed",
                "write_failures",
                "stale_reads",
                "read_repairs",
                "migrated_keys",
                "migration_bytes",
                "churn_events",
                "write_summary",
            ):
                del record[name]
            lines.append(json.dumps(record))
        RunLedger(run_dir).path.write_text("\n".join(lines) + "\n")
        outcomes = execute_jobs(
            jobs,
            policy=ExecutionPolicy(run_dir=run_dir, resume=True),
            runner=touch_counting_runner,
        )
        assert list(outcomes) == [job.key for job in jobs]
        for job in jobs:  # resumed from the ledger, never executed
            assert not (scratch / f"{job.key}.runs").exists()
        assert all(o.write_failures == 0 for o in outcomes.values())
        assert all(o.write_summary == {} for o in outcomes.values())

    def test_fresh_run_resets_stale_ledger(self, scratch, tmp_path):
        run_dir = tmp_path / "run"
        jobs = _jobs(1)
        policy = ExecutionPolicy(run_dir=run_dir)
        execute_jobs(jobs, policy=policy, runner=touch_counting_runner)
        execute_jobs(jobs, policy=policy, runner=touch_counting_runner)
        # No resume: the second run re-executed and re-spooled everything.
        assert (scratch / f"{jobs[0].key}.runs").read_text() == "run\nrun\n"
        assert len(RunLedger(run_dir)) == 1

    def test_default_run_dir_stable_and_content_addressed(self):
        jobs = _jobs(2)
        assert default_run_dir(jobs) == default_run_dir(jobs)
        assert default_run_dir(jobs) != default_run_dir(jobs[:1])

    def test_policy_ledger_resolution(self, tmp_path):
        jobs = _jobs(1)
        assert ExecutionPolicy().make_ledger(jobs) is None
        explicit = ExecutionPolicy(run_dir=tmp_path).make_ledger(jobs)
        assert explicit is not None and explicit.run_dir == tmp_path
        derived = ExecutionPolicy(resume=True).make_ledger(jobs)
        assert derived is not None
        assert derived.run_dir == default_run_dir(jobs)


class TestProgressReporting:
    def test_reporter_lines(self):
        import io

        stream = io.StringIO()
        jobs = _jobs(2)
        reporter = ProgressReporter(workers=1, stream=stream)
        execute_jobs(
            jobs,
            policy=ExecutionPolicy(progress=reporter),
            runner=echo_runner,
        )
        text = stream.getvalue()
        assert "0/2 jobs" in text
        assert "2/2 jobs" in text
        assert "done: 2/2 jobs" in text

    def test_reporter_announces_resumed_jobs(self, tmp_path):
        import io

        jobs = _jobs(2)
        run_dir = tmp_path / "run"
        execute_jobs(
            jobs, policy=ExecutionPolicy(run_dir=run_dir), runner=echo_runner
        )
        stream = io.StringIO()
        execute_jobs(
            jobs,
            policy=ExecutionPolicy(
                run_dir=run_dir,
                resume=True,
                progress=ProgressReporter(stream=stream),
            ),
            runner=echo_runner,
        )
        assert "2/2 jobs already in ledger" in stream.getvalue()
