"""Tests for the job model: stable keys, content digests, outcomes."""

import dataclasses
import hashlib
import json
import pathlib
import shutil

import pytest

from repro.errors import ConfigurationError
from repro.exec import Job, JobOutcome, config_digest
from repro.exec.ledger import RunLedger
from repro.experiments.config import ExperimentConfig

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


class TestJobKeys:
    def test_key_embeds_index_scheme_and_seed(self):
        config = ExperimentConfig.tiny(scheme="netrs-tor", seed=7)
        job = Job.from_config(config, 3)
        assert job.key == "00003-netrs-tor-s7"

    def test_key_order_is_submission_order(self):
        configs = [
            ExperimentConfig.tiny(scheme=scheme, seed=seed)
            for seed in range(3)
            for scheme in ("clirs", "netrs-tor")
        ]
        jobs = [Job.from_config(c, i) for i, c in enumerate(configs)]
        assert sorted(job.key for job in jobs) == [job.key for job in jobs]

    def test_invalid_config_rejected_at_job_creation(self):
        config = ExperimentConfig.tiny()
        config.scheme = "bogus"
        with pytest.raises(ConfigurationError):
            Job.from_config(config, 0)


class TestDigests:
    def test_digest_stable_for_equal_configs(self):
        first = ExperimentConfig.tiny(seed=2)
        second = ExperimentConfig.tiny(seed=2)
        assert config_digest(first) == config_digest(second)

    def test_digest_changes_with_any_field(self):
        base = ExperimentConfig.tiny(seed=2)
        assert config_digest(base) != config_digest(base.replace(seed=3))
        assert config_digest(base) != config_digest(
            base.replace(utilization=0.42)
        )

    def test_digest_elides_default_fidelity(self):
        """Ledgers written before ``fidelity`` existed must keep matching.

        The pre-PR6 digest hashed a payload with no ``fidelity`` key; the
        field is elided while it holds its default, so that digest is
        reproduced exactly.  A non-default fidelity is a different
        experiment and must change the digest.
        """
        config = ExperimentConfig.tiny(seed=2)
        fields = dataclasses.asdict(config)
        assert fields.pop("fidelity") == "packet"
        fields.pop("vector_batch")  # elided at defaults too (see below)
        fields.pop("shards")
        fields.pop("read_quorum")  # PR10 consistency knobs, same dance
        fields.pop("churn_schedule")
        legacy = hashlib.sha256(
            json.dumps(fields, sort_keys=True, default=repr).encode("utf-8")
        ).hexdigest()[:16]
        assert config_digest(config) == legacy
        assert config_digest(config.replace(fidelity="flow")) != legacy

    def test_new_field_without_elision_is_caught_by_con003(self, tmp_path):
        """The forward-compat dance can never be forgotten again: adding an
        ExperimentConfig field without a ``_DIGEST_DEFAULTS`` entry fails
        the contract sanitizer (ISSUE 8 satellite)."""
        from repro.experiments.contracts import DIGESTS
        from repro.lint.contracts import ContractRegistry, check_contracts

        for rel in (
            "src/repro/experiments/config.py",
            "src/repro/exec/job.py",
            "src/repro/cli.py",
        ):
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            shutil.copyfile(REPO_ROOT / rel, target)
        config_copy = tmp_path / "src/repro/experiments/config.py"
        source = config_copy.read_text(encoding="utf-8")
        marker = '    scheme: str = "clirs"\n'
        assert marker in source
        config_copy.write_text(
            source.replace(marker, marker + "    shiny_new_knob: int = 7\n"),
            encoding="utf-8",
        )
        registry = ContractRegistry(digests=list(DIGESTS))
        findings = check_contracts(str(tmp_path), registry=registry)
        assert findings, "CON003 missed an undigested config field"
        assert {f.rule for f in findings} == {"CON003"}
        assert all("'shiny_new_knob'" in f.message for f in findings)
        assert all(
            f.path == "src/repro/experiments/config.py" for f in findings
        )

    def test_digest_elides_default_vector_and_shard_knobs(self):
        """``vector_batch`` / ``shards`` follow the ``fidelity`` dance: the
        fields are elided at their defaults so ledgers written before the
        knobs existed keep matching, and any non-default value is a
        different experiment."""
        config = ExperimentConfig.tiny(seed=2)
        fields = dataclasses.asdict(config)
        assert fields.pop("fidelity") == "packet"
        assert fields.pop("vector_batch") == 0
        assert fields.pop("shards") == 1
        assert fields.pop("read_quorum") is None
        assert fields.pop("churn_schedule") is None
        legacy = hashlib.sha256(
            json.dumps(fields, sort_keys=True, default=repr).encode("utf-8")
        ).hexdigest()[:16]
        assert config_digest(config) == legacy
        flow = config.replace(fidelity="flow")
        assert config_digest(flow.replace(vector_batch=64)) != config_digest(flow)
        assert config_digest(flow.replace(shards=2)) != config_digest(flow)

    def test_handwritten_pre_pr9_ledger_still_resumes(self, tmp_path):
        """A ledger spooled before the vectorized/sharded flow tier existed
        (its digests hashed payloads with no ``vector_batch``/``shards``
        keys) must still resume against today's configs."""
        config = ExperimentConfig.tiny(seed=5)
        fields = dataclasses.asdict(config)
        fields.pop("fidelity")  # elided at its default, as before PR9
        fields.pop("vector_batch")  # the knobs did not exist yet
        fields.pop("shards")
        fields.pop("read_quorum")
        fields.pop("churn_schedule")
        legacy_digest = hashlib.sha256(
            json.dumps(fields, sort_keys=True, default=repr).encode("utf-8")
        ).hexdigest()[:16]
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        record = {
            "schema": 1,
            "key": "00000-clirs-s5",
            "digest": legacy_digest,
            "summary": {"mean": 1.0},
            "rsnode_count": 0,
            "completed_requests": 10,
            "wall_time": 0.1,
            "attempts": 1,
        }
        (run_dir / "ledger.jsonl").write_text(
            json.dumps(record) + "\n", encoding="utf-8"
        )
        outcomes = RunLedger(run_dir).load()
        job = Job.from_config(config, 0)
        assert job.key in outcomes
        assert outcomes[job.key].digest == job.digest

    def test_handwritten_pre_pr8_ledger_still_resumes(self, tmp_path):
        """A ledger written before the contract sanitizer existed must keep
        matching: the contract work pins digests, it does not change them."""
        config = ExperimentConfig.tiny(seed=5)
        fields = dataclasses.asdict(config)
        fields.pop("fidelity")  # the pre-PR6 payload had no fidelity key
        fields.pop("vector_batch")  # nor, later, the PR9 flow-tier knobs
        fields.pop("shards")
        fields.pop("read_quorum")  # nor the PR10 consistency knobs
        fields.pop("churn_schedule")
        legacy_digest = hashlib.sha256(
            json.dumps(fields, sort_keys=True, default=repr).encode("utf-8")
        ).hexdigest()[:16]
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        record = {
            "schema": 1,
            "key": "00000-clirs-s5",
            "digest": legacy_digest,
            "summary": {"mean": 1.0},
            "rsnode_count": 0,
            "completed_requests": 10,
            "wall_time": 0.1,
            "attempts": 1,
        }
        (run_dir / "ledger.jsonl").write_text(
            json.dumps(record) + "\n", encoding="utf-8"
        )
        outcomes = RunLedger(run_dir).load()
        job = Job.from_config(config, 0)
        # Resume skips a job when key AND digest match a recorded outcome.
        assert job.key in outcomes
        assert outcomes[job.key].digest == job.digest


class TestJobOutcome:
    def test_record_roundtrip(self):
        outcome = JobOutcome(
            key="00000-clirs-s0",
            digest="abc",
            summary={"mean": 1.0, "p99": 4.0},
            rsnode_count=2,
            completed_requests=100,
            wall_time=0.5,
            attempts=2,
        )
        assert JobOutcome.from_record(outcome.to_record()) == outcome

    def test_from_record_ignores_unknown_fields(self):
        record = {"key": "k", "digest": "d", "schema": 1, "mystery": True}
        outcome = JobOutcome.from_record(record)
        assert outcome.key == "k"
        assert outcome.digest == "d"
