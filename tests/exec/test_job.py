"""Tests for the job model: stable keys, content digests, outcomes."""

import dataclasses
import hashlib
import json

import pytest

from repro.errors import ConfigurationError
from repro.exec import Job, JobOutcome, config_digest
from repro.experiments.config import ExperimentConfig


class TestJobKeys:
    def test_key_embeds_index_scheme_and_seed(self):
        config = ExperimentConfig.tiny(scheme="netrs-tor", seed=7)
        job = Job.from_config(config, 3)
        assert job.key == "00003-netrs-tor-s7"

    def test_key_order_is_submission_order(self):
        configs = [
            ExperimentConfig.tiny(scheme=scheme, seed=seed)
            for seed in range(3)
            for scheme in ("clirs", "netrs-tor")
        ]
        jobs = [Job.from_config(c, i) for i, c in enumerate(configs)]
        assert sorted(job.key for job in jobs) == [job.key for job in jobs]

    def test_invalid_config_rejected_at_job_creation(self):
        config = ExperimentConfig.tiny()
        config.scheme = "bogus"
        with pytest.raises(ConfigurationError):
            Job.from_config(config, 0)


class TestDigests:
    def test_digest_stable_for_equal_configs(self):
        first = ExperimentConfig.tiny(seed=2)
        second = ExperimentConfig.tiny(seed=2)
        assert config_digest(first) == config_digest(second)

    def test_digest_changes_with_any_field(self):
        base = ExperimentConfig.tiny(seed=2)
        assert config_digest(base) != config_digest(base.replace(seed=3))
        assert config_digest(base) != config_digest(
            base.replace(utilization=0.42)
        )

    def test_digest_elides_default_fidelity(self):
        """Ledgers written before ``fidelity`` existed must keep matching.

        The pre-PR6 digest hashed a payload with no ``fidelity`` key; the
        field is elided while it holds its default, so that digest is
        reproduced exactly.  A non-default fidelity is a different
        experiment and must change the digest.
        """
        config = ExperimentConfig.tiny(seed=2)
        fields = dataclasses.asdict(config)
        assert fields.pop("fidelity") == "packet"
        legacy = hashlib.sha256(
            json.dumps(fields, sort_keys=True, default=repr).encode("utf-8")
        ).hexdigest()[:16]
        assert config_digest(config) == legacy
        assert config_digest(config.replace(fidelity="flow")) != legacy


class TestJobOutcome:
    def test_record_roundtrip(self):
        outcome = JobOutcome(
            key="00000-clirs-s0",
            digest="abc",
            summary={"mean": 1.0, "p99": 4.0},
            rsnode_count=2,
            completed_requests=100,
            wall_time=0.5,
            attempts=2,
        )
        assert JobOutcome.from_record(outcome.to_record()) == outcome

    def test_from_record_ignores_unknown_fields(self):
        record = {"key": "k", "digest": "d", "schema": 1, "mystery": True}
        outcome = JobOutcome.from_record(record)
        assert outcome.key == "k"
        assert outcome.digest == "d"
