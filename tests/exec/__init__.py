"""Tests for the parallel experiment-execution engine (repro.exec)."""
