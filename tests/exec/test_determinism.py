"""End-to-end determinism: parallel sweeps are byte-identical to serial.

This is the engine's core contract (ISSUE 1 acceptance criterion): running
the same grid on a worker pool must merge to exactly the result a serial
run produces, down to the JSON dump.
"""

import pytest

from repro.exec import ExecutionPolicy
from repro.experiments.config import ExperimentConfig
from repro.experiments.sweep import run_sweep


@pytest.fixture(scope="module")
def sweep_kwargs():
    return dict(
        parameter="utilization",
        values=[0.3, 0.9],
        schemes=["clirs", "netrs-tor"],
        repetitions=1,
    )


@pytest.fixture(scope="module")
def base():
    return ExperimentConfig.tiny(seed=3, total_requests=500)


def test_parallel_sweep_byte_identical_to_serial(base, sweep_kwargs, deterministic_sim):
    serial = run_sweep(base, **sweep_kwargs)
    parallel = run_sweep(
        base, **sweep_kwargs, execution=ExecutionPolicy(workers=2)
    )
    assert parallel.to_json() == serial.to_json()
    assert parallel.raw == serial.raw
    assert parallel.extras == serial.extras
    assert parallel.cells == serial.cells


def test_parallel_grid_identical_to_serial(base, deterministic_sim):
    from repro.experiments.grid import run_grid

    kwargs = dict(
        row_parameter="utilization",
        row_values=[0.3, 0.9],
        column_parameter="n_clients",
        column_values=[8],
        schemes=["clirs"],
    )
    serial = run_grid(base, **kwargs)
    parallel = run_grid(base, **kwargs, execution=ExecutionPolicy(workers=2))
    assert parallel.cells == serial.cells
