"""Tests for the JSONL run ledger."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.exec import LEDGER_NAME, JobOutcome, RunLedger


def _outcome(key: str, digest: str = "d", mean: float = 1.0) -> JobOutcome:
    return JobOutcome(key=key, digest=digest, summary={"mean": mean})


class TestRunLedger:
    def test_record_and_load_roundtrip(self, tmp_path):
        ledger = RunLedger(tmp_path / "run")
        first = _outcome("00000-clirs-s0")
        second = _outcome("00001-clirs-s1", mean=2.0)
        ledger.record(first)
        ledger.record(second)
        loaded = ledger.load()
        assert loaded == {first.key: first, second.key: second}
        assert len(ledger) == 2

    def test_empty_when_no_spool_exists(self, tmp_path):
        assert RunLedger(tmp_path / "nowhere").load() == {}

    def test_truncated_trailing_line_is_skipped(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.record(_outcome("00000-clirs-s0"))
        with (tmp_path / LEDGER_NAME).open("a") as spool:
            spool.write('{"schema": 1, "key": "00001-clirs-s1", "dig')
        loaded = ledger.load()
        assert set(loaded) == {"00000-clirs-s0"}

    def test_unknown_schema_is_skipped(self, tmp_path):
        ledger = RunLedger(tmp_path)
        record = {"schema": 999}
        record.update(_outcome("00000-clirs-s0").to_record())
        (tmp_path / LEDGER_NAME).write_text(json.dumps(record) + "\n")
        assert ledger.load() == {}

    def test_later_duplicate_record_wins(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.record(_outcome("00000-clirs-s0", mean=1.0))
        ledger.record(_outcome("00000-clirs-s0", mean=9.0))
        assert ledger.load()["00000-clirs-s0"].summary["mean"] == 9.0

    def test_reset_drops_previous_spool(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.record(_outcome("00000-clirs-s0"))
        ledger.reset()
        assert ledger.load() == {}

    def test_run_dir_colliding_with_file_is_configuration_error(self, tmp_path):
        collision = tmp_path / "not-a-dir"
        collision.write_text("")
        with pytest.raises(ConfigurationError):
            RunLedger(collision).record(_outcome("00000-clirs-s0"))
