"""Tests for the placement solvers: ILP, greedy, ToR, core-only."""

import pytest

from repro.core.placement import (
    solve_core_only,
    solve_greedy,
    solve_ilp,
    solve_tor,
)
from repro.core.placement.problem import PlacementProblem, build_operator_specs
from repro.core.plan import make_traffic_groups
from repro.errors import InfeasiblePlanError
from repro.network.fattree import build_fat_tree


@pytest.fixture(scope="module")
def topo():
    return build_fat_tree(4)


def _specs(topo, capacity_scale=1.0):
    specs = build_operator_specs(
        topo,
        accelerator_cores=1,
        accelerator_service_time=5e-6,
        max_utilization=0.5,
        work_per_request=2.0 / capacity_scale,
    )
    return specs


def _problem(topo, *, clients, traffic_per_group, budget, capacity_scale=1.0):
    groups = make_traffic_groups(topo, clients)
    traffic = {g.group_id: traffic_per_group for g in groups}
    return PlacementProblem(
        groups=groups,
        operators=_specs(topo, capacity_scale),
        traffic=traffic,
        extra_hops_budget=budget,
    )


CLIENTS = [
    "host0.0.0",
    "host0.0.1",
    "host0.1.0",
    "host1.0.0",
    "host2.0.0",
    "host3.1.0",
]


class TestIlp:
    def test_minimizes_rsnode_count_when_unconstrained(self, topo):
        """Cheap capacity + huge hop budget -> a single core RSNode."""
        problem = _problem(
            topo,
            clients=CLIENTS,
            traffic_per_group=(900.0, 80.0, 20.0),
            budget=10**9,
        )
        plan = solve_ilp(problem)
        assert plan.rsnode_count == 1
        assert plan.solver == "ilp"
        problem.check_assignment(plan.assignments)

    def test_hop_budget_forces_spreading(self, topo):
        """Tight hop budget pushes selection toward pod aggregations."""
        problem = _problem(
            topo,
            clients=CLIENTS,
            traffic_per_group=(900.0, 80.0, 20.0),
            budget=0.0,  # no extra hops at all
        )
        plan = solve_ilp(problem)
        problem.check_assignment(plan.assignments)
        assert problem.plan_extra_hops(plan.assignments) == 0.0
        # Zero budget means every group needs a zero-cost RSNode; with
        # tier-1 and tier-2 traffic that is only its own ToR... unless the
        # group has no such traffic.  Here every group has both, so:
        by_id = {op.operator_id: op for op in problem.operators}
        for gid, oid in plan.assignments.items():
            assert by_id[oid].tier == 2

    def test_capacity_forces_multiple_rsnodes(self, topo):
        problem = _problem(
            topo,
            clients=CLIENTS,
            traffic_per_group=(30_000.0, 0.0, 0.0),
            budget=10**9,
        )
        plan = solve_ilp(problem)
        # 5 groups (two clients share a rack) * 30k = 150k total vs 50k per
        # operator -> at least 3 RSNodes.
        assert plan.rsnode_count >= 3
        problem.check_assignment(plan.assignments)

    def test_mixed_plan_under_moderate_budget(self, topo):
        """Moderate budget yields the paper's agg+core plan shape."""
        problem = _problem(
            topo,
            clients=CLIENTS,
            traffic_per_group=(900.0, 80.0, 20.0),
            budget=6 * (2 * 80.0 + 4 * 20.0) * 0.6,
        )
        plan = solve_ilp(problem)
        problem.check_assignment(plan.assignments)
        tiers = {
            next(
                op.tier for op in problem.operators if op.operator_id == oid
            )
            for oid in plan.rsnode_ids
        }
        assert plan.rsnode_count < len(problem.groups)
        assert tiers <= {0, 1, 2}

    def test_infeasible_raises(self, topo):
        problem = _problem(
            topo,
            clients=CLIENTS,
            traffic_per_group=(200_000.0, 0.0, 0.0),
            budget=10**9,
        )
        # One group alone exceeds any operator's capacity.
        with pytest.raises(InfeasiblePlanError):
            solve_ilp(problem)

    def test_tie_break_prefers_fewer_hops(self, topo):
        problem = _problem(
            topo,
            clients=["host0.0.0", "host0.0.1"],
            traffic_per_group=(900.0, 80.0, 20.0),
            budget=10**9,
        )
        plan = solve_ilp(problem, hop_tie_break=True)
        # One RSNode suffices; with the tie-break it should be one with the
        # lowest detour cost for these same-rack groups.
        assert plan.rsnode_count == 1
        cost = problem.plan_extra_hops(plan.assignments)
        by_id = {op.operator_id: op for op in problem.operators}
        op = by_id[plan.rsnode_ids[0]]
        assert op.tier == 2  # own ToR has zero extra hops
        assert cost == 0.0


class TestGreedy:
    def test_feasible_and_valid(self, topo):
        problem = _problem(
            topo,
            clients=CLIENTS,
            traffic_per_group=(900.0, 80.0, 20.0),
            budget=2000.0,
        )
        plan = solve_greedy(problem)
        problem.check_assignment(plan.assignments)
        assert plan.solver == "greedy"

    def test_never_better_than_ilp(self, topo):
        for budget in (0.0, 500.0, 2000.0, 10**9):
            problem = _problem(
                topo,
                clients=CLIENTS,
                traffic_per_group=(900.0, 80.0, 20.0),
                budget=budget,
            )
            ilp_plan = solve_ilp(problem)
            greedy_plan = solve_greedy(problem)
            assert greedy_plan.rsnode_count >= ilp_plan.rsnode_count

    def test_infeasible_reports_unplaced(self, topo):
        problem = _problem(
            topo,
            clients=CLIENTS,
            traffic_per_group=(200_000.0, 0.0, 0.0),
            budget=10**9,
        )
        with pytest.raises(InfeasiblePlanError) as excinfo:
            solve_greedy(problem)
        assert excinfo.value.unplaced_groups


class TestTrivialSolvers:
    def test_tor_plan_uses_own_tors(self, topo):
        problem = _problem(
            topo,
            clients=CLIENTS,
            traffic_per_group=(900.0, 80.0, 20.0),
            budget=0.0,
        )
        plan = solve_tor(problem)
        by_id = {op.operator_id: op for op in problem.operators}
        for group in problem.groups:
            assert by_id[plan.assignments[group.group_id]].switch == group.tor
        assert problem.plan_extra_hops(plan.assignments) == 0.0

    def test_tor_plan_capacity_overflow_raises(self, topo):
        problem = _problem(
            topo,
            clients=CLIENTS,
            traffic_per_group=(200_000.0, 0.0, 0.0),
            budget=0.0,
        )
        with pytest.raises(InfeasiblePlanError):
            solve_tor(problem)

    def test_core_only_packs_onto_cores(self, topo):
        problem = _problem(
            topo,
            clients=CLIENTS,
            traffic_per_group=(900.0, 80.0, 20.0),
            budget=0.0,  # deliberately ignored by core-only
        )
        plan = solve_core_only(problem)
        by_id = {op.operator_id: op for op in problem.operators}
        assert all(
            by_id[oid].tier == 0 for oid in plan.rsnode_ids
        )
        assert plan.rsnode_count == 1

    def test_core_only_respects_capacity(self, topo):
        problem = _problem(
            topo,
            clients=CLIENTS,
            traffic_per_group=(25_000.0, 0.0, 0.0),
            budget=0.0,
        )
        # 5 groups * 25k vs 50k per core -> two groups per core, 3 cores.
        plan = solve_core_only(problem)
        assert plan.rsnode_count == 3
        loads = problem.plan_operator_loads(plan.assignments)
        by_id = {op.operator_id: op for op in problem.operators}
        assert all(
            loads[oid] <= by_id[oid].capacity * (1 + 1e-9) + 1e-6
            for oid in loads
        )
