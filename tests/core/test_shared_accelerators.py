"""Tests for shared accelerators and heterogeneous capacities (III-B)."""

import pytest

from repro.core.placement import (
    solve_core_only,
    solve_greedy,
    solve_ilp,
    solve_tor,
)
from repro.core.placement.problem import (
    PlacementProblem,
    build_operator_specs,
)
from repro.core.plan import make_traffic_groups
from repro.errors import ConfigurationError, InfeasiblePlanError
from repro.network.addressing import TIER_CORE
from repro.network.fattree import build_fat_tree


@pytest.fixture(scope="module")
def topo():
    return build_fat_tree(4)


CLIENTS = ["host0.0.0", "host0.1.0", "host1.0.0", "host2.0.0", "host3.1.0"]


def _specs(topo, **kwargs):
    return build_operator_specs(
        topo,
        accelerator_cores=1,
        accelerator_service_time=5e-6,
        max_utilization=0.5,
        work_per_request=2.0,
        **kwargs,
    )


def _problem(topo, *, per_group, budget=10**12, shared=None, specs=None):
    groups = make_traffic_groups(topo, CLIENTS)
    operators = specs if specs is not None else _specs(topo)
    traffic = {g.group_id: (per_group, 0.0, 0.0) for g in groups}
    return PlacementProblem(
        groups=groups,
        operators=operators,
        traffic=traffic,
        extra_hops_budget=budget,
        shared_accelerators=shared or {},
    )


class TestValidation:
    def test_unknown_operator_in_set(self, topo):
        with pytest.raises(ConfigurationError):
            _problem(topo, per_group=1.0, shared={frozenset({9999}): 100.0})

    def test_overlapping_sets(self, topo):
        with pytest.raises(ConfigurationError):
            _problem(
                topo,
                per_group=1.0,
                shared={
                    frozenset({1, 2}): 100.0,
                    frozenset({2, 3}): 100.0,
                },
            )

    def test_non_positive_capacity(self, topo):
        with pytest.raises(ConfigurationError):
            _problem(topo, per_group=1.0, shared={frozenset({1}): 0.0})

    def test_capacity_groups_cover_everyone(self, topo):
        problem = _problem(
            topo, per_group=1.0, shared={frozenset({1, 2}): 100.0}
        )
        covered = set()
        for members, _capacity in problem.capacity_groups():
            assert not covered & set(members)
            covered |= set(members)
        assert covered == {op.operator_id for op in problem.operators}

    def test_capacity_of_operator(self, topo):
        problem = _problem(
            topo, per_group=1.0, shared={frozenset({1, 2}): 123.0}
        )
        assert problem.capacity_of_operator(1) == 123.0
        assert problem.capacity_of_operator(3) == pytest.approx(50_000.0)


class TestSharedCapacityConstrainsPlans:
    def test_joint_constraint_forces_more_rsnodes(self, topo):
        """Two cores behind one accelerator cannot both absorb full load."""
        core_ids = [
            op.operator_id for op in _specs(topo) if op.tier == TIER_CORE
        ]
        # 5 groups x 20k = 100k total; one dedicated core would need two
        # (50k each); sharing one accelerator across ALL cores caps the
        # whole core tier at 50k, forcing at least one non-core RSNode.
        shared = {frozenset(core_ids): 50_000.0}
        problem = _problem(topo, per_group=20_000.0, shared=shared)
        plan = solve_ilp(problem)
        problem.check_assignment(plan.assignments)
        by_id = {op.operator_id: op for op in problem.operators}
        tiers = [by_id[oid].tier for oid in plan.rsnode_ids]
        assert any(t != TIER_CORE for t in tiers)

    def test_greedy_respects_shared_capacity(self, topo):
        core_ids = [
            op.operator_id for op in _specs(topo) if op.tier == TIER_CORE
        ]
        shared = {frozenset(core_ids): 50_000.0}
        problem = _problem(topo, per_group=20_000.0, shared=shared)
        plan = solve_greedy(problem)
        problem.check_assignment(plan.assignments)

    def test_core_only_fails_when_shared_core_capacity_too_small(self, topo):
        core_ids = [
            op.operator_id for op in _specs(topo) if op.tier == TIER_CORE
        ]
        shared = {frozenset(core_ids): 50_000.0}
        problem = _problem(topo, per_group=20_000.0, shared=shared)
        with pytest.raises(InfeasiblePlanError):
            solve_core_only(problem)

    def test_tor_solver_with_shared_tor_accelerator(self, topo):
        specs = _specs(topo)
        tor_ids = [
            op.operator_id
            for op in specs
            if op.switch in ("tor0.0", "tor0.1")
        ]
        shared = {frozenset(tor_ids): 1.0}  # essentially no capacity
        problem = _problem(topo, per_group=20_000.0, shared=shared)
        with pytest.raises(InfeasiblePlanError):
            solve_tor(problem)

    def test_unshared_problem_unaffected(self, topo):
        plain = _problem(topo, per_group=100.0)
        shared = _problem(
            topo, per_group=100.0, shared={frozenset({1}): 50_000.0}
        )
        assert (
            solve_ilp(plain).rsnode_count == solve_ilp(shared).rsnode_count
        )


class TestHeterogeneousCapacities:
    def test_override_changes_capacity(self, topo):
        specs = _specs(topo, utilization_overrides={"core0": 0.9})
        by_switch = {op.switch: op for op in specs}
        assert by_switch["core0"].capacity == pytest.approx(90_000.0)
        assert by_switch["core1"].capacity == pytest.approx(50_000.0)

    def test_unknown_switch_rejected(self, topo):
        with pytest.raises(ConfigurationError):
            _specs(topo, utilization_overrides={"ghost": 0.9})

    def test_bad_override_value_rejected(self, topo):
        with pytest.raises(ConfigurationError):
            _specs(topo, utilization_overrides={"core0": 0.0})

    def test_plan_prefers_beefy_accelerator(self, topo):
        """With only one accelerator able to hold everything, use it."""
        specs = _specs(topo, utilization_overrides={"core3": 1.0})
        # Total load 5 * 18k = 90k; normal operators hold 50k, core3 100k,
        # so only the dedicated accelerator can take everything alone.
        problem = _problem(topo, per_group=18_000.0, specs=specs)
        plan = solve_ilp(problem)
        by_id = {op.operator_id: op for op in problem.operators}
        assert plan.rsnode_count == 1
        assert by_id[plan.rsnode_ids[0]].switch == "core3"
