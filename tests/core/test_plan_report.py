"""Tests for the plan-quality report."""

import pytest

from repro.core.placement import plan_report, solve_ilp
from repro.core.placement.problem import PlacementProblem, build_operator_specs
from repro.core.plan import SelectionPlan, make_traffic_groups
from repro.network.fattree import build_fat_tree


@pytest.fixture(scope="module")
def setup():
    topo = build_fat_tree(4)
    groups = make_traffic_groups(topo, ["host0.0.0", "host1.0.0", "host2.0.0"])
    operators = build_operator_specs(
        topo,
        accelerator_cores=1,
        accelerator_service_time=5e-6,
        max_utilization=0.5,
    )
    traffic = {g.group_id: (800.0, 150.0, 50.0) for g in groups}
    problem = PlacementProblem(
        groups=groups,
        operators=operators,
        traffic=traffic,
        extra_hops_budget=3000.0,
    )
    return problem, solve_ilp(problem)


class TestPlanReport:
    def test_contains_every_rsnode(self, setup):
        problem, plan = setup
        text = plan_report(problem, plan)
        for operator_id in plan.rsnode_ids:
            assert str(operator_id) in text

    def test_reports_budget_share(self, setup):
        problem, plan = setup
        text = plan_report(problem, plan)
        assert "total extra hops" in text
        assert "of budget" in text

    def test_utilization_column(self, setup):
        problem, plan = setup
        text = plan_report(problem, plan)
        assert "util" in text
        assert "%" in text

    def test_degraded_groups_listed(self, setup):
        problem, _ = setup
        plan = SelectionPlan(
            assignments={
                problem.groups[0].group_id: plan_target(problem)
            },
            drs_groups=frozenset(
                g.group_id for g in problem.groups[1:]
            ),
        )
        text = plan_report(problem, plan)
        assert "degraded groups" in text
        assert "client backups" in text


def plan_target(problem):
    return next(op.operator_id for op in problem.operators if op.tier == 0)
