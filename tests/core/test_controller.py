"""Tests for the NetRS controller: planning, deployment, DRS, failures.

These use the scenario builder at tiny scale so the controller is exercised
against real switches, monitors and operators.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import build_scenario
from repro.network.packet import RSNODE_ILLEGAL


@pytest.fixture
def scenario():
    config = ExperimentConfig.tiny(scheme="netrs-ilp", seed=3)
    return build_scenario(config)


class TestInitialDeployment:
    def test_plan_deployed(self, scenario):
        controller = scenario.controller
        assert controller is not None
        assert controller.current_plan is not None
        assert controller.deployments == 1
        assert scenario.plan.rsnode_count >= 1

    def test_every_group_has_a_rule(self, scenario):
        controller = scenario.controller
        for group in controller.groups:
            tor = scenario.switches[group.tor]
            assert tor.rsnode_of_group(group.group_id) is not None

    def test_active_operators_have_selectors(self, scenario):
        controller = scenario.controller
        active = set(controller.current_plan.assignments.values())
        for op_id, operator in controller.operators.items():
            if op_id in active:
                assert operator.active
                assert operator.selector is not None
            else:
                assert not operator.active

    def test_group_tables_installed(self, scenario):
        controller = scenario.controller
        for group in controller.groups:
            tor = scenario.switches[group.tor]
            for host in group.hosts:
                assert tor._group_of_host[host] == group.group_id

    def test_concurrency_weight_matches_rsnode_count(self, scenario):
        controller = scenario.controller
        n = controller.current_plan.rsnode_count
        for operator in controller.operators.values():
            if operator.active:
                assert operator.selector.algorithm.concurrency_weight == n


class TestRedeployment:
    def test_redeploy_keeps_warm_selectors(self, scenario):
        controller = scenario.controller
        plan = controller.current_plan
        warm = {
            op_id: controller.operators[op_id].selector
            for op_id in plan.assignments.values()
        }
        controller.deploy(plan)
        for op_id, selector in warm.items():
            assert controller.operators[op_id].selector is selector

    def test_plan_change_deactivates_dropped_operators(self, scenario):
        controller = scenario.controller
        plan = controller.current_plan
        active = sorted(set(plan.assignments.values()))
        # Force everything onto the first active operator if it fits; build
        # a synthetic plan reusing the ILP's operator as the single RSNode.
        target = active[0]
        from repro.core.plan import SelectionPlan

        eligible_groups = [
            g
            for g in controller.groups
            if controller.build_problem(
                {x.group_id: (1.0, 0.0, 0.0) for x in controller.groups}
            ).eligible(
                g,
                controller.operators[target].spec,
            )
        ]
        if len(eligible_groups) != len(controller.groups):
            pytest.skip("first operator not eligible for all groups")
        new_plan = SelectionPlan(
            assignments={g.group_id: target for g in controller.groups}
        )
        controller.deploy(new_plan)
        for op_id, operator in controller.operators.items():
            assert operator.active == (op_id == target)


class TestDegradation:
    def test_degrade_groups_installs_illegal_id(self, scenario):
        controller = scenario.controller
        group = controller.groups[0]
        controller.degrade_groups([group.group_id])
        tor = scenario.switches[group.tor]
        assert tor.rsnode_of_group(group.group_id) == RSNODE_ILLEGAL
        assert group.group_id in controller.current_plan.drs_groups

    def test_unknown_group_rejected(self, scenario):
        with pytest.raises(ConfigurationError):
            scenario.controller.degrade_groups([999])

    def test_operator_failure_degrades_its_groups(self, scenario):
        controller = scenario.controller
        plan = controller.current_plan
        victim = plan.rsnode_ids[0]
        groups = plan.groups_of(victim)
        controller.handle_operator_failure(victim)
        assert controller.operators[victim].switch.failed
        assert controller.failures_handled == 1
        for group_id in groups:
            group = controller.groups_by_id[group_id]
            tor = scenario.switches[group.tor]
            assert tor.rsnode_of_group(group_id) == RSNODE_ILLEGAL

    def test_recover_operator(self, scenario):
        controller = scenario.controller
        victim = controller.current_plan.rsnode_ids[0]
        controller.handle_operator_failure(victim)
        controller.recover_operator(victim)
        assert not controller.operators[victim].switch.failed

    def test_overload_check_noop_when_idle(self, scenario):
        controller = scenario.controller
        assert controller.check_overloads(max_utilization=0.5) == []
        assert controller.overloads_handled == 0


class TestPlanningWithDrs:
    def test_infeasible_traffic_degrades_hot_groups(self, scenario):
        controller = scenario.controller
        # Give one group an impossible rate: it must end up degraded.
        traffic = {
            g.group_id: (10.0, 1.0, 1.0) for g in controller.groups
        }
        hot = controller.groups[0].group_id
        traffic[hot] = (10**9, 0.0, 0.0)
        plan = controller.plan(traffic)
        assert hot in plan.drs_groups
        assert set(plan.assignments) == {
            g.group_id for g in controller.groups if g.group_id != hot
        }


class TestMeasuredTraffic:
    def test_monitor_rates_feed_replanning(self):
        config = ExperimentConfig.tiny(scheme="netrs-ilp", seed=3)
        result = run_experiment(config, keep_scenario=True)
        scenario = result.scenario
        traffic = scenario.controller.measured_traffic()
        # Monitors saw the whole run: every group has traffic.
        assert set(traffic) == {g.group_id for g in scenario.controller.groups}
        assert all(sum(rates) > 0 for rates in traffic.values())

    def test_replanning_from_measured_traffic_is_deployable(self):
        config = ExperimentConfig.tiny(scheme="netrs-ilp", seed=3)
        result = run_experiment(config, keep_scenario=True)
        scenario = result.scenario
        controller = scenario.controller
        plan = controller.plan(controller.measured_traffic())
        controller.deploy(plan)
        assert controller.deployments == 2


class TestPeriodicReplanning:
    def test_replans_during_run(self):
        config = ExperimentConfig.tiny(
            scheme="netrs-ilp", seed=3, replan_period=0.05
        )
        result = run_experiment(config, keep_scenario=True)
        controller = result.scenario.controller
        assert controller.replans >= 1

    def test_replan_period_validated(self, scenario):
        with pytest.raises(ConfigurationError):
            scenario.controller.start_replanning(0.0)


class TestRecoveryRestoresService:
    def test_replan_after_recovery_clears_drs(self):
        config = ExperimentConfig.tiny(scheme="netrs-ilp", seed=3)
        result = run_experiment(config, keep_scenario=True)
        scenario = result.scenario
        controller = scenario.controller
        victim = controller.current_plan.rsnode_ids[0]
        controller.handle_operator_failure(victim)
        assert controller.current_plan.drs_groups
        controller.recover_operator(victim)
        # A fresh plan from measured traffic reassigns every group.
        plan = controller.plan(controller.measured_traffic())
        controller.deploy(plan)
        assert not plan.drs_groups
        for group in controller.groups:
            tor = scenario.switches[group.tor]
            assert tor.rsnode_of_group(group.group_id) != -1
