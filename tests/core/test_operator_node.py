"""Tests for the NetRS operator runtime bundle."""

import numpy as np
import pytest

from repro.core.operator_node import NetRSOperator
from repro.core.placement.problem import OperatorSpec
from repro.core.selector_node import NetRSSelector
from repro.errors import ConfigurationError
from repro.kvstore.hashing import ConsistentHashRing
from repro.network.accelerator import Accelerator
from repro.network.fabric import Network
from repro.network.fattree import build_fat_tree
from repro.network.switch import ProgrammableSwitch
from repro.selection.c3 import C3Selector
from repro.sim import Environment

SERVERS = [f"server{i}" for i in range(4)]


@pytest.fixture
def parts():
    env = Environment()
    topo = build_fat_tree(4)
    network = Network(env, topo)
    accelerator = Accelerator(env, "acc")
    switch = ProgrammableSwitch(
        "agg0.0", network, operator_id=7, accelerator=accelerator
    )
    spec = OperatorSpec(
        operator_id=7, switch="agg0.0", tier=1, pod=0, capacity=1000.0
    )
    ring = ConsistentHashRing(SERVERS, replication_factor=3, virtual_nodes=4)
    selector = NetRSSelector(
        env,
        algorithm=C3Selector(
            concurrency_weight=1,
            prior_service_rate=100.0,
            rng=np.random.default_rng(0),
        ),
        ring=ring,
    )
    return env, spec, switch, accelerator, selector


class TestNetRSOperator:
    def test_construction_checks_wiring(self, parts):
        env, spec, switch, accelerator, _ = parts
        operator = NetRSOperator(spec, switch, accelerator)
        assert operator.operator_id == 7
        assert not operator.active

    def test_mismatched_switch_rejected(self, parts):
        env, spec, switch, accelerator, _ = parts
        bad_spec = OperatorSpec(
            operator_id=7, switch="agg0.1", tier=1, pod=0, capacity=1000.0
        )
        with pytest.raises(ConfigurationError):
            NetRSOperator(bad_spec, switch, accelerator)

    def test_mismatched_accelerator_rejected(self, parts):
        env, spec, switch, _, _ = parts
        other = Accelerator(env, "other")
        with pytest.raises(ConfigurationError):
            NetRSOperator(spec, switch, other)

    def test_activate_binds_selector(self, parts):
        env, spec, switch, accelerator, selector = parts
        operator = NetRSOperator(spec, switch, accelerator)
        operator.activate(selector, {7: "agg0.0"})
        assert operator.active
        assert switch.selector is selector
        assert operator.activations == 1

    def test_deactivate_unbinds(self, parts):
        env, spec, switch, accelerator, selector = parts
        operator = NetRSOperator(spec, switch, accelerator)
        operator.activate(selector, {7: "agg0.0"})
        operator.deactivate()
        assert not operator.active
        assert switch.selector is None

    def test_activation_resets_utilization_window(self, parts):
        env, spec, switch, accelerator, selector = parts
        accelerator.submit("p", work=lambda p: p)
        env.run()
        operator = NetRSOperator(spec, switch, accelerator)
        operator.activate(selector, {7: "agg0.0"})
        assert operator.utilization() == 0.0
