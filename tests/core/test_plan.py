"""Tests for traffic groups and the Replica Selection Plan."""

import pytest

from repro.core.plan import SelectionPlan, TrafficGroup, make_traffic_groups
from repro.errors import ConfigurationError
from repro.network.fattree import build_fat_tree


@pytest.fixture(scope="module")
def topo():
    return build_fat_tree(4)


CLIENTS = ["host0.0.0", "host0.0.1", "host0.1.0", "host2.0.0", "host2.0.1"]


class TestMakeTrafficGroups:
    def test_rack_level(self, topo):
        groups = make_traffic_groups(topo, CLIENTS, "rack")
        assert len(groups) == 3  # racks (0,0), (0,1), (2,0)
        by_tor = {g.tor: g for g in groups}
        assert set(by_tor) == {"tor0.0", "tor0.1", "tor2.0"}
        assert by_tor["tor0.0"].hosts == ("host0.0.0", "host0.0.1")

    def test_host_level(self, topo):
        groups = make_traffic_groups(topo, CLIENTS, "host")
        assert len(groups) == len(CLIENTS)
        assert all(len(g.hosts) == 1 for g in groups)

    def test_intervening_level(self, topo):
        clients = ["host0.0.0", "host0.0.1", "host0.1.0"]
        groups = make_traffic_groups(topo, clients, 1)
        assert len(groups) == 3
        groups2 = make_traffic_groups(topo, clients, 2)
        assert len(groups2) == 2

    def test_group_ids_start_at_one(self, topo):
        groups = make_traffic_groups(topo, CLIENTS)
        assert min(g.group_id for g in groups) == 1
        assert len({g.group_id for g in groups}) == len(groups)

    def test_pod_rack_metadata(self, topo):
        groups = make_traffic_groups(topo, ["host2.1.1"])
        assert groups[0].pod == 2
        assert groups[0].rack == 1
        assert groups[0].tier == 2

    def test_bad_granularity(self, topo):
        with pytest.raises(ConfigurationError):
            make_traffic_groups(topo, CLIENTS, "pod")
        with pytest.raises(ConfigurationError):
            make_traffic_groups(topo, CLIENTS, 0)

    def test_empty_group_rejected(self):
        with pytest.raises(ConfigurationError):
            TrafficGroup(group_id=1, tor="tor0.0", pod=0, rack=0, hosts=())

    def test_deterministic_ordering(self, topo):
        a = make_traffic_groups(topo, list(reversed(CLIENTS)))
        b = make_traffic_groups(topo, CLIENTS)
        assert [(g.tor, g.hosts) for g in a] == [(g.tor, g.hosts) for g in b]


class TestSelectionPlan:
    def test_rsnode_accounting(self):
        plan = SelectionPlan(assignments={1: 10, 2: 10, 3: 11})
        assert plan.rsnode_count == 2
        assert plan.rsnode_ids == (10, 11)

    def test_operator_of(self):
        plan = SelectionPlan(assignments={1: 10})
        assert plan.operator_of(1) == 10
        with pytest.raises(ConfigurationError):
            plan.operator_of(99)

    def test_degraded_group_lookup_raises(self):
        plan = SelectionPlan(assignments={1: 10}, drs_groups=frozenset({2}))
        with pytest.raises(ConfigurationError):
            plan.operator_of(2)

    def test_groups_of(self):
        plan = SelectionPlan(assignments={1: 10, 2: 10, 3: 11})
        assert plan.groups_of(10) == (1, 2)
        assert plan.groups_of(99) == ()

    def test_describe_mentions_drs(self):
        plan = SelectionPlan(
            assignments={1: 10}, drs_groups=frozenset({2}), solver="ilp"
        )
        text = plan.describe()
        assert "1 RSNodes" in text
        assert "degraded" in text
