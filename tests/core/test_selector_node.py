"""Tests for the NetRS selector running on an accelerator."""

import numpy as np
import pytest

from repro.core.selector_node import NetRSSelector
from repro.errors import ProtocolError
from repro.kvstore.hashing import ConsistentHashRing
from repro.network.packet import (
    MAGIC_RESPONSE,
    ServerStatus,
    magic_transform,
    make_request,
    make_response,
)
from repro.selection.c3 import C3Selector
from repro.sim import Environment

SERVERS = [f"server{i}" for i in range(6)]


@pytest.fixture
def setup():
    env = Environment()
    ring = ConsistentHashRing(SERVERS, replication_factor=3, virtual_nodes=8)
    algorithm = C3Selector(
        concurrency_weight=2,
        prior_service_rate=1000.0,
        rng=np.random.default_rng(0),
    )
    selector = NetRSSelector(env, algorithm=algorithm, ring=ring)
    return env, ring, algorithm, selector


def _request(ring, key=5):
    rgid, _ = ring.group_for_key(key)
    return make_request(
        client="client0",
        request_id=1,
        key=key,
        rgid=rgid,
        backup_replica="server0",
        issued_at=0.0,
        netrs=True,
    )


class TestOnRequest:
    def test_selects_a_replica_of_the_group(self, setup):
        env, ring, _, selector = setup
        packet = _request(ring)
        result = selector.on_request(packet)
        _, replicas = ring.group_for_key(5)
        assert result is packet
        assert packet.dst in replicas
        assert packet.server == packet.dst

    def test_rebuilds_magic_and_rv(self, setup):
        env, ring, _, selector = setup
        env.call_in(0.5, lambda: None)
        env.run()
        packet = _request(ring)
        selector.on_request(packet)
        assert packet.magic == magic_transform(MAGIC_RESPONSE)
        assert packet.retaining_value == 0.5  # send timestamp, per the paper

    def test_counts_outstanding(self, setup):
        env, ring, algorithm, selector = setup
        packet = _request(ring)
        selector.on_request(packet)
        assert algorithm.outstanding(packet.dst) == 1
        assert selector.requests_handled == 1

    def test_missing_rgid_rejected(self, setup):
        env, ring, _, selector = setup
        packet = _request(ring)
        packet.rgid = -1
        with pytest.raises(ProtocolError):
            selector.on_request(packet)


class TestOnResponse:
    def test_updates_algorithm_state(self, setup):
        env, ring, algorithm, selector = setup
        request = _request(ring)
        selector.on_request(request)
        server = request.dst
        env.call_in(4e-3, lambda: None)
        env.run()
        status = ServerStatus(queue_size=3, service_rate=900.0, timestamp=env.now)
        response = make_response(request, server=server, status=status)
        selector.on_response(response)
        assert algorithm.outstanding(server) == 0
        assert selector.responses_handled == 1
        track = algorithm._tracks[server]
        assert track.response_time == pytest.approx(4e-3)
        assert track.queue_size == pytest.approx(3.0)

    def test_missing_status_rejected(self, setup):
        env, ring, _, selector = setup
        request = _request(ring)
        selector.on_request(request)
        request.server_status = None
        with pytest.raises(ProtocolError):
            selector.on_response(request)

    def test_feedback_loop_shifts_selection(self, setup):
        """Bad feedback about one replica steers later requests away."""
        env, ring, algorithm, selector = setup
        packet = _request(ring)
        selector.on_request(packet)
        loaded = packet.dst
        status = ServerStatus(queue_size=30, service_rate=100.0, timestamp=0.0)
        response = make_response(packet, server=loaded, status=status)
        selector.on_response(response)
        picks = set()
        for i in range(10):
            fresh = _request(ring)
            fresh.request_id = 100 + i
            selector.on_request(fresh)
            picks.add(fresh.dst)
        assert loaded not in picks
