"""Tests for the NetRS monitor's per-group tier counters."""

import pytest

from repro.core.monitor import NetRSMonitor
from repro.errors import ProtocolError
from repro.network.addressing import SourceMarker
from repro.network.packet import MAGIC_MONITOR, Packet, ServerStatus
from repro.sim import Environment

GROUPS = {"client0": 1, "client1": 1, "client2": 2}


def _monitor(env):
    return NetRSMonitor(
        env,
        marker=SourceMarker(pod=0, rack=0),
        group_lookup=GROUPS.get,
    )


def _response(dst="client0", src_pod=0, src_rack=0):
    return Packet(
        src="server",
        dst=dst,
        magic=MAGIC_MONITOR,
        request_id=1,
        source_marker=SourceMarker(pod=src_pod, rack=src_rack),
        server_status=ServerStatus(queue_size=0, service_rate=1.0, timestamp=0.0),
        client=dst,
        server="server",
    )


class TestObserve:
    def test_counts_by_tier(self):
        env = Environment()
        monitor = _monitor(env)
        monitor.observe(_response(src_pod=0, src_rack=0))  # same rack: tier2
        monitor.observe(_response(src_pod=0, src_rack=1))  # same pod: tier1
        monitor.observe(_response(src_pod=3, src_rack=0))  # cross pod: tier0
        monitor.observe(_response(src_pod=3, src_rack=0))
        assert monitor.counts()[1] == (2, 1, 1)
        assert monitor.observed == 4

    def test_groups_kept_separate(self):
        env = Environment()
        monitor = _monitor(env)
        monitor.observe(_response(dst="client0", src_pod=1))
        monitor.observe(_response(dst="client2", src_pod=1))
        counts = monitor.counts()
        assert counts[1] == (1, 0, 0)
        assert counts[2] == (1, 0, 0)

    def test_unknown_destination_is_unmatched(self):
        env = Environment()
        monitor = _monitor(env)
        monitor.observe(_response(dst="stranger"))
        assert monitor.observed == 0
        assert monitor.unmatched == 1
        assert monitor.counts() == {}

    def test_missing_marker_rejected(self):
        env = Environment()
        monitor = _monitor(env)
        packet = _response()
        packet.source_marker = None
        with pytest.raises(ProtocolError):
            monitor.observe(packet)


class TestRates:
    def test_rates_divide_by_window(self):
        env = Environment()
        monitor = _monitor(env)
        for _ in range(10):
            monitor.observe(_response(src_pod=2))
        env.call_in(2.0, lambda: None)
        env.run()
        assert monitor.rates()[1] == pytest.approx((5.0, 0.0, 0.0))

    def test_zero_window_rates_are_zero(self):
        env = Environment()
        monitor = _monitor(env)
        monitor.observe(_response())
        assert monitor.rates()[1] == (0.0, 0.0, 0.0)

    def test_reset_clears_counts_and_window(self):
        env = Environment()
        monitor = _monitor(env)
        monitor.observe(_response())
        env.call_in(1.0, lambda: None)
        env.run()
        monitor.reset()
        assert monitor.counts() == {}
        assert monitor.window_started_at == 1.0
