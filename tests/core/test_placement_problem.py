"""Tests for the placement-problem model: R matrix, loads, extra hops."""

import pytest

from repro.core.placement.problem import (
    OperatorSpec,
    PlacementProblem,
    build_operator_specs,
    estimate_traffic,
)
from repro.core.plan import make_traffic_groups
from repro.errors import ConfigurationError
from repro.network.fattree import build_fat_tree


@pytest.fixture(scope="module")
def topo():
    return build_fat_tree(4)


@pytest.fixture
def problem(topo):
    groups = make_traffic_groups(topo, ["host0.0.0", "host0.0.1", "host2.0.0"])
    operators = build_operator_specs(
        topo,
        accelerator_cores=1,
        accelerator_service_time=5e-6,
        max_utilization=0.5,
        work_per_request=2.0,
    )
    traffic = {g.group_id: (800.0, 150.0, 50.0) for g in groups}
    return PlacementProblem(
        groups=groups,
        operators=operators,
        traffic=traffic,
        extra_hops_budget=1000.0,
    )


class TestOperatorSpecs:
    def test_capacity_formula(self, topo):
        specs = build_operator_specs(
            topo,
            accelerator_cores=1,
            accelerator_service_time=5e-6,
            max_utilization=0.5,
            work_per_request=2.0,
        )
        # 0.5 * 1 / 5us = 100k packets/s; /2 work units = 50k requests/s.
        assert specs[0].capacity == pytest.approx(50_000.0)

    def test_one_spec_per_switch(self, topo):
        specs = build_operator_specs(
            topo,
            accelerator_cores=1,
            accelerator_service_time=5e-6,
            max_utilization=0.5,
        )
        assert len(specs) == len(topo.switches)
        assert len({s.operator_id for s in specs}) == len(specs)
        assert min(s.operator_id for s in specs) == 1

    def test_invalid_utilization(self, topo):
        with pytest.raises(ConfigurationError):
            build_operator_specs(
                topo,
                accelerator_cores=1,
                accelerator_service_time=5e-6,
                max_utilization=0.0,
            )

    def test_operator_id_positive(self):
        with pytest.raises(ConfigurationError):
            OperatorSpec(operator_id=0, switch="x", tier=0, pod=None, capacity=1.0)


class TestEligibility:
    def test_core_serves_everyone(self, problem):
        cores = [op for op in problem.operators if op.tier == 0]
        for group in problem.groups:
            for core in cores:
                assert problem.eligible(group, core)

    def test_agg_serves_own_pod_only(self, problem):
        group0 = next(g for g in problem.groups if g.pod == 0)
        group2 = next(g for g in problem.groups if g.pod == 2)
        aggs0 = [op for op in problem.operators if op.tier == 1 and op.pod == 0]
        for agg in aggs0:
            assert problem.eligible(group0, agg)
            assert not problem.eligible(group2, agg)

    def test_tor_serves_own_rack_only(self, problem):
        group = next(g for g in problem.groups if g.tor == "tor0.0")
        own = next(op for op in problem.operators if op.switch == "tor0.0")
        other = next(op for op in problem.operators if op.switch == "tor0.1")
        assert problem.eligible(group, own)
        assert not problem.eligible(group, other)

    def test_eligible_operator_count(self, problem):
        """cores + own-pod aggs + own ToR in a 4-ary fat-tree = 4 + 2 + 1."""
        group = problem.groups[0]
        assert len(problem.eligible_operators(group)) == 7


class TestExtraHops:
    def test_own_tor_costs_nothing(self, problem):
        group = next(g for g in problem.groups if g.tor == "tor0.0")
        tor_op = next(op for op in problem.operators if op.switch == "tor0.0")
        assert problem.extra_hops_rate(group, tor_op) == 0.0

    def test_agg_costs_tier2_detour(self, problem):
        """h=1: only intra-rack traffic detours, 2 hops each."""
        group = next(g for g in problem.groups if g.pod == 0)
        agg = next(
            op for op in problem.operators if op.tier == 1 and op.pod == 0
        )
        # T2 = 50 -> 2 * 1 * 50 = 100 extra hops/s.
        assert problem.extra_hops_rate(group, agg) == pytest.approx(100.0)

    def test_core_costs_tier2_and_tier1_detours(self, problem):
        """h=2: intra-rack costs 4 each, intra-pod costs 2 each (paper ex.)."""
        group = problem.groups[0]
        core = next(op for op in problem.operators if op.tier == 0)
        # 4 * T2 + 2 * T1 = 4*50 + 2*150 = 500 extra hops/s.
        assert problem.extra_hops_rate(group, core) == pytest.approx(500.0)

    def test_tier0_traffic_never_detours(self, topo):
        groups = make_traffic_groups(topo, ["host0.0.0"])
        operators = build_operator_specs(
            topo,
            accelerator_cores=1,
            accelerator_service_time=5e-6,
            max_utilization=0.5,
        )
        traffic = {groups[0].group_id: (1000.0, 0.0, 0.0)}
        problem = PlacementProblem(
            groups=groups,
            operators=operators,
            traffic=traffic,
            extra_hops_budget=0.0,
        )
        core = next(op for op in operators if op.tier == 0)
        assert problem.extra_hops_rate(groups[0], core) == 0.0

    def test_plan_extra_hops_sums(self, problem):
        # host0.0.0 and host0.0.1 share a rack, so 3 clients form 2 groups.
        assert len(problem.groups) == 2
        core_op = next(op for op in problem.operators if op.tier == 0)
        assignments = {g.group_id: core_op.operator_id for g in problem.groups}
        assert problem.plan_extra_hops(assignments) == pytest.approx(1000.0)


class TestAssignmentChecks:
    def test_group_load(self, problem):
        assert problem.group_load(problem.groups[0].group_id) == pytest.approx(
            1000.0
        )
        assert problem.total_load() == pytest.approx(1000.0 * len(problem.groups))

    def test_check_rejects_ineligible(self, problem):
        group2 = next(g for g in problem.groups if g.pod == 2)
        agg0 = next(
            op for op in problem.operators if op.tier == 1 and op.pod == 0
        )
        with pytest.raises(ConfigurationError):
            problem.check_assignment({group2.group_id: agg0.operator_id})

    def test_check_rejects_overload(self, topo):
        groups = make_traffic_groups(topo, ["host0.0.0"])
        operators = build_operator_specs(
            topo,
            accelerator_cores=1,
            accelerator_service_time=5e-6,
            max_utilization=0.5,
        )
        traffic = {groups[0].group_id: (10**9, 0.0, 0.0)}
        problem = PlacementProblem(
            groups=groups,
            operators=operators,
            traffic=traffic,
            extra_hops_budget=10**12,
        )
        core = next(op for op in operators if op.tier == 0)
        with pytest.raises(ConfigurationError):
            problem.check_assignment({groups[0].group_id: core.operator_id})

    def test_check_rejects_hop_budget_violation(self, problem):
        problem.extra_hops_budget = 100.0
        core = next(op for op in problem.operators if op.tier == 0)
        assignments = {g.group_id: core.operator_id for g in problem.groups}
        with pytest.raises(ConfigurationError):
            problem.check_assignment(assignments)

    def test_missing_traffic_rejected(self, problem):
        with pytest.raises(ConfigurationError):
            PlacementProblem(
                groups=problem.groups,
                operators=problem.operators,
                traffic={},
                extra_hops_budget=1.0,
            )


class TestEstimateTraffic:
    def test_tier_mix_follows_server_locations(self, topo):
        groups = make_traffic_groups(topo, ["host0.0.0"])
        # 1 same-rack, 1 same-pod, 2 cross-pod servers.
        servers = ["host0.0.1", "host0.1.0", "host2.0.0", "host3.0.0"]
        traffic = estimate_traffic(
            groups,
            topology=topo,
            server_hosts=servers,
            group_rates={groups[0].group_id: 1000.0},
        )
        t0, t1, t2 = traffic[groups[0].group_id]
        assert t0 == pytest.approx(500.0)
        assert t1 == pytest.approx(250.0)
        assert t2 == pytest.approx(250.0)

    def test_rates_sum_to_group_rate(self, topo):
        groups = make_traffic_groups(topo, ["host0.0.0", "host1.0.0"])
        servers = ["host2.0.0", "host2.0.1", "host3.1.1"]
        rates = {g.group_id: 500.0 for g in groups}
        traffic = estimate_traffic(
            groups, topology=topo, server_hosts=servers, group_rates=rates
        )
        for g in groups:
            assert sum(traffic[g.group_id]) == pytest.approx(500.0)

    def test_requires_servers(self, topo):
        groups = make_traffic_groups(topo, ["host0.0.0"])
        with pytest.raises(ConfigurationError):
            estimate_traffic(
                groups, topology=topo, server_hosts=[], group_rates={}
            )
