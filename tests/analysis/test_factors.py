"""Tests for the staleness and herd probes, including end-to-end use."""

import math

import numpy as np
import pytest

from repro.analysis import (
    InstrumentedSelector,
    QueueSampler,
    StalenessProbe,
    attach_probes,
    jain_fairness,
    server_load_shares,
)
from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import build_scenario
from repro.kvstore.fluctuation import StableService
from repro.kvstore.server import KVServer
from repro.network.packet import ServerStatus
from repro.selection.simple import LeastOutstandingSelector
from repro.sim import Environment


def _status():
    return ServerStatus(queue_size=1, service_rate=100.0, timestamp=0.0)


class TestStalenessProbe:
    def test_empty_probe_nan(self):
        probe = StalenessProbe()
        assert math.isnan(probe.mean_age())
        assert math.isnan(probe.max_age())

    def test_observe_filters_infinite(self):
        probe = StalenessProbe()
        probe.observe([math.inf, math.inf])
        assert probe.selections_without_any_feedback == 1
        probe.observe([1.0, math.inf, 3.0])
        assert probe.mean_age() == pytest.approx(2.0)
        assert probe.max_age() == 3.0

    def test_summary_keys(self):
        probe = StalenessProbe()
        probe.observe([0.5])
        summary = probe.summary()
        assert set(summary) == {"mean_age", "max_age", "samples", "cold_selections"}


class TestInstrumentedSelector:
    def test_ages_recorded_at_selection(self):
        env = Environment()
        probe = StalenessProbe()
        wrapped = InstrumentedSelector(
            LeastOutstandingSelector(), probe, clock=lambda: env.now
        )
        wrapped.note_response("a", 0.001, _status(), now=1.0)
        choice = wrapped.select(["a", "b"], now=3.0)
        assert choice in ("a", "b")
        # Only 'a' had feedback: a single age sample of 2 seconds.
        assert len(probe) == 1
        assert probe.mean_age() == pytest.approx(2.0)

    def test_delegation(self):
        probe = StalenessProbe()
        inner = LeastOutstandingSelector()
        wrapped = InstrumentedSelector(inner, probe, clock=lambda: 0.0)
        wrapped.note_sent("a", 0.0)
        wrapped.note_sent("a", 0.0)
        assert wrapped.select(["a", "b"], 0.0) == "b"

    def test_concurrency_weight_passthrough(self):
        from repro.selection.c3 import C3Selector

        inner = C3Selector(concurrency_weight=3, prior_service_rate=10.0)
        wrapped = InstrumentedSelector(
            inner, StalenessProbe(), clock=lambda: 0.0
        )
        assert wrapped.concurrency_weight == 3
        wrapped.concurrency_weight = 9
        assert inner.concurrency_weight == 9


class StubHost:
    def __init__(self, name):
        self.name = name
        self.endpoint = None

    def bind(self, endpoint):
        self.endpoint = endpoint

    def send(self, packet):
        pass


class TestQueueSampler:
    def _servers(self, env, n=3):
        return {
            f"s{i}": KVServer(
                env,
                StubHost(f"s{i}"),
                service_model=StableService(1e-3),
                parallelism=2,
                rng=np.random.default_rng(i),
            )
            for i in range(n)
        }

    def test_validation(self):
        env = Environment()
        with pytest.raises(ConfigurationError):
            QueueSampler(env, {}, period=1e-3)
        servers = self._servers(env)
        with pytest.raises(ConfigurationError):
            QueueSampler(env, servers, period=0.0)
        with pytest.raises(ConfigurationError):
            QueueSampler(env, servers, hot_multiplier=1.0)

    def test_samples_on_period(self):
        env = Environment()
        sampler = QueueSampler(env, self._servers(env), period=1e-3)
        sampler.start()
        env.run(until=10.5e-3)
        assert len(sampler) == 10

    def test_double_start_rejected(self):
        env = Environment()
        sampler = QueueSampler(env, self._servers(env), period=1e-3)
        sampler.start()
        with pytest.raises(ConfigurationError):
            sampler.start()

    def test_summary_of_idle_system(self):
        env = Environment()
        sampler = QueueSampler(env, self._servers(env), period=1e-3)
        sampler.start()
        env.run(until=5e-3)
        summary = sampler.summary()
        assert summary.mean_queue == 0.0
        assert summary.mean_cv == 0.0
        assert summary.oscillation_fraction == 0.0

    def test_imbalance_detected(self):
        env = Environment()
        servers = self._servers(env, n=5)
        from tests.kvstore.test_server import _request

        # Pile 12 requests onto one server only.
        for i in range(12):
            servers["s0"].handle_packet(_request(i))
        sampler = QueueSampler(env, servers, period=0.1e-3)
        sampler.start()
        env.run(until=1e-3)
        summary = sampler.summary()
        assert summary.max_queue >= 2
        assert summary.mean_cv > 0.5
        assert summary.oscillation_fraction > 0.0

    def test_empty_summary_is_nan(self):
        env = Environment()
        sampler = QueueSampler(env, self._servers(env))
        assert math.isnan(sampler.summary().mean_queue)


class TestLoadHelpers:
    def test_shares_sum_to_one(self):
        shares = server_load_shares({"a": 3, "b": 1})
        assert shares == {"a": 0.75, "b": 0.25}

    def test_jain_even(self):
        assert jain_fairness({"a": 5, "b": 5, "c": 5}) == pytest.approx(1.0)

    def test_jain_single_hot(self):
        assert jain_fairness({"a": 9, "b": 0, "c": 0}) == pytest.approx(1 / 3)

    def test_empty_inputs_nan(self):
        assert math.isnan(jain_fairness({}))
        assert math.isnan(jain_fairness({"a": 0}))
        assert all(math.isnan(v) for v in server_load_shares({"a": 0}).values())


class TestAttachProbes:
    def test_end_to_end_clirs(self):
        config = ExperimentConfig.tiny(scheme="clirs", seed=1)
        scenario = build_scenario(config)
        probes = attach_probes(scenario)
        result = run_experiment(config, scenario=scenario)
        assert len(probes.trace) == config.total_requests
        assert probes.staleness is not None and len(probes.staleness) > 0
        assert len(probes.queues) > 0
        # Trace latencies agree with the recorder on recorded requests.
        assert sorted(probes.trace.latencies()) == sorted(
            result.latency.samples
        )

    def test_end_to_end_netrs(self):
        config = ExperimentConfig.tiny(scheme="netrs-ilp", seed=1)
        scenario = build_scenario(config)
        probes = attach_probes(scenario)
        run_experiment(config, scenario=scenario)
        # Every traced request carries the RSNode that selected it.
        rsnodes = set(probes.trace.per_rsnode_counts())
        assert rsnodes <= set(scenario.plan.rsnode_ids)
        assert len(probes.staleness) > 0

    def test_netrs_fresher_than_clirs(self):
        """The paper's factor (i): in-network RSNodes see fresher feedback."""
        ages = {}
        for scheme in ("clirs", "netrs-ilp"):
            config = ExperimentConfig.tiny(scheme=scheme, seed=1)
            scenario = build_scenario(config)
            probes = attach_probes(scenario, trace=False, queues=False)
            run_experiment(config, scenario=scenario)
            ages[scheme] = probes.staleness.mean_age()
        assert ages["netrs-ilp"] < ages["clirs"]

    def test_attach_after_start_rejected(self):
        config = ExperimentConfig.tiny(scheme="clirs", seed=1)
        scenario = build_scenario(config)
        scenario.workload.start()
        scenario.env.run(until=0.01)
        with pytest.raises(ConfigurationError):
            attach_probes(scenario)

    def test_trace_capacity_respected(self):
        config = ExperimentConfig.tiny(scheme="clirs", seed=1)
        scenario = build_scenario(config)
        probes = attach_probes(scenario, trace_capacity=50)
        run_experiment(config, scenario=scenario)
        assert len(probes.trace) == 50
        assert probes.trace.dropped == config.total_requests - 50
