"""Tests for the request-trace collector."""

import csv
import io
import json

import pytest

from repro.analysis.trace import RequestRecord, TraceCollector
from repro.network.packet import Packet, ServerStatus


def _response(request_id=1, server="server0", client="client0", redundant=False):
    return Packet(
        src=server,
        dst=client,
        magic=0,
        request_id=request_id,
        server_status=ServerStatus(queue_size=0, service_rate=1.0, timestamp=0.0),
        client=client,
        server=server,
        rsnode_id=7,
        key=3,
        hops=5,
        is_redundant=redundant,
    )


def _record(collector, request_id=1, server="server0", latency=0.004, **kw):
    collector.record_completion(
        _response(request_id=request_id, server=server, **kw),
        issued_at=1.0,
        completed_at=1.0 + latency,
        recorded=True,
        rgid=9,
    )


class TestTraceCollector:
    def test_record_fields(self):
        collector = TraceCollector()
        _record(collector)
        record = collector.records[0]
        assert record.request_id == 1
        assert record.server == "server0"
        assert record.rsnode_id == 7
        assert record.latency == pytest.approx(0.004)
        assert record.rgid == 9
        assert record.hops == 5
        assert not record.was_redundant_winner

    def test_capacity_bounds_memory(self):
        collector = TraceCollector(capacity=3)
        for i in range(5):
            _record(collector, request_id=i)
        assert len(collector) == 3
        assert collector.dropped == 2
        assert [r.request_id for r in collector] == [2, 3, 4]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            TraceCollector(capacity=0)

    def test_per_server_counts(self):
        collector = TraceCollector()
        _record(collector, request_id=1, server="a")
        _record(collector, request_id=2, server="a")
        _record(collector, request_id=3, server="b")
        assert collector.per_server_counts() == {"a": 2, "b": 1}

    def test_per_rsnode_counts(self):
        collector = TraceCollector()
        _record(collector, request_id=1)
        assert collector.per_rsnode_counts() == {7: 1}

    def test_latencies_filter_warmup(self):
        collector = TraceCollector()
        collector.record_completion(
            _response(request_id=1),
            issued_at=0.0,
            completed_at=0.002,
            recorded=False,
            rgid=1,
        )
        _record(collector, request_id=2)
        assert len(collector.latencies()) == 1
        assert len(collector.latencies(recorded_only=False)) == 2

    def test_csv_round_trip(self):
        collector = TraceCollector()
        _record(collector, request_id=11, server="sX")
        rows = list(csv.DictReader(io.StringIO(collector.to_csv())))
        assert len(rows) == 1
        assert rows[0]["server"] == "sX"
        assert rows[0]["request_id"] == "11"

    def test_jsonl_parses(self):
        collector = TraceCollector()
        _record(collector, request_id=1)
        _record(collector, request_id=2)
        lines = collector.to_jsonl().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["request_id"] == 1

    def test_write_csv(self, tmp_path):
        collector = TraceCollector()
        _record(collector)
        path = tmp_path / "trace.csv"
        collector.write_csv(str(path))
        assert path.read_text().startswith("request_id,")

    def test_record_is_frozen(self):
        collector = TraceCollector()
        _record(collector)
        with pytest.raises(AttributeError):
            collector.records[0].latency = 1.0


class TestLatencyTimeline:
    def test_buckets_and_means(self):
        collector = TraceCollector()
        # Two completions in bucket 0, one in bucket 2.
        for request_id, (completed, latency) in enumerate(
            [(0.005, 0.002), (0.008, 0.004), (0.025, 0.010)]
        ):
            collector.record_completion(
                _response(request_id=request_id),
                issued_at=completed - latency,
                completed_at=completed,
                recorded=True,
                rgid=1,
            )
        timeline = collector.latency_timeline(0.01)
        assert timeline[0] == (0.0, pytest.approx(0.003), 2)
        assert timeline[1] == (pytest.approx(0.02), pytest.approx(0.010), 1)

    def test_recorded_only_filter(self):
        collector = TraceCollector()
        collector.record_completion(
            _response(request_id=1),
            issued_at=0.0,
            completed_at=0.001,
            recorded=False,
            rgid=1,
        )
        assert collector.latency_timeline(0.01, recorded_only=True) == []
        assert len(collector.latency_timeline(0.01)) == 1

    def test_bucket_validated(self):
        with pytest.raises(ValueError):
            TraceCollector().latency_timeline(0.0)
