"""Tests for latency decomposition and protocol-overhead accounting."""

import pytest

from repro.analysis import attach_probes
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import build_scenario
from repro.network.packet import (
    MAGIC_PLAIN,
    make_request,
)


def _measure(scheme, **overrides):
    config = ExperimentConfig.tiny(scheme=scheme, seed=3, **overrides)
    scenario = build_scenario(config)
    probes = attach_probes(scenario, staleness=False, queues=False)
    result = run_experiment(config, scenario=scenario, keep_scenario=True)
    return config, result, probes


class TestDecomposition:
    def test_components_sum_to_latency(self):
        _, _, probes = _measure("netrs-ilp")
        for record in probes.trace:
            total = (
                record.selection_path_time
                + record.server_queue_delay
                + record.server_service_time
                + record.network_and_other
            )
            assert total == pytest.approx(record.latency, rel=1e-9)

    def test_means_sum_to_total(self):
        _, _, probes = _measure("netrs-ilp")
        means = probes.trace.decomposition_means()
        parts = (
            means["selection"]
            + means["server_queue"]
            + means["server_service"]
            + means["network"]
        )
        assert parts == pytest.approx(means["total"], rel=1e-9)

    def test_clirs_has_no_selection_component(self):
        _, _, probes = _measure("clirs")
        assert probes.trace.decomposition_means()["selection"] == 0.0

    def test_netrs_selection_component_positive(self):
        config, _, probes = _measure("netrs-ilp")
        means = probes.trace.decomposition_means()
        # At least one client->ToR link plus the accelerator round trip.
        floor = (
            config.host_link_latency
            + 2 * config.accelerator_link_delay
            + config.accelerator_service_time
        )
        assert means["selection"] >= floor

    def test_service_component_tracks_config(self):
        _, _, fast = _measure("clirs", mean_service_time=1e-3)
        _, _, slow = _measure("clirs", mean_service_time=4e-3)
        assert (
            slow.trace.decomposition_means()["server_service"]
            > fast.trace.decomposition_means()["server_service"]
        )
        # Load-aware selection prefers servers in their fast mode, so the
        # served mean sits between the fast-mode mean (t/d) and the slow
        # one (t), below the unconditional average.
        served = slow.trace.decomposition_means()["server_service"]
        assert 4e-3 / 3 * 0.8 < served < 4e-3

    def test_network_component_positive(self):
        _, _, probes = _measure("netrs-tor")
        assert probes.trace.decomposition_means()["network"] > 0

    def test_empty_decomposition_nan(self):
        from math import isnan

        from repro.analysis.trace import TraceCollector

        means = TraceCollector().decomposition_means()
        assert all(isnan(v) for v in means.values())


class TestProtocolOverhead:
    def test_plain_packets_have_zero_overhead(self):
        packet = make_request(
            client="c",
            request_id=1,
            key=1,
            rgid=1,
            backup_replica="s",
            issued_at=0.0,
            netrs=False,
            dst="s",
        )
        assert packet.magic == MAGIC_PLAIN
        assert packet.netrs_header_bytes() == 0

    def test_netrs_request_overhead_small(self):
        packet = make_request(
            client="c",
            request_id=1,
            key=1,
            rgid=1,
            backup_replica="s",
            issued_at=0.0,
            netrs=True,
        )
        # RID(2) + MF(6) + RV(2) + RGID(3) = 13 bytes.
        assert packet.netrs_header_bytes() == 13

    def test_clirs_fabric_carries_no_netrs_bytes(self):
        _, result, _ = _measure("clirs")
        assert result.scenario.network.netrs_overhead_bytes == 0

    def test_netrs_overhead_fraction_is_small(self):
        """Design goal (ii), section IV-A: keep protocol overheads low."""
        _, result, _ = _measure("netrs-ilp")
        network = result.scenario.network
        assert network.netrs_overhead_bytes > 0
        fraction = network.netrs_overhead_bytes / network.bytes_transferred
        assert fraction < 0.05
