"""The flow tier's contract: deterministic, and bit-identical to the packet
engine on the supported schemes (the property the validation gate relies on).
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.mesoscale import FLOW_SCHEMES
from repro.mesoscale.runner import run_flow_experiment

#: Counters that must agree exactly between the two tiers.
IDENTITY_FIELDS = (
    "completed_requests",
    "transmissions",
    "bytes_transferred",
    "netrs_overhead_bytes",
    "redundant_requests",
    "selector_requests_handled",
    "timeouts",
    "retries",
    "requests_lost",
    "duplicates_suppressed",
    "packets_dropped",
    "server_dropped_requests",
    "faults_injected",
)

FAULT_SCHEDULE = (
    "server-down@0.02:server#0;server-up@0.06:server#0;"
    "link-down@0.03:client#1/tor(client#1);link-up@0.05:client#1/tor(client#1);"
    "link-degrade@0.01:client#2/tor(client#2)*3.0"
)


def _tiny(scheme, **overrides):
    return ExperimentConfig.tiny(scheme=scheme, seed=5).replace(**overrides)


def _assert_identical(packet, flow):
    assert flow.latency.samples == packet.latency.samples
    for name in IDENTITY_FIELDS:
        assert getattr(flow, name) == getattr(packet, name), name
    assert flow.accelerator_max_utilization == pytest.approx(
        packet.accelerator_max_utilization
    )
    assert flow.unavailability == pytest.approx(packet.unavailability)


def test_same_seed_is_bit_identical():
    config = _tiny("clirs", fidelity="flow")
    first = run_flow_experiment(config)
    second = run_flow_experiment(config)
    assert first.latency.samples == second.latency.samples
    assert first.summary() == second.summary()
    assert first.transmissions == second.transmissions
    assert first.micro_events == second.micro_events


@pytest.mark.parametrize("vector_batch", [0, 64])
@pytest.mark.parametrize("scheme", FLOW_SCHEMES)
def test_flow_matches_packet_bit_exactly(scheme, backend, vector_batch):
    """The packet tier runs each installed event-core backend; the flow
    tier has no compiled kernels, so this doubles as cross-backend
    byte-identity for the packet engine.  ``vector_batch > 0`` routes the
    flow side through the SoA fast path, which must change nothing."""
    config = _tiny(scheme, engine_backend=backend)
    packet = run_experiment(config)
    flow = run_flow_experiment(
        config.replace(fidelity="flow", vector_batch=vector_batch)
    )
    _assert_identical(packet, flow)


@pytest.mark.parametrize("vector_batch", [0, 7])
def test_flow_matches_packet_under_faults(vector_batch):
    config = _tiny(
        "clirs",
        fault_schedule=FAULT_SCHEDULE,
        request_timeout=20e-3,
        max_retries=4,
    )
    packet = run_experiment(config)
    flow = run_flow_experiment(
        config.replace(fidelity="flow", vector_batch=vector_batch)
    )
    _assert_identical(packet, flow)
    assert packet.timeouts > 0  # the schedule actually bites


def test_fidelity_dispatch_through_run_experiment():
    config = _tiny("clirs", fidelity="flow")
    via_dispatch = run_experiment(config)
    direct = run_flow_experiment(config)
    assert via_dispatch.latency.samples == direct.latency.samples
    assert via_dispatch.micro_events == direct.micro_events
    assert "FLOW" not in run_experiment(_tiny("clirs")).plan_description


def test_flow_uses_far_fewer_engine_events():
    config = _tiny("clirs")
    packet = run_experiment(config)
    flow = run_flow_experiment(config)
    assert flow.events_executed * 50 < packet.events_executed
    assert flow.micro_events > 0


def test_describe_reports_flow_tier():
    config = _tiny("clirs", fidelity="flow")
    result = run_experiment(config)
    text = result.describe()
    assert "fidelity=flow" in text
    assert "micro_events" in text
