"""The fidelity gate: passes when calibrated, fails when mis-calibrated."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.mesoscale import validate as validate_mod
from repro.mesoscale import VALIDATION_SCENARIOS
from repro.mesoscale.validate import (
    DEFAULT_TOLERANCES,
    METRICS,
    compare_tiers,
    ks_distance,
    validate_fidelity,
)


def _tiny_registry():
    return {"tiny": ExperimentConfig.tiny(scheme="clirs", seed=3)}


@pytest.fixture
def tiny_scenarios(monkeypatch):
    """Swap the committed registry for a cheap one (600 requests/tier)."""
    monkeypatch.setattr(validate_mod, "_scenario_configs", _tiny_registry)


def test_ks_distance_basics():
    assert ks_distance([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0
    assert ks_distance([1.0, 2.0], [10.0, 20.0]) == 1.0
    assert ks_distance([], [1.0]) == 1.0
    assert 0.0 < ks_distance([1.0, 2.0, 3.0, 4.0], [1.0, 2.0, 3.0, 9.0]) < 1.0


def test_committed_scenarios_are_registered():
    registry = validate_mod._scenario_configs()
    for name in VALIDATION_SCENARIOS:
        assert name in registry


def test_calibrated_tiers_pass_the_gate():
    report = compare_tiers("tiny", _tiny_registry()["tiny"])
    assert report.passed
    assert report.breaches == []
    for metric in METRICS:
        assert report.rel_err[metric] == 0.0
    assert report.ks == 0.0
    assert report.event_ratio() > 50


def test_miscalibrated_flow_breaches_the_gate():
    report = compare_tiers(
        "tiny", _tiny_registry()["tiny"], service_time_scale=1.5
    )
    assert not report.passed
    assert report.breaches
    assert any("relative error" in breach for breach in report.breaches)
    assert "BREACH" in report.format()


def test_unknown_scenario_is_an_error():
    with pytest.raises(ConfigurationError, match="unknown validation scenario"):
        validate_fidelity(["no-such-scenario"])


def test_cli_exit_zero_when_calibrated(tiny_scenarios, capsys):
    assert validate_mod.main(["--scenario", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "[PASS] tiny" in out
    assert "fidelity gate passed" in out


def test_cli_exit_one_on_threshold_breach(tiny_scenarios, capsys):
    code = validate_mod.main(["--scenario", "tiny", "--service-scale", "1.5"])
    assert code == 1
    captured = capsys.readouterr()
    assert "[FAIL] tiny" in captured.out
    assert "BREACH" in captured.out
    assert "FAILED" in captured.err


def test_cli_list(tiny_scenarios, capsys):
    assert validate_mod.main(["--list"]) == 0
    assert "tiny" in capsys.readouterr().out


@pytest.mark.slow
def test_committed_scenarios_pass():
    """The acceptance gate itself: both paper scenarios, default tolerances."""
    reports = validate_fidelity(VALIDATION_SCENARIOS, tolerances=DEFAULT_TOLERANCES)
    assert all(report.passed for report in reports)
    assert {r.scenario for r in reports} == set(VALIDATION_SCENARIOS)
