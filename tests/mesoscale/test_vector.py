"""The SoA fast path's contract: ``vector_batch`` is a pure performance
knob -- any batch size, any scheme, faults or not, the vectorized engine
must be byte-identical to the scalar flow tier (samples, every counter,
micro-event count), and the dispatch surfaces (config knob, env override)
must all land on the same engine.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.mesoscale.runner import run_flow_experiment

from tests.mesoscale.test_flow import FAULT_SCHEDULE, IDENTITY_FIELDS

#: Flow-tier-only counter, checked on top of the shared identity fields.
_FIELDS = IDENTITY_FIELDS + ("micro_events",)

#: Same-server-only schedule: keeps the vector engine on its dense fast
#: path (link faults force the guarded scalar-send fallback).
SERVER_FAULTS = "server-down@0.02:server#0;server-up@0.06:server#0"


def _flow(scheme, **overrides):
    config = ExperimentConfig.tiny(scheme=scheme, seed=5)
    return config.replace(fidelity="flow", **overrides)


def _assert_identical(scalar, vector, tag):
    assert tuple(vector.latency.samples) == tuple(scalar.latency.samples), tag
    for name in _FIELDS:
        assert getattr(vector, name) == getattr(scalar, name), (tag, name)
    assert abs(vector.unavailability - scalar.unavailability) < 1e-12, tag


@pytest.mark.parametrize("vector_batch", [3, 64, 10**6])
@pytest.mark.parametrize("scheme", ["clirs", "clirs-r95", "netrs-tor"])
def test_vector_is_bit_identical_to_scalar_flow(scheme, vector_batch):
    """Block size must never matter: smaller than the run (chunked reload),
    mid-size, and larger than the whole run all reduce to the scalar
    engine's exact event sequence."""
    config = _flow(scheme)
    scalar = run_flow_experiment(config)
    vector = run_flow_experiment(config.replace(vector_batch=vector_batch))
    _assert_identical(scalar, vector, (scheme, vector_batch))


@pytest.mark.parametrize("fault_schedule", [FAULT_SCHEDULE, SERVER_FAULTS])
@pytest.mark.parametrize("scheme", ["clirs", "clirs-r95", "netrs-tor"])
def test_vector_is_bit_identical_under_faults(scheme, fault_schedule):
    """Fault schedules exercise both vector modes: link faults force the
    guarded (scalar-send) path, server-only faults keep the dense fast
    path while still interleaving macro fault events with the block
    cursor."""
    config = _flow(
        scheme,
        fault_schedule=fault_schedule,
        request_timeout=0.04,
        max_retries=3,
    )
    scalar = run_flow_experiment(config)
    vector = run_flow_experiment(config.replace(vector_batch=7))
    _assert_identical(scalar, vector, (scheme, fault_schedule[:20]))


def test_vector_same_seed_is_deterministic():
    config = _flow("clirs-r95", vector_batch=64)
    first = run_flow_experiment(config)
    second = run_flow_experiment(config)
    assert tuple(first.latency.samples) == tuple(second.latency.samples)
    assert first.summary() == second.summary()
    assert first.micro_events == second.micro_events


def test_vector_dispatches_through_run_experiment():
    config = _flow("clirs", vector_batch=64)
    via_dispatch = run_experiment(config)
    direct = run_flow_experiment(config)
    assert tuple(via_dispatch.latency.samples) == tuple(direct.latency.samples)
    assert via_dispatch.micro_events == direct.micro_events


def test_vector_force_env_overrides_scalar_config(monkeypatch):
    """The CI matrix leg sets ``REPRO_VECTOR_FORCE`` to route every flow
    run through the SoA engine without touching configs (and hence without
    perturbing job digests); the results must be the scalar tier's."""
    config = _flow("clirs")
    scalar = run_flow_experiment(config)
    monkeypatch.setenv("REPRO_VECTOR_FORCE", "64")
    forced = run_flow_experiment(config)
    _assert_identical(scalar, forced, "env-force")


@pytest.mark.parametrize("scenario", ["fig4-clirs-r95", "faults-clirs"])
def test_vector_identity_on_committed_validation_scenarios(scenario):
    """The acceptance bar, spelled on the committed fidelity scenarios:
    the vectorized tier is bit-identical to the scalar serial tier, and
    the sharded run is invariant over the vector knob."""
    from repro.mesoscale.validate import _scenario_configs

    config = _scenario_configs()[scenario].replace(fidelity="flow")
    scalar = run_flow_experiment(config)
    vector = run_flow_experiment(config.replace(vector_batch=4096))
    _assert_identical(scalar, vector, scenario)
    sharded = run_flow_experiment(config.replace(shards=4))
    sharded_vector = run_flow_experiment(
        config.replace(shards=4, vector_batch=4096)
    )
    _assert_identical(sharded, sharded_vector, (scenario, "sharded"))


def test_vector_batch_requires_flow_fidelity():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        ExperimentConfig.tiny(scheme="clirs").replace(vector_batch=64)
