"""Feature gating: unsupported configs must fail at validation time."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.mesoscale import FLOW_SCHEMES, ensure_flow_supported


def _flow(scheme="clirs", **overrides):
    return ExperimentConfig.tiny(scheme=scheme).replace(
        fidelity="flow", **overrides
    )


def test_supported_schemes_pass():
    for scheme in FLOW_SCHEMES:
        ensure_flow_supported(_flow(scheme=scheme))


def test_unsupported_scheme_is_rejected_at_config_time():
    with pytest.raises(ConfigurationError, match="packet"):
        _flow(scheme="netrs-ilp")


def test_closed_loop_is_rejected():
    with pytest.raises(ConfigurationError, match="closed-loop"):
        _flow(workload_mode="closed")


def test_writes_are_rejected():
    with pytest.raises(ConfigurationError, match="read/write"):
        _flow(write_fraction=0.1)


def test_background_traffic_is_rejected():
    with pytest.raises(ConfigurationError, match="background"):
        _flow(background_traffic_rate=100.0)


def test_link_stats_are_rejected():
    with pytest.raises(ConfigurationError, match="per-link"):
        _flow(track_link_stats=True)


def test_replanning_is_rejected():
    with pytest.raises(ConfigurationError, match="replanning"):
        _flow(scheme="netrs-tor", replan_period=0.5)


def test_rsnode_faults_are_rejected():
    with pytest.raises(ConfigurationError, match="RSNode"):
        _flow(
            scheme="netrs-tor",
            fault_schedule="rsnode-down@0.01:0",
            request_timeout=20e-3,
        )


def test_fabric_link_faults_are_rejected():
    with pytest.raises(ConfigurationError, match="host-access"):
        _flow(
            fault_schedule="link-down@0.01:tor0.0/agg0.0",
            request_timeout=20e-3,
        )


def test_host_access_link_faults_are_accepted():
    config = _flow(
        fault_schedule=(
            "link-down@0.01:client#0/tor(client#0);"
            "link-up@0.05:client#0/tor(client#0)"
        ),
        request_timeout=20e-3,
    )
    ensure_flow_supported(config)


def test_server_faults_are_accepted():
    ensure_flow_supported(
        _flow(
            fault_schedule="server-down@0.01:server#0;server-up@0.05:server#0",
            request_timeout=20e-3,
        )
    )
