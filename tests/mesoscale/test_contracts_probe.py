"""Drift-injection probes for the vector tier's contract declarations.

The lint fixtures prove the checker catches drift in a synthetic mini-tree;
these probes prove the *shipped declarations* would catch drift in the real
files: each test copies the relevant sources into a scratch tree, injects a
one-line drift into the mirror side, and asserts the declaration (pulled
from the live registries by name, so a renamed or deleted declaration fails
here too) reports exactly one finding of the right rule.
"""

import pathlib
import shutil

import pytest

from repro.lint.contracts import ContractRegistry, check_contracts
from repro.mesoscale.contracts import CONTRACTS as MESO_CONTRACTS
from repro.sim.contracts import CONTRACTS as SIM_CONTRACTS

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

_VECTOR = "src/repro/mesoscale/vector.py"
_FLOW = "src/repro/mesoscale/flow.py"
_NUMBA = "src/repro/sim/_kernels_numba.py"
_CYTHON = "src/repro/sim/_kernels_cython.py"


def _mirror_pair(name):
    for pair in SIM_CONTRACTS.mirror_pairs + MESO_CONTRACTS.mirror_pairs:
        if pair.name == name:
            return pair
    raise AssertionError(f"declaration {name!r} is gone from the registries")


def _draw_pair(name):
    for pair in MESO_CONTRACTS.draw_sequences:
        if pair.name == name:
            return pair
    raise AssertionError(f"declaration {name!r} is gone from the registries")


def _scratch_tree(tmp_path, relpaths):
    for rel in relpaths:
        target = tmp_path / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(REPO_ROOT / rel, target)


def _inject(tmp_path, rel, old, new):
    target = tmp_path / rel
    source = target.read_text(encoding="utf-8")
    assert source.count(old) == 1, f"probe anchor {old!r} not unique in {rel}"
    target.write_text(source.replace(old, new), encoding="utf-8")


@pytest.mark.parametrize(
    "name,files,rel,old,new,rule",
    [
        (
            # Reordered float addition in the cython twin: same value in
            # exact arithmetic, different ulp chain -- exactly the drift
            # the kernel pairing exists to catch.
            "kernel.path_chain",
            (_NUMBA, _CYTHON),
            _CYTHON,
            "t += hops[j]",
            "t = hops[j] + t",
            "CON001",
        ),
        (
            # Counter drift in the vector server endpoint.
            "vector.server.arrival",
            (_FLOW, _VECTOR),
            _VECTOR,
            "self.arrivals += 1",
            "self.arrivals += 2",
            "CON001",
        ),
    ],
)
def test_injected_mirror_drift_is_caught(tmp_path, name, files, rel, old, new, rule):
    pair = _mirror_pair(name)
    registry = ContractRegistry(mirror_pairs=[pair])
    _scratch_tree(tmp_path, files)
    assert check_contracts(str(tmp_path), registry=registry) == []
    _inject(tmp_path, rel, old, new)
    findings = check_contracts(str(tmp_path), registry=registry)
    assert [f.rule for f in findings] == [rule], findings
    assert findings[0].path == rel


def test_injected_draw_swap_is_caught(tmp_path):
    """Substituting the inter-arrival exponential with a uniform draw
    changes the arrival stream's draw sequence; the CON002 declaration
    must flag the divergence."""
    pair = _draw_pair("vector arrival-stream draw order")
    registry = ContractRegistry(draw_sequences=[pair])
    _scratch_tree(tmp_path, (_FLOW, _VECTOR))
    assert check_contracts(str(tmp_path), registry=registry) == []
    _inject(
        tmp_path,
        _VECTOR,
        "t = t + rng.exponential(rate_inv)",
        "t = t + rng.random() * rate_inv",
    )
    findings = check_contracts(str(tmp_path), registry=registry)
    assert [f.rule for f in findings] == ["CON002"], findings
    assert findings[0].path == _VECTOR
