"""FatTreeGeometry must agree exactly with the materialized packet topology."""

import pytest

from repro.errors import ConfigurationError
from repro.mesoscale import FatTreeGeometry
from repro.network import build_fat_tree


def test_host_order_matches_packet_topology():
    geometry = FatTreeGeometry(4)
    topology = build_fat_tree(4)
    assert geometry.hosts == [node.name for node in topology.hosts]


def test_tor_names_match_packet_topology():
    geometry = FatTreeGeometry(4)
    topology = build_fat_tree(4)
    for host in geometry.hosts:
        tor = geometry.tor_name(host)
        assert host in {n.name for n in topology.hosts_under(tor)}


def test_total_hosts_is_k_cubed_over_four():
    assert FatTreeGeometry(4).total_hosts() == 16
    assert FatTreeGeometry(8).total_hosts() == 128
    assert FatTreeGeometry(74).total_hosts() == 101_306


def test_hop_counts_by_locality_class():
    geometry = FatTreeGeometry(4)
    assert geometry.hop_count("host0.0.0", "host0.0.1") == 2  # same rack
    assert geometry.hop_count("host0.0.0", "host0.1.0") == 4  # same pod
    assert geometry.hop_count("host0.0.0", "host3.1.1") == 6  # cross-pod
    assert geometry.hop_count("host2.1.0", "host2.1.0") == 2  # self: via ToR


def test_rack_and_pod_indices():
    geometry = FatTreeGeometry(4)
    assert geometry.rack_index("host0.0.0") == 0
    assert geometry.rack_index("host1.0.0") == 2
    assert geometry.pod_index("host3.1.1") == 3


def test_is_host():
    geometry = FatTreeGeometry(4)
    assert geometry.is_host("host0.1.1")
    assert not geometry.is_host("tor0.1")
    assert not geometry.is_host("host9.9.9")


@pytest.mark.parametrize("k", [0, 1, 3, 5])
def test_invalid_k_is_rejected(k):
    with pytest.raises(ConfigurationError):
        FatTreeGeometry(k)
