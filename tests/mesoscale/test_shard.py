"""The sharded flow tier's contract: ``shards=N`` runs N independent
scaled-down sub-experiments, so its guarantee is *not* equality with the
unsharded run (a different RNG universe) -- it is that the sharded result
is deterministic and invariant over everything that merely reorders the
work: vector on/off, worker count, resumption.  Fault schedules remap onto
shard-local populations and must aggregate exactly.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.mesoscale.runner import run_flow_experiment
from repro.mesoscale.shard import run_sharded_flow_experiment, shard_configs

from tests.mesoscale.test_flow import IDENTITY_FIELDS

_FIELDS = IDENTITY_FIELDS + ("micro_events",)


def _sharded(scheme, **overrides):
    config = ExperimentConfig.small(scheme=scheme, seed=3)
    fields = dict(
        fidelity="flow", n_clients=32, n_servers=64, total_requests=600
    )
    fields.update(overrides)
    return config.replace(**fields)


def _assert_identical(a, b, tag):
    assert tuple(a.latency.samples) == tuple(b.latency.samples), tag
    for name in _FIELDS:
        assert getattr(a, name) == getattr(b, name), (tag, name)
    assert abs(a.unavailability - b.unavailability) < 1e-12, tag


@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize("scheme", ["clirs", "clirs-r95", "netrs-tor"])
def test_sharded_run_is_deterministic_and_vector_invariant(scheme, shards):
    """Per shard count: repeat runs agree exactly, and routing every shard
    through the SoA fast path changes nothing (vector x shards identity)."""
    config = _sharded(scheme, shards=shards)
    base = run_flow_experiment(config)
    again = run_flow_experiment(config)
    _assert_identical(base, again, (scheme, shards, "repeat"))
    vector = run_flow_experiment(config.replace(vector_batch=512))
    _assert_identical(base, vector, (scheme, shards, "vector"))
    assert base.completed_requests == config.total_requests


def test_parallel_workers_match_serial():
    """The merge is job-key ordered, so the worker count (and hence shard
    completion order) cannot leak into the result."""
    config = _sharded("clirs-r95", total_requests=400, shards=4, vector_batch=512)
    serial = run_sharded_flow_experiment(config, workers=1)
    parallel = run_sharded_flow_experiment(config, workers=4)
    _assert_identical(serial, parallel, "workers")


def test_fault_schedule_remaps_and_aggregates():
    """Logical fault targets land on their owning shard's local population;
    injected-fault counts and downtime aggregate exactly (each fault event
    is owned by exactly one shard)."""
    config = _sharded(
        "clirs",
        n_clients=64,
        fault_schedule=(
            "server-down@0.02:server#0;server-up@0.06:server#0;"
            "link-degrade@0.01:client#33/tor(client#33)*3.0"
        ),
        request_timeout=0.04,
        max_retries=3,
    )
    sharded = run_flow_experiment(config.replace(shards=4))
    vector = run_flow_experiment(config.replace(shards=4, vector_batch=512))
    _assert_identical(sharded, vector, "faults")
    # The remapped schedule injects exactly what the sub-experiments see:
    # summing the per-shard serial runs must reproduce the merged counters.
    subs = [run_flow_experiment(sub) for sub in shard_configs(config.replace(shards=4))]
    assert sharded.faults_injected == sum(s.faults_injected for s in subs)
    assert sharded.unavailability == pytest.approx(
        sum(s.unavailability for s in subs)
    )
    assert sharded.completed_requests == sum(s.completed_requests for s in subs)


def test_shard_configs_are_independent_sub_experiments():
    config = _sharded("clirs", shards=4)
    subs = shard_configs(config)
    assert len(subs) == 4
    assert all(sub.shards == 1 for sub in subs)
    assert all(sub.n_servers == config.n_servers // 4 for sub in subs)
    assert sum(sub.total_requests for sub in subs) == config.total_requests
    assert len({sub.seed for sub in subs}) == 4  # disjoint RNG universes


def test_netrs_merge_reports_sharded_plan():
    config = _sharded("netrs-tor", shards=4)
    result = run_flow_experiment(config)
    assert "FLOW-SHARDED" in result.plan_description
    assert "shards=4" in result.plan_description


def test_rejects_non_dividing_and_oversplit_configs():
    with pytest.raises(ConfigurationError):
        _sharded("clirs", shards=5)  # 64 % 5 != 0
    with pytest.raises(ConfigurationError):
        _sharded("clirs", total_requests=32, shards=64)  # < 1 request/shard


def test_rejects_raw_host_fault_targets():
    """Raw host names bind to the unsharded topology; sharded runs must
    refuse them up front rather than remap them wrongly."""
    with pytest.raises(ConfigurationError, match="logical"):
        _sharded(
            "clirs",
            shards=4,
            fault_schedule="server-down@0.02:host_0_0_1;server-up@0.06:host_0_0_1",
            request_timeout=0.04,
        )
