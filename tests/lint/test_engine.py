"""Engine behaviour: noqa suppression, baseline workflow, JSON schema."""

import json

from repro.lint import Baseline, Finding, lint_paths, lint_source
from repro.lint.baseline import BASELINE_VERSION
from repro.lint.engine import iter_python_files, parse_suppressions
from repro.lint.findings import JSON_REPORT_VERSION

BAD_LINE = "started = time.perf_counter()\n"


# ---------------------------------------------------------------------------
# noqa suppressions
# ---------------------------------------------------------------------------


def test_noqa_with_matching_rule_suppresses():
    source = BAD_LINE.rstrip() + "  # repro: noqa(DET002)\n"
    assert lint_source(source, path="m.py") == []


def test_noqa_bare_suppresses_every_rule():
    source = "import random  # repro: noqa\n"
    assert lint_source(source, path="m.py") == []


def test_noqa_with_other_rule_does_not_suppress():
    source = BAD_LINE.rstrip() + "  # repro: noqa(DET001)\n"
    findings = lint_source(source, path="m.py")
    assert [f.rule for f in findings] == ["DET002"]


def test_noqa_only_covers_its_own_line():
    source = "import random  # repro: noqa(DET001)\nimport random\n"
    findings = lint_source(source, path="m.py")
    assert [(f.rule, f.line) for f in findings] == [("DET001", 2)]


def test_noqa_accepts_multiple_rules_case_insensitively():
    source = "import random  # repro: NOQA(det001, DET002)\n"
    assert lint_source(source, path="m.py") == []


def test_parse_suppressions_maps_lines():
    got = parse_suppressions(
        "a = 1\nb = 2  # repro: noqa(DET001,SIM002)\nc = 3  # repro: noqa\n"
    )
    assert got == {2: {"DET001", "SIM002"}, 3: None}


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------


def _finding(rule="DET002", path="m.py", line=1, message="wall-clock read"):
    return Finding(path=path, line=line, col=1, rule=rule, message=message)


def test_baseline_absorbs_known_findings_but_not_new_instances():
    known = _finding(line=10)
    baseline = Baseline.from_findings([known])
    # Same fingerprint at a different line: absorbed (line-independent).
    shifted = _finding(line=99)
    new_rule = _finding(rule="DET001", message="import of random")
    kept, absorbed = baseline.apply([shifted, new_rule])
    assert absorbed == 1
    assert kept == [new_rule]


def test_baseline_counts_bound_how_many_matches_are_absorbed():
    baseline = Baseline.from_findings([_finding(), _finding()])
    findings = [_finding(line=n) for n in (1, 2, 3)]
    kept, absorbed = baseline.apply(findings)
    assert absorbed == 2
    assert len(kept) == 1


def test_baseline_roundtrip(tmp_path):
    baseline = Baseline.from_findings([_finding(), _finding(rule="SIM001")])
    target = tmp_path / "lint-baseline.json"
    baseline.save(str(target))
    payload = json.loads(target.read_text())
    assert payload["version"] == BASELINE_VERSION
    assert {e["rule"] for e in payload["entries"]} == {"DET002", "SIM001"}
    loaded = Baseline.load(str(target))
    assert loaded.entries == baseline.entries
    assert len(loaded) == 2


def test_lint_paths_applies_baseline(tmp_path):
    module = tmp_path / "m.py"
    module.write_text("import time\nt = time.perf_counter()\n")
    full = lint_paths([str(tmp_path)], display_relative_to=str(tmp_path))
    assert [f.rule for f in full.findings] == ["DET002"]
    baseline = Baseline.from_findings(full.findings)
    gated = lint_paths(
        [str(tmp_path)],
        baseline=baseline,
        display_relative_to=str(tmp_path),
    )
    assert gated.clean
    assert gated.baselined == 1


# ---------------------------------------------------------------------------
# file walking and report shape
# ---------------------------------------------------------------------------


def test_iter_python_files_is_sorted_and_deduplicated(tmp_path):
    (tmp_path / "b.py").write_text("x = 1\n")
    (tmp_path / "a.py").write_text("x = 1\n")
    sub = tmp_path / "pkg"
    sub.mkdir()
    (sub / "c.py").write_text("x = 1\n")
    (sub / "notes.txt").write_text("not python\n")
    files = iter_python_files([str(tmp_path), str(tmp_path / "a.py")])
    names = [f.rsplit("/", 1)[-1] for f in files]
    assert names == ["a.py", "b.py", "c.py"]


def test_syntax_errors_are_reported_not_raised(tmp_path):
    (tmp_path / "broken.py").write_text("def f(:\n")
    report = lint_paths([str(tmp_path)], display_relative_to=str(tmp_path))
    assert not report.clean
    assert [f.rule for f in report.parse_errors] == ["PARSE"]


def test_json_report_schema(tmp_path):
    (tmp_path / "m.py").write_text("import random\n")
    report = lint_paths([str(tmp_path)], display_relative_to=str(tmp_path))
    payload = report.to_json()
    assert payload["version"] == JSON_REPORT_VERSION
    assert payload["files_analyzed"] == 1
    assert set(payload) == {
        "version", "files_analyzed", "suppressed", "baselined",
        "findings", "parse_errors", "stats",
    }
    (finding,) = payload["findings"]
    assert set(finding) == {"rule", "path", "line", "col", "message"}
    assert finding["rule"] == "DET001"
    assert finding["path"] == "m.py"  # relative, machine-independent
    # Stats are zero-filled over every registered rule.
    per_rule = payload["stats"]["per_rule"]
    assert per_rule["DET001"] == 1
    assert per_rule["DET005"] == 0
    # The report must be JSON-serialisable as-is.
    json.dumps(payload)


def test_reports_are_deterministic(tmp_path):
    (tmp_path / "a.py").write_text("import random\nimport time\n")
    (tmp_path / "b.py").write_text("t = time.time()\n")
    first = lint_paths([str(tmp_path)], display_relative_to=str(tmp_path))
    second = lint_paths([str(tmp_path)], display_relative_to=str(tmp_path))
    assert json.dumps(first.to_json()) == json.dumps(second.to_json())
