"""CLI surface: ``netrs lint`` dispatch, exit codes, --stats, JSON output,
baseline flags, and the acceptance criterion that the shipped tree is clean."""

import json
import os
import pathlib

import pytest

from repro.cli import main as netrs_main
from repro.lint.cli import main as lint_main
from repro.lint.rules import RULES

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"


@pytest.fixture
def bad_tree(tmp_path, monkeypatch):
    """A tiny tree with one DET001 finding; cwd moved there so the CLI's
    default baseline discovery is exercised hermetically."""
    (tmp_path / "m.py").write_text("import random\n")
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_shipped_tree_lints_clean():
    """`netrs lint src/repro` must exit 0 on the final tree (ISSUE 3)."""
    assert SRC_REPRO.is_dir()
    exit_code = lint_main([str(SRC_REPRO), "--no-baseline"])
    assert exit_code == 0


def test_findings_mean_exit_one(bad_tree, capsys):
    assert lint_main(["m.py"]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "m.py:1:1" in out


def test_netrs_lint_subcommand_dispatches(bad_tree, capsys):
    assert netrs_main(["lint", "m.py"]) == 1
    assert "DET001" in capsys.readouterr().out


def test_stats_mode_prints_per_rule_counts_and_totals(bad_tree, capsys):
    exit_code = lint_main(["m.py", "--stats"])
    assert exit_code == 1
    out = capsys.readouterr().out
    assert "per-rule finding counts:" in out
    for rule_id in RULES:
        assert rule_id in out
    assert "files analyzed:    1" in out
    assert "findings:          1" in out


def test_json_output_and_output_file(bad_tree):
    exit_code = lint_main(["m.py", "--format", "json", "--output", "report.json"])
    assert exit_code == 1
    payload = json.loads((bad_tree / "report.json").read_text())
    assert payload["stats"]["per_rule"]["DET001"] == 1
    assert [f["rule"] for f in payload["findings"]] == ["DET001"]


def test_write_baseline_then_lint_is_clean(bad_tree, capsys):
    assert lint_main(["m.py", "--write-baseline"]) == 0
    assert os.path.exists("lint-baseline.json")
    # Default baseline discovery picks the file up from the cwd.
    assert lint_main(["m.py"]) == 0
    assert "1 baselined" in capsys.readouterr().out
    # --no-baseline sees through the grandfathering.
    assert lint_main(["m.py", "--no-baseline"]) == 1


def test_new_findings_fail_even_with_baseline(bad_tree):
    assert lint_main(["m.py", "--write-baseline"]) == 0
    (bad_tree / "m.py").write_text("import random\nimport random\n")
    assert lint_main(["m.py"]) == 1


def test_list_rules_and_explain(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULES:
        assert rule_id in out
    for rule_id in ("CON001", "CON002", "CON003"):
        assert rule_id in out
    assert lint_main(["--explain", "det001"]) == 0
    assert "DET001" in capsys.readouterr().out
    assert lint_main(["--explain", "con003"]) == 0
    assert "CON003" in capsys.readouterr().out
    assert lint_main(["--explain", "NOPE999"]) == 2


def test_github_format_emits_error_annotations(bad_tree, capsys):
    assert lint_main(["m.py", "--format", "github"]) == 1
    out = capsys.readouterr().out
    assert out.startswith("::error file=m.py,line=1,col=1,title=DET001::DET001 ")
    assert "\n" == out[-1]


def test_github_format_is_silent_when_clean(bad_tree, capsys):
    (bad_tree / "m.py").write_text("VALUE = 1\n")
    assert lint_main(["m.py", "--format", "github"]) == 0
    assert capsys.readouterr().out == ""


def test_contracts_only_cli_is_clean_on_the_repo(monkeypatch, capsys):
    """`netrs contracts` over the shipped tree: exit 0 (ISSUE 8 acceptance)."""
    monkeypatch.chdir(REPO_ROOT)
    assert lint_main(["--contracts-only"]) == 0
    assert "contracts checked" in capsys.readouterr().out
    assert netrs_main(["contracts"]) == 0


def test_lint_contracts_flag_merges_both_passes(bad_tree, capsys):
    """--contracts keeps the per-file rules and adds the contract pass; the
    fixture tree has no declared contract sites, so every site is missing."""
    assert lint_main(["m.py", "--contracts"]) == 1
    out = capsys.readouterr().out
    assert "DET001" in out and "CON00" in out


def test_missing_path_is_a_usage_error(bad_tree):
    assert lint_main(["does-not-exist/"]) == 2


def test_committed_baseline_is_empty():
    """The repo's grandfathered-findings file must stay empty: new debt is
    fixed, not baselined (ISSUE 3 acceptance)."""
    baseline = REPO_ROOT / "lint-baseline.json"
    assert baseline.is_file()
    assert json.loads(baseline.read_text())["entries"] == []
