"""Every shipped rule fires on its violating fixture and stays silent on a
clean one (ISSUE 3 acceptance criterion)."""

import pathlib

import pytest

from repro.lint import RULES, lint_source
from repro.lint.rules import explain

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

#: rule id -> (fixture stem, expected finding count in the bad fixture).
EXPECTED = {
    "DET001": ("det001", 4),
    "DET002": ("det002", 3),
    "DET003": ("det003", 2),
    "DET004": ("det004", 2),
    "DET005": ("det005", 3),
    "SIM001": ("sim001", 2),
    "SIM002": ("sim002", 1),
    "API001": ("api001", 2),
    "PERF001": ("perf001", 3),
}

#: Fixture stems whose rule only applies on certain module paths; the
#: fixture is linted under a synthetic path satisfying the gate.
SYNTHETIC_PATHS = {
    "perf001": "src/repro/kvstore",
}


def _lint_fixture(name):
    path = FIXTURES / name
    stem = name.split("_", 1)[0]
    display = SYNTHETIC_PATHS.get(stem)
    display_path = f"{display}/{name}" if display else str(path)
    return lint_source(path.read_text(encoding="utf-8"), path=display_path)


def test_every_registered_rule_has_a_fixture_pair():
    assert set(EXPECTED) == set(RULES)
    for stem, _count in EXPECTED.values():
        assert (FIXTURES / f"{stem}_bad.py").is_file()
        assert (FIXTURES / f"{stem}_clean.py").is_file()


@pytest.mark.parametrize("rule_id", sorted(EXPECTED))
def test_rule_fires_on_violating_fixture(rule_id):
    stem, count = EXPECTED[rule_id]
    findings = _lint_fixture(f"{stem}_bad.py")
    assert findings, f"{rule_id} produced no findings on {stem}_bad.py"
    assert {f.rule for f in findings} == {rule_id}
    assert len(findings) == count
    # Locations must be concrete (1-based) so reports are actionable.
    assert all(f.line >= 1 and f.col >= 1 for f in findings)


@pytest.mark.parametrize("rule_id", sorted(EXPECTED))
def test_rule_silent_on_clean_fixture(rule_id):
    stem, _count = EXPECTED[rule_id]
    findings = _lint_fixture(f"{stem}_clean.py")
    assert [f for f in findings if f.rule == rule_id] == []


@pytest.mark.parametrize("rule_id", sorted(EXPECTED))
def test_clean_fixtures_are_fully_clean(rule_id):
    """Clean fixtures double as cross-rule regression material: no rule at
    all may fire on them (noqa-suppressed lines are allowed)."""
    stem, _count = EXPECTED[rule_id]
    assert _lint_fixture(f"{stem}_clean.py") == []


@pytest.mark.parametrize("rule_id", sorted(EXPECTED))
def test_rule_is_documented(rule_id):
    rule = RULES[rule_id]
    assert rule.title
    assert len(rule.rationale) > 40
    text = explain(rule_id)
    assert rule_id in text and "Bad:" in text and "Fix:" in text


def test_det001_exempts_the_rng_registry_itself():
    source = "import numpy as np\nseq = np.random.SeedSequence(entropy=(1, 2))\n"
    findings = lint_source(source, path="src/repro/sim/rng.py")
    assert findings == []


def test_det001_allows_generator_construction_from_seed_material():
    source = (
        "import numpy as np\n"
        "g = np.random.Generator(np.random.PCG64(np.random.SeedSequence(1)))\n"
    )
    assert lint_source(source, path="module.py") == []


def test_det002_exempts_bench_and_progress():
    source = "import time\nt = time.perf_counter()\n"
    assert lint_source(source, path="src/repro/sim/bench.py") == []
    assert lint_source(source, path="src/repro/exec/progress.py") == []
    assert len(lint_source(source, path="src/repro/network/host.py")) == 1


def test_perf001_only_applies_to_hot_modules():
    source = (FIXTURES / "perf001_bad.py").read_text(encoding="utf-8")
    assert lint_source(source, path="src/repro/experiments/setup.py") == []
    assert lint_source(source, path="src/repro/analysis/loads.py") == []
    hot = lint_source(source, path="src/repro/network/server.py")
    assert {f.rule for f in hot} == {"PERF001"}


def test_det_rules_cover_the_faults_subsystem():
    """repro.faults sits inside the deterministic core, so the determinism
    rules must gate it like any other src/repro module."""
    for stem, rule_id in (("det001", "DET001"), ("det003", "DET003")):
        source = (FIXTURES / f"{stem}_bad.py").read_text(encoding="utf-8")
        findings = lint_source(source, path="src/repro/faults/injector.py")
        assert {f.rule for f in findings} == {rule_id}, stem


def test_perf001_covers_the_mesoscale_tier():
    """The flow tier draws inside the per-request loop, so PERF001 gates
    repro.mesoscale exactly like kvstore/network (ISSUE 8 satellite)."""
    source = (FIXTURES / "perf001_bad.py").read_text(encoding="utf-8")
    findings = lint_source(source, path="src/repro/mesoscale/flow.py")
    assert {f.rule for f in findings} == {"PERF001"}


def test_perf001_matches_role_named_generators():
    """`self._arrival_rng` and friends are Generators by convention; the
    `_rng` suffix must match so hot-path draws cannot hide behind a role
    prefix."""
    source = (
        "class E:\n"
        "    def f(self):\n"
        "        return self._arrival_rng.exponential(1.0)\n"
    )
    findings = lint_source(source, path="src/repro/mesoscale/flow.py")
    assert [f.rule for f in findings] == ["PERF001"]
    assert lint_source(source, path="src/repro/analysis/loads.py") == []


def test_det_rules_cover_the_mesoscale_tier():
    """Determinism rules gate the flow tier like any other core module."""
    for stem, rule_id in (("det001", "DET001"), ("det003", "DET003")):
        source = (FIXTURES / f"{stem}_bad.py").read_text(encoding="utf-8")
        findings = lint_source(source, path="src/repro/mesoscale/scenarios.py")
        assert rule_id in {f.rule for f in findings}, stem


def test_perf001_ignores_draws_attribute_and_vector_draws():
    source = (
        "class S:\n"
        "    def f(self):\n"
        "        a = self._draws.exponential(1.0)\n"
        "        b = self.rng.exponential(1.0, size=64)\n"
        "        return a, b\n"
    )
    assert lint_source(source, path="src/repro/kvstore/server.py") == []
