"""Runtime guard: global RNG entry points raise, seeded streams keep working,
and the byte-identity guarantees survive with the guard active."""

import random

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.lint import NondeterminismError, deterministic_guard
from repro.sim.rng import RngRegistry, stream_from_seed


def test_guard_blocks_stdlib_random():
    with deterministic_guard():
        with pytest.raises(NondeterminismError, match="random.random"):
            random.random()
        with pytest.raises(NondeterminismError, match="random.shuffle"):
            random.shuffle([1, 2, 3])


def test_guard_blocks_numpy_module_level_entry_points():
    with deterministic_guard():
        with pytest.raises(NondeterminismError, match="np.random.default_rng"):
            np.random.default_rng()
        with pytest.raises(NondeterminismError, match="np.random.seed"):
            np.random.seed(0)


def test_guard_restores_originals_on_exit():
    before = (random.random, np.random.default_rng)
    with deterministic_guard():
        pass
    assert (random.random, np.random.default_rng) == before
    random.random()  # must not raise
    np.random.default_rng()


def test_guard_restores_even_after_exceptions():
    with pytest.raises(ValueError):
        with deterministic_guard():
            raise ValueError("boom")
    random.random()


def test_guard_nests():
    with deterministic_guard():
        with deterministic_guard():
            with pytest.raises(NondeterminismError):
                random.random()
        with pytest.raises(NondeterminismError):
            random.random()
    random.random()


def test_guard_allowlist_leaves_named_entry_points_alone():
    with deterministic_guard(allow=["random.random"]):
        random.random()
        with pytest.raises(NondeterminismError):
            random.randint(0, 1)


def test_seeded_streams_work_under_guard():
    with deterministic_guard():
        registry = RngRegistry(7)
        first = registry.stream("fixture").random()
        again = stream_from_seed(7, "fixture").random()
    assert first == again


def test_experiment_runs_and_reproduces_under_guard(deterministic_sim):
    """A full (tiny) experiment touches every subsystem -- client, workload,
    fluctuating servers, selection, network -- so running it under the guard
    proves none of them reaches for global randomness."""
    config = ExperimentConfig.tiny(seed=5)
    first = run_experiment(config)
    second = run_experiment(config)
    assert first.summary() == second.summary()
    assert first.events_executed == second.events_executed
