"""Contract sanitizer (CON001..CON003): fixture-driven drift detection plus
the acceptance criterion that the shipped tree honors its own contracts.

Each test builds a :class:`ContractRegistry` over the mini-tree in
``fixtures/contracts/`` so a deliberately drifted mirror copy, a reordered
RNG draw and an undigested config field each produce exactly one finding
with the right rule id, file and line (ISSUE 8 acceptance)."""

import pathlib

from repro.lint import contracts as con
from repro.lint.contracts import (
    CONTRACT_RULES,
    AnchorSite,
    ContractRegistry,
    DigestContract,
    DrawSequencePair,
    ExprAnchor,
    MirrorPair,
    Site,
    StreamFamilyContract,
    check_contracts,
    contract_rule_ids,
    default_registry,
)
from repro.lint.engine import lint_paths
from repro.lint.rules import explain

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
FIXTURES = pathlib.Path(__file__).parent / "fixtures" / "contracts"

_REF_COMPLETE = Site("reference.py", "Server.complete")
_REF_ARRIVAL = Site("reference.py", "Server.arrival")


def _complete_pair(mirror_path):
    return MirrorPair(
        name="fixture.complete",
        reference=_REF_COMPLETE,
        mirror=Site(mirror_path, "FlowServer.complete"),
    )


def _arrival_draws(mirror_path):
    return DrawSequencePair(
        name="fixture.arrival",
        reference=_REF_ARRIVAL,
        mirror=Site(mirror_path, "FlowServer.arrival"),
        reference_rng="rng",
        mirror_rng="arrival_rng",
        reference_only_draws=("<rng>.random",),
    )


# ---------------------------------------------------------------------------
# CON001: mirror-pair equivalence
# ---------------------------------------------------------------------------


def test_clean_mirror_with_declared_rewrites_passes():
    registry = ContractRegistry(
        mirror_pairs=[
            _complete_pair("mirror_clean.py"),
            MirrorPair(
                name="fixture.tick",
                reference=Site("reference.py", "Server.tick"),
                mirror=Site("mirror_clean.py", "FlowServer.tick"),
                renames=(("self.env", "engine"),),
            ),
            MirrorPair(
                name="fixture.respond",
                reference=Site("reference.py", "Server.respond"),
                mirror=Site("mirror_clean.py", "FlowServer.respond"),
                drop_reference=("packet = self.make_packet(entry)",),
                equivalences=(
                    ("self.host.send(packet)", "self.finish(entry)"),
                ),
            ),
        ]
    )
    assert check_contracts(str(FIXTURES), registry=registry) == []


def test_drifted_mirror_yields_exactly_one_con001():
    registry = ContractRegistry(mirror_pairs=[_complete_pair("mirror_drifted.py")])
    findings = check_contracts(str(FIXTURES), registry=registry)
    assert len(findings) == 1
    (finding,) = findings
    assert finding.rule == "CON001"
    assert finding.path == "mirror_drifted.py"
    assert finding.line == 7  # the `self.completions += 2` statement
    assert "self.completions += 1" in finding.message
    assert "self.completions += 2" in finding.message
    assert "reference.py:Server.complete" in finding.message


def test_missing_mirror_site_is_reported():
    registry = ContractRegistry(
        mirror_pairs=[
            MirrorPair(
                name="fixture.ghost",
                reference=_REF_COMPLETE,
                mirror=Site("mirror_clean.py", "FlowServer.ghost"),
            )
        ]
    )
    findings = check_contracts(str(FIXTURES), registry=registry)
    assert [f.rule for f in findings] == ["CON001"]
    assert findings[0].path == "mirror_clean.py"
    assert "FlowServer.ghost" in findings[0].message


def _score_anchor(mirror_path):
    return ExprAnchor(
        name="fixture.score",
        expr="resp - expected + q_hat ** exponent * expected",
        sites=(
            AnchorSite(Site("reference.py", "score")),
            AnchorSite(Site(mirror_path, "score")),
        ),
    )


def test_expr_anchor_accepts_both_statement_shapes():
    registry = ContractRegistry(expr_anchors=[_score_anchor("mirror_clean.py")])
    assert check_contracts(str(FIXTURES), registry=registry) == []


def test_expr_anchor_catches_drifted_formula():
    registry = ContractRegistry(expr_anchors=[_score_anchor("mirror_drifted.py")])
    findings = check_contracts(str(FIXTURES), registry=registry)
    assert len(findings) == 1
    (finding,) = findings
    assert finding.rule == "CON001"
    assert finding.path == "mirror_drifted.py"
    assert "fixture.score" in finding.message


# ---------------------------------------------------------------------------
# CON002: stream families and draw order
# ---------------------------------------------------------------------------


def _families(mirror_path, **kwargs):
    return StreamFamilyContract(
        name="fixture.families",
        reference_paths=("families_ref.py",),
        mirror_paths=(mirror_path,),
        **kwargs,
    )


def test_exempted_family_sets_match():
    registry = ContractRegistry(
        stream_families=[
            _families("families_clean.py", reference_only=("background",))
        ]
    )
    assert check_contracts(str(FIXTURES), registry=registry) == []


def test_undeclared_reference_only_family_is_drift():
    registry = ContractRegistry(stream_families=[_families("families_clean.py")])
    findings = check_contracts(str(FIXTURES), registry=registry)
    assert [f.rule for f in findings] == ["CON002"]
    assert "'background'" in findings[0].message
    assert findings[0].path == "families_ref.py"


def test_renamed_family_reports_both_sides():
    registry = ContractRegistry(
        stream_families=[
            _families("families_renamed.py", reference_only=("background",))
        ]
    )
    findings = check_contracts(str(FIXTURES), registry=registry)
    assert [f.rule for f in findings] == ["CON002", "CON002"]
    messages = " ".join(f.message for f in findings)
    assert "'service.*'" in messages and "'svc.*'" in messages


def test_matching_draw_sequence_passes():
    registry = ContractRegistry(draw_sequences=[_arrival_draws("mirror_clean.py")])
    assert check_contracts(str(FIXTURES), registry=registry) == []


def test_reordered_draw_yields_exactly_one_con002():
    registry = ContractRegistry(
        draw_sequences=[_arrival_draws("mirror_reordered.py")]
    )
    findings = check_contracts(str(FIXTURES), registry=registry)
    assert len(findings) == 1
    (finding,) = findings
    assert finding.rule == "CON002"
    assert finding.path == "mirror_reordered.py"
    assert finding.line == 6  # the too-early `sample(...)` call
    assert "<rng>.exponential" in finding.message
    assert "sample(<rng>)" in finding.message


# ---------------------------------------------------------------------------
# CON003: config-digest completeness
# ---------------------------------------------------------------------------


def _digest(founding, via_sweep=()):
    return DigestContract(
        name="fixture.digest",
        config_path="config.py",
        config_class="Config",
        digest_path="job.py",
        defaults_name="_DIGEST_DEFAULTS",
        founding_fields=founding,
        cli_path="cli.py",
        cli_via_sweep=via_sweep,
    )


def test_routed_and_elided_fields_pass():
    registry = ContractRegistry(
        digests=[_digest(("founding_knob", "new_knob"), via_sweep=("sweep_knob",))]
    )
    assert check_contracts(str(FIXTURES), registry=registry) == []


def test_undigested_field_yields_exactly_one_con003():
    registry = ContractRegistry(
        digests=[
            _digest(("founding_knob", "sweep_knob"), via_sweep=("new_knob",))
        ]
    )
    findings = check_contracts(str(FIXTURES), registry=registry)
    assert len(findings) == 1
    (finding,) = findings
    assert finding.rule == "CON003"
    assert finding.path == "config.py"
    assert finding.line == 11  # the `new_knob` field declaration
    assert "'new_knob'" in finding.message
    assert "_DIGEST_DEFAULTS" in finding.message


def test_missing_cli_route_yields_exactly_one_con003():
    registry = ContractRegistry(digests=[_digest(("founding_knob", "new_knob"))])
    findings = check_contracts(str(FIXTURES), registry=registry)
    assert len(findings) == 1
    (finding,) = findings
    assert finding.rule == "CON003"
    assert finding.path == "config.py"
    assert finding.line == 12  # the `sweep_knob` field declaration
    assert "--sweep-knob" in finding.message


def test_stale_and_mismatched_elisions_are_reported(tmp_path):
    (tmp_path / "config.py").write_text(
        "from dataclasses import dataclass\n\n\n"
        "@dataclass\nclass Config:\n    knob: int = 1\n",
        encoding="utf-8",
    )
    (tmp_path / "job.py").write_text(
        '_DIGEST_DEFAULTS = {"knob": 2, "gone": 0}\n', encoding="utf-8"
    )
    registry = ContractRegistry(
        digests=[
            DigestContract(
                name="tmp.digest",
                config_path="config.py",
                config_class="Config",
                digest_path="job.py",
                defaults_name="_DIGEST_DEFAULTS",
                founding_fields=(),
            )
        ]
    )
    findings = check_contracts(str(tmp_path), registry=registry)
    assert [f.rule for f in findings] == ["CON003", "CON003"]
    messages = " ".join(f.message for f in findings)
    assert "'gone'" in messages  # stale entry: not a field any more
    assert "does not equal the field default" in messages
    assert all(f.path == "job.py" for f in findings)


# ---------------------------------------------------------------------------
# Engine/CLI integration and the shipped tree
# ---------------------------------------------------------------------------


def test_shipped_tree_honors_its_contracts():
    """`netrs contracts` must exit 0 on the final tree (ISSUE 8 acceptance)."""
    assert check_contracts(str(REPO_ROOT)) == []


def test_default_registry_aggregates_all_declaration_modules():
    registry = default_registry()
    assert registry.mirror_pairs and registry.expr_anchors
    assert registry.stream_families and registry.draw_sequences
    assert registry.digests
    assert registry.total() == (
        len(registry.mirror_pairs)
        + len(registry.expr_anchors)
        + len(registry.stream_families)
        + len(registry.draw_sequences)
        + len(registry.digests)
    )
    names = {pair.name for pair in registry.mirror_pairs}
    assert "kernel.c3_select" in names  # repro.sim.contracts
    assert "server.complete" in names  # repro.mesoscale.contracts


def test_contract_findings_respect_noqa(monkeypatch):
    registry = ContractRegistry(mirror_pairs=[_complete_pair("mirror_noqa.py")])
    monkeypatch.setattr(con, "default_registry", lambda: registry)
    monkeypatch.setattr(
        "repro.lint.engine.default_registry", lambda: registry
    )
    report = lint_paths(
        [], contracts_only=True, display_relative_to=str(FIXTURES)
    )
    assert report.findings == []
    assert report.suppressed == 1
    assert report.contracts_checked == 1


def test_contract_rules_are_documented():
    assert contract_rule_ids() == ("CON001", "CON002", "CON003")
    for rule_id, rule in CONTRACT_RULES.items():
        assert rule.title
        assert len(rule.rationale) > 40
        text = explain(rule_id, CONTRACT_RULES)
        assert rule_id in text and "Bad:" in text and "Fix:" in text
