"""DET002 fixture: wall-clock reads in simulated code."""
import time
from datetime import datetime


def measure():
    started = time.perf_counter()
    stamp = datetime.now()
    return time.time() - started, stamp
