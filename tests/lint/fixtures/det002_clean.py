"""DET002 clean fixture: durations measured in simulated time."""


def measure(env):
    started = env.now
    env.run(until=started + 1.0)
    return env.now - started


def suppressed():
    import time

    return time.perf_counter()  # repro: noqa(DET002) - reported only
