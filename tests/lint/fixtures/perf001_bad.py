"""Violating fixture for PERF001: per-request scalar draws in a hot module.

The lint tests present this file under a synthetic ``src/repro/kvstore/``
path so the hot-module gate applies (see ``_lint_fixture``).
"""


class Server:
    def __init__(self, rng):
        self._rng = rng

    def service_time(self):
        # One numpy dispatch per request: exactly what BatchedStream avoids.
        return self._rng.exponential(1e-4)

    def jitter(self):
        return self._rng.random()

    def pick_backup(self, n_replicas):
        return self._rng.integers(0, n_replicas)
