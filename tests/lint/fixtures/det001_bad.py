"""DET001 fixture: unseeded randomness outside repro.sim.rng."""
import random

import numpy as np


def jitter():
    return random.random() + np.random.default_rng().random()


def reseed():
    np.random.seed(42)
