"""DET005 fixture: mutable default arguments."""
from collections import deque


def run(batch, sinks=[], options={}):
    return batch, sinks, options


def queue_up(item, pending=deque()):
    pending.append(item)
    return pending
