"""SIM001 fixture: scheduled lambda closing over the loop variable."""


def poll_all(env, servers, delay):
    for server in servers:
        env.call_in(delay, lambda: server.poll())


def arm(env, timers):
    for name, when in timers:
        env.call_at(when, lambda: print(name))
