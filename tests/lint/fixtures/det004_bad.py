"""DET004 fixture: exact float equality against simulated time."""


def expired(env, deadline):
    if env.now == deadline:
        return True
    return env.now != deadline
