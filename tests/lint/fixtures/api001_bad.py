"""API001 fixture: __all__ out of sync with the module's public surface."""

__all__ = ["run", "ghost"]


def run():
    return 1


def report():
    return 2
