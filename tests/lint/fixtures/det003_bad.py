"""DET003 fixture: hash-ordered iteration feeding the event schedule."""


def broadcast(env, packet, delay):
    for host in {packet.src, packet.dst}:
        env.post_in(delay, host.deliver, (packet,))


def flush(env, dirty):
    for key in set(dirty):
        env.call_in(0.0, print, key)
