"""DET001 clean fixture: randomness through named seeded streams."""
import numpy as np

from repro.sim.rng import RngRegistry


def jitter(seed: int) -> float:
    rng = RngRegistry(seed).stream("fixture.jitter")
    return float(rng.random())


def annotated(rng: np.random.Generator, seed: int = 0) -> float:
    return float(rng.uniform(0.0, 1.0))
