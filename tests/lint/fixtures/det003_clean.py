"""DET003 clean fixture: sorted iteration before scheduling."""


def broadcast(env, packet, delay):
    for host in sorted({packet.src, packet.dst}):
        env.post_in(delay, host.deliver, (packet,))


def summarize(counts):
    # Unordered iteration is fine when nothing is scheduled from it.
    return max(value for value in {1, 2, 3})
