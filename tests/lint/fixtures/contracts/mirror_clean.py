"""Faithful mirror: equal up to declared renames, drops and equivalences."""


class FlowServer:
    def complete(self, now):
        self.busy -= 1
        self.completions += 1
        self.log.append(now)

    def arrival(self, now):
        delay = self.arrival_rng.exponential(self.scale)
        key = self.sampler.sample(self.arrival_rng)
        self.schedule(now + delay, key)

    def tick(self):
        return engine.now + self.offset  # noqa: F821 - fixture vocabulary

    def respond(self, entry):
        self.finish(entry)
        self.responses += 1


def score(resp, expected, q_hat, exponent):
    value = resp - expected + q_hat**exponent * expected
    return value
