"""Mirror with two RNG draws swapped: values change, shapes do not (CON002)."""


class FlowServer:
    def arrival(self, now):
        key = self.sampler.sample(self.arrival_rng)  # line 6: drawn too early
        delay = self.arrival_rng.exponential(self.scale)
        self.schedule(now + delay, key)
