"""Config-digest fixtures (CON003): a founding field, a correctly routed
field, an undigested one and a sweep-only one."""

from dataclasses import dataclass


@dataclass
class Config:
    founding_knob: int = 1
    routed_knob: float = 0.25
    new_knob: str = "auto"  # line 11: no _DIGEST_DEFAULTS entry
    sweep_knob: int = 4  # line 12: elided, but no --sweep-knob flag
