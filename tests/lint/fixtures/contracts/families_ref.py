"""Reference-tier stream family declarations (CON002)."""


def build(registry, name):
    service = registry.batched(f"service.{name}", block_size=8)
    arrival = registry.stream("arrival")
    background = registry.stream("background")
    return service, arrival, background
