"""Drifted mirror: one statement differs from the reference (CON001)."""


class FlowServer:
    def complete(self, now):
        self.busy -= 1
        self.completions += 2  # line 7: the deliberate drift
        self.log.append(now)


def score(resp, expected, q_hat, exponent):
    value = resp - expected + q_hat**exponent / expected  # drifted formula
    return value
