"""Reference side of the contract-sanitizer fixtures (CON001/CON002)."""


class Server:
    def complete(self, now):
        """Finish one request (docstring is normalization noise)."""
        self.busy -= 1
        self.completions += 1
        self.log.append(now)

    def arrival(self, now):
        delay = self.rng.exponential(self.scale)
        key = self.sampler.sample(self.rng)
        if self.rng.random() < self.write_fraction:
            self.writes += 1
        self.schedule(now + delay, key)

    def tick(self):
        return self.env.now + self.offset

    def respond(self, entry):
        packet = self.make_packet(entry)
        self.host.send(packet)
        self.responses += 1


def score(resp, expected, q_hat, exponent):
    return resp - expected + q_hat**exponent * expected
