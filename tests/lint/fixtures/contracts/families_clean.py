"""Mirror-tier stream families: same names, minus the exempted one."""


def build(registry, name):
    service = registry.batched(f"service.{name}", block_size=8)
    arrival = registry.stream("arrival")
    return service, arrival
