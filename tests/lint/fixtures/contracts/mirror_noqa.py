"""Drifted mirror carrying an explicit suppression on the drift line."""


class FlowServer:
    def complete(self, now):
        self.busy -= 1
        self.completions += 2  # repro: noqa(CON001) - deliberate fixture drift
        self.log.append(now)
