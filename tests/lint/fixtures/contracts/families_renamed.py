"""Mirror tier that silently renamed a stream family: a different seed."""


def build(registry, name):
    service = registry.batched(f"svc.{name}", block_size=8)  # line 5: renamed
    arrival = registry.stream("arrival")
    return service, arrival
