"""CLI fixture paired with config.py: routes --routed-knob and nothing else."""


def build_parser(parser):
    parser.add_argument("--routed-knob", type=float, default=0.25)
    return parser
