"""Digest-elision fixture paired with config.py (CON003)."""

_DIGEST_DEFAULTS = {"routed_knob": 0.25, "sweep_knob": 4}
