"""API001 clean fixture: __all__ lists exactly the public names."""

__all__ = ["THRESHOLD", "report", "run"]

THRESHOLD = 3


def run():
    return 1


def report():
    return 2


def _helper():
    return 0
