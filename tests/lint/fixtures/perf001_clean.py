"""Clean fixture for PERF001: batched draws and the vectorized escape.

The lint tests present this file under a synthetic ``src/repro/kvstore/``
path so the hot-module gate applies (see ``_lint_fixture``).
"""


class Server:
    def __init__(self, draws, rng):
        self._draws = draws  # repro.sim.rng.BatchedStream (DrawSource)
        self._rng = rng

    def service_time(self):
        # BatchedStream serves scalars from prefetched blocks: not flagged.
        return self._draws.exponential(1e-4)

    def batch_of_delays(self, n):
        # Vectorized draw: already amortized, the size= keyword exempts it.
        return self._rng.exponential(1e-4, size=n)

    def arrival_gap(self, scale):
        # Mixed-family streams legitimately stay scalar with justification.
        return self._rng.exponential(scale)  # repro: noqa(PERF001) - mixed-family stream
