"""SIM001 clean fixture: loop values bound eagerly."""


def poll_all(env, servers, delay):
    for server in servers:
        env.call_in(delay, lambda s=server: s.poll())


def arm(env, timers):
    for name, when in timers:
        env.call_at(when, print, name)
