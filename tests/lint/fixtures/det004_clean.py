"""DET004 clean fixture: ordering comparisons against simulated time."""
import math


def expired(env, deadline):
    if env.now >= deadline:
        return True
    return math.isclose(env.now, deadline)
