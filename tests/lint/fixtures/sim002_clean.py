"""SIM002 clean fixture: entry points carry a seed (or config) parameter."""


def run_batch(jobs, rng=None, seed=0):
    return list(jobs), rng, seed


def run_from_config(config, rng=None):
    return config, rng


def _internal_helper(rng):
    return rng


class Sampler:
    def __init__(self, rng):  # methods are exempt: the class owner seeds it
        self.rng = rng
