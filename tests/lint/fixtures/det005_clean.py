"""DET005 clean fixture: None defaults constructed inside the function."""


def run(batch, sinks=None, options=None):
    if sinks is None:
        sinks = []
    if options is None:
        options = {}
    return batch, sinks, options


def scaled(value, factor=1.0, label=""):
    return value * factor, label
