"""SIM002 fixture: public entry point taking an RNG but no seed source."""


def run_batch(jobs, rng=None):
    return [rng.random() for _ in jobs]
