"""Tests for the docs link/anchor checker behind ``make docs-check``."""

from pathlib import Path

from repro.lint.docs import (
    check_docs,
    doc_files,
    github_slug,
    heading_anchors,
    main,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestSlugs:
    def test_basic_heading(self):
        assert github_slug("The write path") == "the-write-path"

    def test_punctuation_dropped(self):
        assert github_slug("Writes, quorums & churn") == "writes-quorums--churn"

    def test_markup_stripped(self):
        assert github_slug("`code` and *emphasis*") == "code-and-emphasis"

    def test_inline_link_anchors_on_text(self):
        assert github_slug("See [the docs](docs/X.md)") == "see-the-docs"

    def test_duplicates_suffixed(self):
        text = "# Setup\n\n## Setup\n\n### Setup\n"
        assert heading_anchors(text) == ["setup", "setup-1", "setup-2"]

    def test_fenced_headings_ignored(self):
        text = "# Real\n\n```\n# not a heading\n```\n\n## Also real\n"
        assert heading_anchors(text) == ["real", "also-real"]


def _tree(tmp_path, readme, docs=None):
    """Build a minimal doc tree: README.md plus optional docs/*.md."""
    (tmp_path / "README.md").write_text(readme, encoding="utf-8")
    if docs:
        docs_dir = tmp_path / "docs"
        docs_dir.mkdir()
        for name, text in docs.items():
            (docs_dir / name).write_text(text, encoding="utf-8")
    return tmp_path


class TestCheckDocs:
    def test_valid_tree_passes(self, tmp_path):
        root = _tree(
            tmp_path,
            "# Top\n\nSee [guide](docs/GUIDE.md#setup) and [self](#top).\n",
            {"GUIDE.md": "# Guide\n\n## Setup\n\nBack to [readme](../README.md).\n"},
        )
        assert check_docs(root) == []

    def test_broken_file_link_flagged_with_location(self, tmp_path):
        root = _tree(tmp_path, "# Top\n\nSee [gone](docs/MISSING.md).\n")
        problems = check_docs(root)
        assert len(problems) == 1
        assert problems[0].startswith("README.md:3:")
        assert "MISSING.md" in problems[0]

    def test_broken_anchor_flagged(self, tmp_path):
        root = _tree(
            tmp_path,
            "# Top\n\nSee [guide](docs/GUIDE.md#nonexistent).\n",
            {"GUIDE.md": "# Guide\n"},
        )
        problems = check_docs(root)
        assert len(problems) == 1
        assert "broken anchor" in problems[0]
        assert "#nonexistent" in problems[0]

    def test_external_links_skipped(self, tmp_path):
        root = _tree(
            tmp_path,
            "# Top\n\n[a](https://example.com/x#y) [b](mailto:x@y.z)\n",
        )
        assert check_docs(root) == []

    def test_links_inside_code_fences_skipped(self, tmp_path):
        root = _tree(
            tmp_path, "# Top\n\n```\n[broken](nowhere.md)\n```\n"
        )
        assert check_docs(root) == []

    def test_fragment_into_source_file_not_validated(self, tmp_path):
        root = _tree(tmp_path, "# Top\n\n[line ref](x.py#L10)\n")
        (tmp_path / "x.py").write_text("pass\n", encoding="utf-8")
        assert check_docs(root) == []

    def test_covers_readme_plus_docs(self, tmp_path):
        root = _tree(
            tmp_path,
            "# Top\n",
            {"B.md": "# B\n", "A.md": "# A\n[bad](gone.md)\n"},
        )
        names = [p.name for p in doc_files(root)]
        assert names == ["README.md", "A.md", "B.md"]
        assert check_docs(root)  # the break in docs/A.md is found

    def test_repository_tree_is_clean(self):
        """The real README + docs must pass the exact CI check."""
        assert check_docs(REPO_ROOT) == []


class TestMain:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        _tree(tmp_path, "# Top\n")
        assert main([str(tmp_path)]) == 0
        assert "docs-check: ok" in capsys.readouterr().out

    def test_exit_nonzero_on_broken_link(self, tmp_path, capsys):
        _tree(tmp_path, "# Top\n\n[gone](missing.md)\n")
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "broken link" in out

    def test_exit_nonzero_without_docs(self, tmp_path, capsys):
        assert main([str(tmp_path)]) == 1
        assert "no README.md" in capsys.readouterr().out
