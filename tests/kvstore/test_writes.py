"""Tests for replicated writes and mixed read/write workloads."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.kvstore.client import KVClient
from repro.kvstore.hashing import ConsistentHashRing
from repro.network.packet import MAGIC_PLAIN, ServerStatus, make_response
from repro.sim import Environment
from repro.sim.probes import LatencyRecorder
from tests.kvstore.test_client import FirstCandidateSelector, StubHost

SERVERS = [f"server{i}" for i in range(5)]


@pytest.fixture
def ring():
    return ConsistentHashRing(SERVERS, replication_factor=3, virtual_nodes=8)


def _client(env, ring, quorum=None):
    host = StubHost()
    write_recorder = LatencyRecorder()
    client = KVClient(
        env,
        host,
        ring=ring,
        selector=FirstCandidateSelector(),
        recorder=LatencyRecorder(),
        write_recorder=write_recorder,
        write_quorum=quorum,
    )
    return client, host, write_recorder


def _ack(client, packet):
    status = ServerStatus(queue_size=0, service_rate=1000.0, timestamp=0.0)
    response = make_response(packet, server=packet.dst, status=status)
    client.handle_packet(response)


class TestIssueWrite:
    def test_fans_out_to_all_replicas(self, ring):
        env = Environment()
        client, host, _ = _client(env, ring)
        client.issue_write(key=7)
        _, replicas = ring.group_for_key(7)
        assert len(host.sent) == len(replicas)
        assert {p.dst for p in host.sent} == set(replicas)
        assert all(p.is_write for p in host.sent)
        assert all(p.magic == MAGIC_PLAIN for p in host.sent)

    def test_copies_share_request_id(self, ring):
        env = Environment()
        client, host, _ = _client(env, ring)
        client.issue_write(key=7)
        assert len({p.request_id for p in host.sent}) == 1

    def test_completes_at_full_quorum(self, ring):
        env = Environment()
        client, host, write_recorder = _client(env, ring)
        client.issue_write(key=7)
        env.call_in(2e-3, lambda: None)
        env.run()
        _ack(client, host.sent[0])
        _ack(client, host.sent[1])
        assert len(write_recorder) == 0  # only 2 of 3 acks so far
        _ack(client, host.sent[2])
        assert len(write_recorder) == 1
        assert write_recorder.samples[0] == pytest.approx(2e-3)

    def test_partial_quorum(self, ring):
        env = Environment()
        client, host, write_recorder = _client(env, ring, quorum=2)
        client.issue_write(key=7)
        _ack(client, host.sent[0])
        assert len(write_recorder) == 0
        _ack(client, host.sent[1])
        assert len(write_recorder) == 1
        # The straggler ack is late but harmless.
        _ack(client, host.sent[2])
        assert len(write_recorder) == 1
        assert client.late_responses == 1

    def test_write_ack_updates_selector(self, ring):
        env = Environment()
        client, host, _ = _client(env, ring)
        selector = client.selector
        client.issue_write(key=7)
        assert len(selector.sent) == 3
        _ack(client, host.sent[0])
        assert len(selector.responses) == 1

    def test_write_responses_are_writes(self, ring):
        env = Environment()
        client, host, _ = _client(env, ring)
        client.issue_write(key=7)
        status = ServerStatus(queue_size=0, service_rate=1.0, timestamp=0.0)
        response = make_response(host.sent[0], server=host.sent[0].dst, status=status)
        assert response.is_write

    def test_quorum_validated(self, ring):
        env = Environment()
        with pytest.raises(ConfigurationError):
            _client(env, ring, quorum=0)
        client, _, _ = _client(env, ring, quorum=5)
        with pytest.raises(ConfigurationError):
            client.issue_write(key=1)  # quorum 5 > RF 3

    def test_tracker_counts_one_completion_per_write(self, ring):
        from repro.kvstore.client import CompletionTracker

        env = Environment()
        host = StubHost()
        tracker = CompletionTracker(1)
        client = KVClient(
            env,
            host,
            ring=ring,
            selector=FirstCandidateSelector(),
            recorder=LatencyRecorder(),
            tracker=tracker,
        )
        client.issue_write(key=7)
        for packet in list(host.sent):
            _ack(client, packet)
        assert tracker.completed == 1


class TestMixedWorkloadExperiments:
    def test_mixed_run_completes(self):
        config = ExperimentConfig.tiny(
            scheme="netrs-ilp", seed=1, write_fraction=0.3
        )
        result = run_experiment(config)
        assert result.completed_requests == config.total_requests
        writes = result.write_summary()
        assert writes is not None
        assert writes["mean"] > 0

    def test_read_only_has_no_write_summary(self):
        result = run_experiment(ExperimentConfig.tiny(seed=1))
        assert result.write_summary() is None

    def test_writes_slower_than_reads(self):
        """Waiting for all three replicas beats a single selected one."""
        config = ExperimentConfig.tiny(scheme="clirs", seed=2, write_fraction=0.4)
        result = run_experiment(config)
        assert result.write_summary()["mean"] > result.summary()["mean"]

    def test_write_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig.tiny(write_fraction=1.0)
        with pytest.raises(ConfigurationError):
            ExperimentConfig.tiny(write_quorum=9)

    def test_closed_loop_rejects_writes(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig.tiny(workload_mode="closed", write_fraction=0.2)

    def test_server_load_includes_write_fanout(self):
        config = ExperimentConfig.tiny(scheme="clirs", seed=3, write_fraction=0.5)
        result = run_experiment(config, keep_scenario=True)
        scenario = result.scenario
        arrivals = sum(s.arrivals for s in scenario.servers.values())
        writes = scenario.workload.writes_issued
        reads = config.total_requests - writes
        expected = reads + writes * config.replication_factor
        # R95 off, so arrivals are exactly reads + RF * writes.
        assert arrivals == expected
