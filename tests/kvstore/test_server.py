"""Tests for the KV server: queueing, parallelism, status piggyback."""

import numpy as np
import pytest

from repro.kvstore.fluctuation import StableService
from repro.kvstore.server import KVServer
from repro.network.packet import MAGIC_PLAIN, make_request
from repro.sim import Environment


class StubHost:
    """Host double capturing outgoing packets."""

    def __init__(self, name="server0"):
        self.name = name
        self.sent = []
        self.endpoint = None

    def bind(self, endpoint):
        self.endpoint = endpoint

    def send(self, packet):
        self.sent.append((packet, len(self.sent)))


def _request(request_id=1, client="client0"):
    return make_request(
        client=client,
        request_id=request_id,
        key=request_id,
        rgid=1,
        backup_replica="server0",
        issued_at=0.0,
        netrs=False,
        dst="server0",
    )


def _server(env, host, mean=1e-3, parallelism=2, seed=0):
    return KVServer(
        env,
        host,
        service_model=StableService(mean),
        parallelism=parallelism,
        rng=np.random.default_rng(seed),
    )


class TestValidation:
    def test_parallelism_positive(self):
        with pytest.raises(ValueError):
            _server(Environment(), StubHost(), parallelism=0)

    def test_alpha_range(self):
        with pytest.raises(ValueError):
            KVServer(
                Environment(),
                StubHost(),
                service_model=StableService(1e-3),
                rng=np.random.default_rng(0),
                rate_ewma_alpha=1.0,
            )


class TestServicing:
    def test_every_request_gets_a_response(self):
        env = Environment()
        host = StubHost()
        server = _server(env, host)
        for i in range(10):
            server.handle_packet(_request(i))
        env.run()
        assert len(host.sent) == 10
        assert server.completions == 10
        assert server.queue_size == 0

    def test_response_addresses_the_client(self):
        env = Environment()
        host = StubHost()
        server = _server(env, host)
        server.handle_packet(_request(5, client="clientX"))
        env.run()
        response, _ = host.sent[0]
        assert response.dst == "clientX"
        assert response.request_id == 5
        assert response.server == "server0"
        assert response.magic == MAGIC_PLAIN

    def test_parallelism_limits_in_service(self):
        env = Environment()
        host = StubHost()
        server = _server(env, host, parallelism=2)
        for i in range(6):
            server.handle_packet(_request(i))
        assert server.queue_size == 6
        assert server._in_service == 2
        env.run()
        assert server.max_queue_seen == 6

    def test_mean_service_time_approximate(self):
        env = Environment()
        host = StubHost()
        server = _server(env, host, mean=2e-3, parallelism=1, seed=42)
        n = 2000

        def feed(i=0):
            # Closed-loop feeding: next request as the previous completes.
            if i < n:
                server.handle_packet(_request(i))
                env.call_in(2e-3 * 50, feed, i + 1)  # generous spacing

        # Open-loop all at once is fine too; service times are iid.
        for i in range(n):
            server.handle_packet(_request(i))
        env.run()
        total_busy = env.now  # single worker busy continuously
        assert total_busy / n == pytest.approx(2e-3, rel=0.1)

    def test_status_piggybacked(self):
        env = Environment()
        host = StubHost()
        server = _server(env, host)
        for i in range(4):
            server.handle_packet(_request(i))
        env.run()
        response, _ = host.sent[0]
        status = response.server_status
        assert status is not None
        assert status.queue_size >= 0
        assert status.service_rate > 0

    def test_queue_size_in_status_reflects_backlog(self):
        env = Environment()
        host = StubHost()
        server = _server(env, host, parallelism=1)
        for i in range(5):
            server.handle_packet(_request(i))
        env.run()
        # First response departs while 4 requests remain behind it.
        first_status = host.sent[0][0].server_status
        last_status = host.sent[-1][0].server_status
        assert first_status.queue_size == 4
        assert last_status.queue_size == 0

    def test_service_rate_estimate_converges(self):
        env = Environment()
        host = StubHost()
        server = _server(env, host, mean=1e-3, parallelism=4, seed=3)
        for i in range(3000):
            server.handle_packet(_request(i))
        env.run()
        # Rate = parallelism / mean = 4000 req/s, EWMA should be in range.
        assert server.service_rate_estimate == pytest.approx(4000, rel=0.5)

    def test_arrivals_counter(self):
        env = Environment()
        host = StubHost()
        server = _server(env, host)
        for i in range(3):
            server.handle_packet(_request(i))
        env.run()
        assert server.arrivals == 3

    def test_fifo_completion_order_single_worker(self):
        env = Environment()
        host = StubHost()
        server = _server(env, host, parallelism=1)
        for i in range(5):
            server.handle_packet(_request(i))
        env.run()
        ids = [p.request_id for p, _ in host.sent]
        assert ids == [0, 1, 2, 3, 4]
