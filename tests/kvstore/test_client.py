"""Tests for the KV client: issuing, feedback, redundancy, tracking."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kvstore.client import CompletionTracker, KVClient, RedundancyPolicy
from repro.kvstore.hashing import ConsistentHashRing
from repro.network.packet import (
    MAGIC_PLAIN,
    MAGIC_REQUEST,
    ServerStatus,
    make_response,
)
from repro.selection.base import ReplicaSelector
from repro.sim import Environment
from repro.sim.probes import LatencyRecorder

SERVERS = [f"server{i}" for i in range(5)]


class StubHost:
    def __init__(self, name="client0"):
        self.name = name
        self.sent = []
        self.endpoint = None

    def bind(self, endpoint):
        self.endpoint = endpoint

    def send(self, packet):
        self.sent.append(packet)


class FirstCandidateSelector(ReplicaSelector):
    """Deterministic selector double that logs its calls."""

    algorithm_name = "first"

    def __init__(self):
        super().__init__()
        self.sent = []
        self.responses = []

    def select(self, candidates, now):
        self.selections += 1
        return candidates[0]

    def note_sent(self, server, now):
        self.sent.append(server)

    def note_response(self, server, latency, status, now):
        self.responses.append((server, latency))


@pytest.fixture
def ring():
    return ConsistentHashRing(SERVERS, replication_factor=3, virtual_nodes=8)


def _client(env, ring, host=None, **kwargs):
    host = host or StubHost()
    selector = kwargs.pop("selector", FirstCandidateSelector())
    return (
        KVClient(
            env,
            host,
            ring=ring,
            selector=selector,
            recorder=kwargs.pop("recorder", LatencyRecorder()),
            **kwargs,
        ),
        host,
        selector,
    )


def _respond(client, request_packet, server=None, queue=0):
    """Simulate a server response arriving back at the client."""
    server = server or request_packet.dst
    request_packet.server = server
    status = ServerStatus(queue_size=queue, service_rate=1000.0, timestamp=0.0)
    response = make_response(request_packet, server=server, status=status)
    client.handle_packet(response)
    return response


class TestIssuePlain:
    def test_plain_issue_selects_and_sends(self, ring):
        env = Environment()
        client, host, selector = _client(env, ring)
        client.issue(key=7)
        assert len(host.sent) == 1
        packet = host.sent[0]
        assert packet.magic == MAGIC_PLAIN
        assert packet.dst in SERVERS
        assert selector.sent == [packet.dst]

    def test_dst_is_a_replica_of_the_key(self, ring):
        env = Environment()
        client, host, _ = _client(env, ring)
        client.issue(key=7)
        _, replicas = ring.group_for_key(7)
        assert host.sent[0].dst == replicas[0]

    def test_latency_recorded_on_response(self, ring):
        env = Environment()
        recorder = LatencyRecorder()
        client, host, _ = _client(env, ring, recorder=recorder)
        client.issue(key=1)
        env.call_in(3e-3, lambda: None)
        env.run()
        _respond(client, host.sent[0])
        assert len(recorder) == 1
        assert recorder.samples[0] == pytest.approx(3e-3)

    def test_warmup_requests_not_recorded(self, ring):
        env = Environment()
        recorder = LatencyRecorder()
        client, host, _ = _client(env, ring, recorder=recorder)
        client.issue(key=1, record=False)
        _respond(client, host.sent[0])
        assert len(recorder) == 0

    def test_selector_gets_feedback(self, ring):
        env = Environment()
        client, host, selector = _client(env, ring)
        client.issue(key=1)
        _respond(client, host.sent[0])
        assert len(selector.responses) == 1

    def test_duplicate_response_counted_late(self, ring):
        env = Environment()
        client, host, _ = _client(env, ring)
        client.issue(key=1)
        response = _respond(client, host.sent[0])
        client.handle_packet(response)
        assert client.late_responses == 1


class TestIssueNetrs:
    def test_netrs_request_has_rgid_and_backup(self, ring):
        env = Environment()
        client, host, selector = _client(env, ring, netrs=True)
        client.issue(key=7)
        packet = host.sent[0]
        assert packet.magic == MAGIC_REQUEST
        assert packet.dst is None
        rgid, replicas = ring.group_for_key(7)
        assert packet.rgid == rgid
        assert packet.backup_replica == replicas[0]
        # The client must not count a send it did not target.
        assert selector.sent == []

    def test_netrs_redundancy_rejected(self, ring):
        env = Environment()
        with pytest.raises(ConfigurationError):
            _client(env, ring, netrs=True, redundancy=RedundancyPolicy())


class TestRedundancy:
    def _issue_and_wait(self, env, ring, wait, min_samples=2):
        policy = RedundancyPolicy(min_samples=min_samples, fallback_multiplier=3.0)
        client, host, selector = _client(
            env, ring, redundancy=policy, rng=np.random.default_rng(0)
        )
        # Give the client some latency history (2 samples of ~1 ms), with
        # responses arriving *before* any redundancy timer can fire.
        for key in (1, 2):
            client.issue(key=key)
            env.call_in(1e-3, lambda: _respond(client, host.sent[-1]))
            env.run(until=env.now + 2e-3)
        host.sent.clear()
        client.issue(key=3)
        env.run(until=env.now + wait)
        return client, host, selector

    def test_slow_request_triggers_duplicate(self, ring):
        env = Environment()
        client, host, _ = self._issue_and_wait(env, ring, wait=50e-3)
        assert len(host.sent) == 2  # primary + duplicate
        assert host.sent[1].is_redundant
        assert host.sent[1].dst != host.sent[0].dst
        assert client.redundant_sent == 1

    def test_fast_response_cancels_timer(self, ring):
        env = Environment()
        policy = RedundancyPolicy(min_samples=1000)
        client, host, _ = _client(
            env, ring, redundancy=policy, rng=np.random.default_rng(0)
        )
        client.issue(key=1)
        _respond(client, host.sent[0])
        env.run()
        assert client.redundant_sent == 0

    def test_first_response_wins(self, ring):
        env = Environment()
        recorder = LatencyRecorder()
        policy = RedundancyPolicy(min_samples=2)
        client, host, _ = _client(
            env,
            ring,
            recorder=recorder,
            redundancy=policy,
            rng=np.random.default_rng(0),
        )
        for key in (1, 2):
            client.issue(key=key)
            env.call_in(1e-3, lambda: _respond(client, host.sent[-1]))
            env.run(until=env.now + 2e-3)
        host.sent.clear()
        recorded_before = len(recorder)
        client.issue(key=3)
        env.run(until=env.now + 60e-3)
        assert len(host.sent) == 2
        _respond(client, host.sent[1])  # duplicate answers first
        _respond(client, host.sent[0])  # primary arrives late
        assert len(recorder) == recorded_before + 1
        assert client.late_responses == 1

    def test_duplicate_targets_different_replica(self, ring):
        env = Environment()
        _, host, _ = self._issue_and_wait(env, ring, wait=50e-3)
        primary, duplicate = host.sent
        _, replicas = ring.group_for_key(3)
        assert duplicate.dst in replicas
        assert duplicate.dst != primary.dst


class TestCompletionTracker:
    def test_fires_once_at_expected(self):
        tracker = CompletionTracker(3)
        fired = []
        tracker.when_done(lambda: fired.append(True))
        for _ in range(3):
            tracker.complete()
        assert fired == [True]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CompletionTracker(0)

    def test_client_reports_completion(self, ring):
        env = Environment()
        tracker = CompletionTracker(1)
        client, host, _ = _client(env, ring, tracker=tracker)
        client.issue(key=1)
        _respond(client, host.sent[0])
        assert tracker.completed == 1
