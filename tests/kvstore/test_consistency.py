"""Consistency-layer tests: determinism, quorum failure, churn, validation.

Pins the guarantees `docs/CONSISTENCY.md` makes by name:

* same-seed write/churn runs are byte-identical across repeats, across
  ``rng_batch_size`` (scalar vs batched RNG streams) and across ``--jobs``
  worker counts (determinism guarantee 3);
* an unsatisfiable write quorum under a crash is a *counted* failure, not
  a hang;
* `ChurnableRing` keeps the segment universe (RGIDs) membership-invariant
  and statically rejects impossible schedules;
* quorum bounds and the fault/churn schedule split are validated at config
  time, while sloppy quorums (R + W <= N) are a note, not an error;
* the flow tier fails fast on every consistency knob.
"""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.exec import ExecutionPolicy
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.sweep import run_sweep
from repro.faults.events import NodeJoin, NodeLeave
from repro.kvstore.hashing import ConsistentHashRing
from repro.kvstore.membership import ChurnableRing, ChurnCoordinator
from repro.sim import Environment

SERVERS = [f"server{i}" for i in range(6)]
CHURN = "node-leave@0.04:server#1; node-join@0.1:server#1"


def _config(scheme="clirs", churn=CHURN, **overrides):
    """A small mixed read/write quorum config, optionally with churn."""
    defaults = dict(
        total_requests=500,
        write_fraction=0.2,
        write_quorum=2,
        read_quorum=2,
        churn_schedule=churn,
        request_timeout=0.05,
    )
    defaults.update(overrides)
    return ExperimentConfig.tiny(scheme=scheme, seed=7, **defaults)


def _fingerprint(result):
    """Everything the consistency layer can influence, in one tuple."""
    return (
        result.summary(),
        result.write_summary(),
        result.writes_completed,
        result.write_failures,
        result.stale_reads,
        result.read_repairs,
        result.repair_writes_sent,
        result.quorum_degraded_reads,
        result.digest_probes_sent,
        result.migrated_keys,
        result.migration_bytes,
        result.churn_events,
        result.events_executed,
        result.bytes_transferred,
    )


class TestByteIdentity:
    @pytest.mark.parametrize("scheme", ["clirs", "netrs-tor"])
    @pytest.mark.parametrize("churn", [None, CHURN])
    def test_same_seed_runs_identical(self, scheme, churn):
        first = run_experiment(_config(scheme=scheme, churn=churn))
        second = run_experiment(_config(scheme=scheme, churn=churn))
        assert _fingerprint(first) == _fingerprint(second)

    def test_scalar_and_batched_rng_identical(self):
        """The BatchedStream fast path may not change a single byte."""
        scalar = run_experiment(_config(rng_batch_size=0))
        batched = run_experiment(_config(rng_batch_size=1024))
        assert _fingerprint(scalar) == _fingerprint(batched)

    def test_write_runs_actually_exercise_the_layer(self):
        result = run_experiment(_config())
        assert result.writes_completed > 0
        assert result.digest_probes_sent > 0
        assert result.churn_events == 2

    def test_parallel_sweep_identical_to_serial(self, deterministic_sim):
        """Write/churn sweeps merge byte-identically across --jobs."""
        base = ExperimentConfig.tiny(seed=3, total_requests=400)
        kwargs = dict(
            parameter="write_fraction",
            values=[0.0, 0.2],
            schemes=["clirs"],
            repetitions=1,
            overrides={
                "read_quorum": 2,
                "churn_schedule": CHURN,
                "request_timeout": 0.05,
            },
        )
        serial = run_sweep(base, **kwargs)
        parallel = run_sweep(
            base, **kwargs, execution=ExecutionPolicy(workers=2)
        )
        assert parallel.to_json() == serial.to_json()
        assert parallel.extras == serial.extras
        assert parallel.cells == serial.cells


class TestQuorumUnderCrash:
    def test_unsatisfiable_write_quorum_is_counted_not_hung(self):
        """Crash a replica with W = all: affected writes must fail fast.

        The crashed server swallows its copy of every fanned-out write, so
        any write whose group contains it can never reach W acks.  The run
        must still terminate (the timeout completes the tracker slot) and
        count the losses in ``write_failures``.
        """
        config = _config(
            churn=None,
            write_quorum=None,  # W = replication_factor (all replicas)
            fault_schedule="server-down@0.005:server#0",
        )
        result = run_experiment(config)
        assert result.write_failures > 0
        assert result.writes_completed > 0  # groups without the victim
        assert result.write_failures + result.writes_completed > 0


class TestChurnMigration:
    def test_churn_run_migrates_keys_through_the_fabric(self):
        config = _config()
        result = run_experiment(config)
        assert result.churn_events == 2
        assert result.migrated_keys > 0
        # Every migrated key is charged at the configured value size.
        assert result.migration_bytes == result.migrated_keys * config.value_size

    def test_churn_not_counted_as_faults(self):
        result = run_experiment(_config())
        assert result.faults_injected == 0


class TestChurnableRing:
    def _ring(self):
        return ChurnableRing(SERVERS, replication_factor=3, virtual_nodes=8)

    def test_all_active_matches_plain_ring(self):
        churnable = self._ring()
        plain = ConsistentHashRing(
            SERVERS, replication_factor=3, virtual_nodes=8
        )
        for key in range(200):
            assert churnable.group_for_key(key) == plain.group_for_key(key)

    def test_deactivate_reroutes_around_inactive_owner(self):
        ring = self._ring()
        ring.deactivate("server2")
        for key in range(200):
            _, replicas = ring.group_for_key(key)
            assert "server2" not in replicas
            assert len(replicas) == 3

    def test_rgid_universe_is_membership_invariant(self):
        """In-flight RGIDs must stay resolvable across churn."""
        ring = self._ring()
        before = {key: ring.group_for_key(key)[0] for key in range(200)}
        groups_before = len(ring.group_snapshot())
        ring.deactivate("server2")
        assert len(ring.group_snapshot()) == groups_before
        assert all(
            ring.group_for_key(key)[0] == rgid for key, rgid in before.items()
        )

    def test_rejoin_restores_original_groups(self):
        ring = self._ring()
        snapshot = ring.group_snapshot()
        ring.deactivate("server2")
        ring.activate("server2")
        assert ring.group_snapshot() == snapshot

    def test_deactivate_below_replication_factor_rejected(self):
        ring = self._ring()
        for server in SERVERS[:3]:  # 6 -> 3 active: still exactly RF
            ring.deactivate(server)
        with pytest.raises(ConfigurationError, match="replication"):
            ring.deactivate(SERVERS[3])

    def test_state_toggles_validated(self):
        ring = self._ring()
        with pytest.raises(ConfigurationError):
            ring.activate("server0")  # already active
        ring.deactivate("server0")
        with pytest.raises(ConfigurationError):
            ring.deactivate("server0")  # already inactive
        with pytest.raises(ConfigurationError):
            ring.deactivate("not-a-server")


class TestPreflight:
    def _coordinator(self):
        ring = ChurnableRing(SERVERS, replication_factor=3, virtual_nodes=8)
        return ChurnCoordinator(Environment(), ring, {}, value_size=1024)

    def test_valid_leave_then_join_passes(self):
        self._coordinator().preflight(
            [NodeLeave(0.04, "server1"), NodeJoin(0.1, "server1")]
        )

    def test_leave_of_inactive_rejected(self):
        with pytest.raises(ConfigurationError, match="not active"):
            self._coordinator().preflight(
                [NodeLeave(0.04, "server1"), NodeLeave(0.1, "server1")]
            )

    def test_join_of_active_rejected(self):
        with pytest.raises(ConfigurationError, match="already active"):
            self._coordinator().preflight([NodeJoin(0.04, "server1")])

    def test_ring_underflow_rejected(self):
        events = [NodeLeave(0.01 * i, s) for i, s in enumerate(SERVERS[:4])]
        with pytest.raises(ConfigurationError, match="replication_factor"):
            self._coordinator().preflight(events)

    def test_unknown_target_rejected(self):
        with pytest.raises(ConfigurationError, match="universe"):
            self._coordinator().preflight([NodeLeave(0.04, "ghost")])


class TestConfigValidation:
    def test_quorums_exceeding_replica_count_rejected(self):
        with pytest.raises(ConfigurationError, match="write_quorum"):
            ExperimentConfig.tiny(write_fraction=0.1, write_quorum=4)
        with pytest.raises(ConfigurationError, match="read_quorum"):
            ExperimentConfig.tiny(read_quorum=4)
        with pytest.raises(ConfigurationError, match="read_quorum"):
            ExperimentConfig.tiny(read_quorum=0)

    def test_churn_events_rejected_in_fault_schedule(self):
        with pytest.raises(ConfigurationError, match="churn_schedule"):
            ExperimentConfig.tiny(
                fault_schedule="node-leave@0.04:server#1",
                request_timeout=0.05,
            )

    def test_fault_events_rejected_in_churn_schedule(self):
        with pytest.raises(ConfigurationError, match="node-join/node-leave"):
            ExperimentConfig.tiny(churn_schedule="server-down@0.04:server#1")

    def test_sloppy_quorum_is_a_note_not_an_error(self):
        sloppy = ExperimentConfig.tiny(
            write_fraction=0.1, write_quorum=1, read_quorum=1
        )
        notes = sloppy.consistency_notes()
        assert len(notes) == 1 and "sloppy quorum" in notes[0]

    def test_strict_quorum_and_read_only_have_no_note(self):
        strict = ExperimentConfig.tiny(
            write_fraction=0.1, write_quorum=2, read_quorum=2
        )
        assert strict.consistency_notes() == []
        assert ExperimentConfig.tiny().consistency_notes() == []

    def test_describe_surfaces_the_sloppy_note(self):
        config = _config(
            churn=None, total_requests=300, write_quorum=1, read_quorum=1
        )
        result = run_experiment(config)
        assert "sloppy quorum" in result.describe()


class TestFlowTierGate:
    def test_writes_rejected(self):
        with pytest.raises(ConfigurationError, match="write_fraction"):
            ExperimentConfig.tiny(fidelity="flow", write_fraction=0.1)

    def test_quorum_reads_rejected(self):
        with pytest.raises(ConfigurationError, match="read_quorum"):
            ExperimentConfig.tiny(fidelity="flow", read_quorum=2)

    def test_churn_rejected(self):
        with pytest.raises(ConfigurationError, match="churn"):
            ExperimentConfig.tiny(fidelity="flow", churn_schedule=CHURN)


class TestNoKnobsNoNewFields:
    def test_read_only_run_reports_zero_consistency_counters(self):
        result = run_experiment(ExperimentConfig.tiny(total_requests=300))
        assert result.writes_completed == 0
        assert result.stale_reads == 0
        assert result.read_repairs == 0
        assert result.digest_probes_sent == 0
        assert result.migrated_keys == 0
        assert result.churn_events == 0

    def test_consistency_fields_elide_from_digest_at_defaults(self):
        from repro.exec.job import config_digest

        config = ExperimentConfig.tiny()
        explicit = dataclasses.replace(config, read_quorum=None)
        assert config_digest(config) == config_digest(explicit)
        assert config_digest(config) != config_digest(
            dataclasses.replace(config, read_quorum=2)
        )
