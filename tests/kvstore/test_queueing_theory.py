"""Quantitative validation of the server model against M/M/c theory.

The KV server with a *stable* service model and Poisson arrivals is an
M/M/c queue (c = Np).  Erlang-C gives closed-form waiting times; if the
simulated substrate does not reproduce them, every latency number downstream
is suspect.  These tests drive a single server open-loop and compare.
"""

import math

import numpy as np
import pytest

from repro.kvstore.fluctuation import StableService
from repro.kvstore.server import KVServer
from repro.network.packet import make_request
from repro.sim import Environment


class CollectingHost:
    def __init__(self, name="server0"):
        self.name = name
        self.endpoint = None
        self.responses = []

    def bind(self, endpoint):
        self.endpoint = endpoint

    def send(self, packet):
        self.responses.append(packet)


def erlang_c_wait(arrival_rate, service_rate, servers):
    """Expected M/M/c waiting time (Erlang C formula)."""
    a = arrival_rate / service_rate  # offered load
    rho = a / servers
    if rho >= 1:
        raise ValueError("unstable queue")
    summation = sum(a**k / math.factorial(k) for k in range(servers))
    numerator = a**servers / (math.factorial(servers) * (1 - rho))
    p_wait = numerator / (summation + numerator)
    return p_wait / (servers * service_rate - arrival_rate)


def _drive(env, server, arrival_rate, total, rng):
    state = {"sent": 0}

    def arrival():
        request = make_request(
            client="client0",
            request_id=state["sent"],
            key=state["sent"],
            rgid=1,
            backup_replica="server0",
            issued_at=env.now,
            netrs=False,
            dst="server0",
        )
        server.handle_packet(request)
        state["sent"] += 1
        if state["sent"] < total:
            env.call_in(rng.exponential(1.0 / arrival_rate), arrival)

    env.call_in(rng.exponential(1.0 / arrival_rate), arrival)


@pytest.mark.parametrize(
    "utilization,parallelism",
    [(0.5, 1), (0.8, 1), (0.5, 4), (0.8, 4)],
)
def test_waiting_time_matches_erlang_c(utilization, parallelism):
    mean_service = 4e-3
    service_rate = 1.0 / mean_service
    arrival_rate = utilization * parallelism * service_rate
    env = Environment()
    host = CollectingHost()
    server = KVServer(
        env,
        host,
        service_model=StableService(mean_service),
        parallelism=parallelism,
        rng=np.random.default_rng(7),
    )
    _drive(env, server, arrival_rate, total=40_000, rng=np.random.default_rng(8))
    env.run()
    waits = [p.server_queue_delay for p in host.responses]
    # Drop the warmup fifth.
    waits = waits[len(waits) // 5 :]
    expected = erlang_c_wait(arrival_rate, service_rate, parallelism)
    measured = sum(waits) / len(waits)
    assert measured == pytest.approx(expected, rel=0.12)


def test_service_times_are_exponential():
    env = Environment()
    host = CollectingHost()
    server = KVServer(
        env,
        host,
        service_model=StableService(2e-3),
        parallelism=2,
        rng=np.random.default_rng(11),
    )
    _drive(env, server, arrival_rate=100.0, total=20_000, rng=np.random.default_rng(12))
    env.run()
    samples = np.array([p.server_service_time for p in host.responses])
    assert samples.mean() == pytest.approx(2e-3, rel=0.05)
    # Exponential: std == mean, CV == 1.
    assert samples.std() / samples.mean() == pytest.approx(1.0, abs=0.05)
    # Memoryless check via the survival function at one mean.
    survival = (samples > 2e-3).mean()
    assert survival == pytest.approx(math.exp(-1), abs=0.03)
