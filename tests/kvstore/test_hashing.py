"""Tests for the consistent hash ring and replica groups."""

import pytest

from repro.errors import ConfigurationError
from repro.kvstore.hashing import ConsistentHashRing, stable_hash

SERVERS = [f"server{i}" for i in range(10)]


class TestConstruction:
    def test_needs_enough_servers(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashRing(["a", "b"], replication_factor=3)

    def test_duplicate_servers_rejected(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashRing(["a", "b", "b"], replication_factor=2)

    def test_replication_factor_validated(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashRing(SERVERS, replication_factor=0)

    def test_virtual_nodes_validated(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashRing(SERVERS, virtual_nodes=0)

    def test_ring_size(self):
        ring = ConsistentHashRing(SERVERS, virtual_nodes=8)
        assert len(ring) == 80


class TestLookups:
    @pytest.fixture(scope="class")
    def ring(self):
        return ConsistentHashRing(SERVERS, replication_factor=3, virtual_nodes=16)

    def test_group_has_rf_distinct_servers(self, ring):
        for key in range(500):
            _, replicas = ring.group_for_key(key)
            assert len(replicas) == 3
            assert len(set(replicas)) == 3
            assert all(r in SERVERS for r in replicas)

    def test_lookup_is_deterministic(self, ring):
        assert ring.group_for_key(12345) == ring.group_for_key(12345)

    def test_rgid_resolves_to_same_replicas(self, ring):
        rgid, replicas = ring.group_for_key(999)
        assert ring.replicas(rgid) == replicas

    def test_unknown_rgid_raises(self, ring):
        with pytest.raises(ConfigurationError):
            ring.replicas(10**9)

    def test_group_database_covers_all_segments(self, ring):
        database = ring.group_database()
        assert len(database) == len(ring)
        assert all(len(replicas) == 3 for replicas in database.values())

    def test_same_servers_same_ring(self):
        a = ConsistentHashRing(SERVERS, virtual_nodes=8)
        b = ConsistentHashRing(SERVERS, virtual_nodes=8)
        for key in range(100):
            assert a.group_for_key(key) == b.group_for_key(key)

    def test_keys_spread_over_servers(self, ring):
        hits = {s: 0 for s in SERVERS}
        for key in range(3000):
            _, replicas = ring.group_for_key(key)
            hits[replicas[0]] += 1
        # Every server should be primary for a non-trivial share.
        assert all(count > 0 for count in hits.values())

    def test_ownership_counts_sum_to_ring_size(self, ring):
        counts = ring.ownership_counts()
        assert sum(counts.values()) == len(ring)

    def test_removal_stability(self):
        """Removing one server relocates only its own keys (consistency)."""
        full = ConsistentHashRing(SERVERS, replication_factor=1, virtual_nodes=32)
        reduced = ConsistentHashRing(
            SERVERS[:-1], replication_factor=1, virtual_nodes=32
        )
        moved = 0
        total = 2000
        for key in range(total):
            _, old = full.group_for_key(key)
            _, new = reduced.group_for_key(key)
            if old[0] != new[0]:
                moved += 1
                assert old[0] == SERVERS[-1]  # only departed server's keys move
        assert 0 < moved < total * 0.35


class TestStableHash:
    def test_stable_values(self):
        assert stable_hash("x") == stable_hash("x")

    def test_spread(self):
        values = {stable_hash(str(i)) for i in range(1000)}
        assert len(values) == 1000
