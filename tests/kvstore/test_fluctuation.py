"""Tests for the bimodal server-performance fluctuation model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kvstore.fluctuation import BimodalFluctuation, StableService
from repro.sim import Environment


def _model(seed=0, base=4e-3, d=3.0, interval=50e-3):
    return BimodalFluctuation(
        base_service_time=base,
        range_parameter=d,
        interval=interval,
        rng=np.random.default_rng(seed),
    )


class TestValidation:
    def test_base_positive(self):
        with pytest.raises(ConfigurationError):
            _model(base=0.0)

    def test_range_at_least_one(self):
        with pytest.raises(ConfigurationError):
            _model(d=0.5)

    def test_interval_positive(self):
        with pytest.raises(ConfigurationError):
            _model(interval=0.0)

    def test_stable_service_validation(self):
        with pytest.raises(ConfigurationError):
            StableService(0.0)


class TestBimodal:
    def test_mean_is_one_of_two_modes(self):
        env = Environment()
        model = _model()
        model.start(env)
        seen = set()
        for _ in range(60):
            env.run(until=env.now + 50e-3)
            seen.add(round(model.current_mean, 9))
        assert seen == {round(4e-3, 9), round(4e-3 / 3, 9)}

    def test_redraw_count_matches_intervals(self):
        env = Environment()
        model = _model()
        model.start(env)
        env.run(until=1.0)
        # 50 ms interval over 1 s -> 19-20 redraws depending on boundary.
        assert 18 <= model.redraws <= 20

    def test_modes_roughly_equiprobable(self):
        env = Environment()
        model = _model(seed=7)
        model.start(env)
        fast = 0
        n = 400
        for _ in range(n):
            env.run(until=env.now + 50e-3)
            if model.current_mean < 4e-3:
                fast += 1
        assert 0.4 < fast / n < 0.6

    def test_expected_mean(self):
        model = _model()
        assert model.expected_mean() == pytest.approx(
            0.5 * (4e-3 + 4e-3 / 3)
        )

    def test_utilization_factor_matches_paper(self):
        """The paper's 2/(1+d) with d=3 gives 0.5 (90% nominal -> 45%)."""
        model = _model(d=3.0)
        assert model.expected_rate_utilization_factor() == pytest.approx(0.5)

    def test_deterministic_for_seed(self):
        def trajectory(seed):
            env = Environment()
            model = _model(seed=seed)
            model.start(env)
            values = []
            for _ in range(20):
                env.run(until=env.now + 50e-3)
                values.append(model.current_mean)
            return values

        assert trajectory(3) == trajectory(3)
        assert trajectory(3) != trajectory(4)


class TestStableService:
    def test_constant_mean(self):
        env = Environment()
        model = StableService(2e-3)
        model.start(env)
        env.run(until=1.0)
        assert model.current_mean == 2e-3
        assert model.expected_mean() == 2e-3
