"""Tests for Zipf sampling, demand skew and the open-loop workload."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kvstore.workload import (
    DemandWeights,
    OpenLoopWorkload,
    ZipfSampler,
)
from repro.sim import Environment


class TestZipfSampler:
    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            ZipfSampler(0, 1.0, rng)
        with pytest.raises(ConfigurationError):
            ZipfSampler(10, 0.0, rng)

    def test_samples_in_range(self):
        sampler = ZipfSampler(100, 0.99, np.random.default_rng(1))
        for _ in range(2000):
            assert 1 <= sampler.sample() <= 100

    def test_single_element_space(self):
        sampler = ZipfSampler(1, 0.99, np.random.default_rng(1))
        assert all(sampler.sample() == 1 for _ in range(50))

    def test_matches_exact_distribution(self):
        """Empirical frequencies track k^-s for a small key space."""
        n, s = 20, 0.99
        sampler = ZipfSampler(n, s, np.random.default_rng(2))
        draws = 200_000
        counts = np.zeros(n + 1)
        for _ in range(draws):
            counts[sampler.sample()] += 1
        weights = np.array([0.0] + [k**-s for k in range(1, n + 1)])
        expected = weights / weights.sum() * draws
        for k in range(1, n + 1):
            assert counts[k] == pytest.approx(expected[k], rel=0.1)

    def test_skewness_increases_with_s(self):
        rng = np.random.default_rng(3)
        mild = ZipfSampler(1000, 0.5, rng)
        steep = ZipfSampler(1000, 1.5, np.random.default_rng(4))
        top_mild = sum(1 for _ in range(20000) if mild.sample() <= 10)
        top_steep = sum(1 for _ in range(20000) if steep.sample() <= 10)
        assert top_steep > top_mild

    def test_large_key_space_constant_time(self):
        """The paper's 100M-key space must not need a table."""
        sampler = ZipfSampler(100_000_000, 0.99, np.random.default_rng(5))
        samples = [sampler.sample() for _ in range(1000)]
        assert max(samples) <= 100_000_000
        assert min(samples) >= 1

    def test_deterministic_for_seed(self):
        a = ZipfSampler(1000, 0.99, np.random.default_rng(9))
        b = ZipfSampler(1000, 0.99, np.random.default_rng(9))
        assert [a.sample() for _ in range(100)] == [b.sample() for _ in range(100)]


class TestDemandWeights:
    def test_uniform_by_default(self):
        weights = DemandWeights(10)
        assert np.allclose(weights.probabilities, 0.1)
        assert weights.hot_clients == []

    def test_skew_requires_rng(self):
        with pytest.raises(ConfigurationError):
            DemandWeights(10, skew=0.8)

    def test_skew_bounds(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            DemandWeights(10, skew=1.0, rng=rng)
        with pytest.raises(ConfigurationError):
            DemandWeights(10, skew=0.0, rng=rng)

    def test_hot_clients_get_skew_mass(self):
        weights = DemandWeights(10, skew=0.8, rng=np.random.default_rng(1))
        assert len(weights.hot_clients) == 2
        hot_mass = sum(weights.probabilities[i] for i in weights.hot_clients)
        assert hot_mass == pytest.approx(0.8)
        assert weights.probabilities.sum() == pytest.approx(1.0)

    def test_sampling_respects_weights(self):
        weights = DemandWeights(10, skew=0.9, rng=np.random.default_rng(2))
        rng = np.random.default_rng(3)
        counts = [0] * 10
        n = 50_000
        for _ in range(n):
            counts[weights.sample(rng)] += 1
        achieved = weights.achieved_skew(counts)
        assert achieved == pytest.approx(0.9, abs=0.02)

    def test_hot_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            DemandWeights(
                10, skew=0.8, hot_fraction=1.0, rng=np.random.default_rng(0)
            )

    def test_single_client_uniform(self):
        weights = DemandWeights(1)
        assert weights.probabilities.tolist() == [1.0]


class CountingClient:
    def __init__(self):
        self.keys = []
        self.recorded = 0

    def issue(self, key, record):
        self.keys.append(key)
        if record:
            self.recorded += 1


def _workload(env, clients, rate=1000.0, total=100, warmup=0, **kwargs):
    return OpenLoopWorkload(
        env,
        rate=rate,
        clients=clients,
        weights=kwargs.pop("weights", DemandWeights(len(clients))),
        key_sampler=ZipfSampler(1000, 0.99, np.random.default_rng(5)),
        rng=np.random.default_rng(6),
        total_requests=total,
        warmup_requests=warmup,
        **kwargs,
    )


class TestOpenLoopWorkload:
    def test_issues_exactly_total(self):
        env = Environment()
        clients = [CountingClient() for _ in range(4)]
        workload = _workload(env, clients, total=250)
        workload.start()
        env.run()
        assert sum(len(c.keys) for c in clients) == 250
        assert workload.issued == 250

    def test_warmup_flag(self):
        env = Environment()
        clients = [CountingClient()]
        workload = _workload(env, clients, total=100, warmup=30)
        workload.start()
        env.run()
        assert clients[0].recorded == 70

    def test_rate_approximates_poisson(self):
        env = Environment()
        clients = [CountingClient()]
        workload = _workload(env, clients, rate=10_000.0, total=5000)
        workload.start()
        env.run()
        assert env.now == pytest.approx(0.5, rel=0.15)

    def test_on_finished_callback(self):
        env = Environment()
        clients = [CountingClient()]
        done = []
        workload = _workload(env, clients, total=10, on_finished=lambda: done.append(env.now))
        workload.start()
        env.run()
        assert len(done) == 1

    def test_validation(self):
        env = Environment()
        clients = [CountingClient()]
        with pytest.raises(ConfigurationError):
            _workload(env, clients, rate=0.0)
        with pytest.raises(ConfigurationError):
            _workload(env, clients, total=0)
        with pytest.raises(ConfigurationError):
            _workload(env, clients, total=10, warmup=10)

    def test_weights_must_match_clients(self):
        env = Environment()
        clients = [CountingClient(), CountingClient()]
        with pytest.raises(ConfigurationError):
            _workload(env, clients, weights=DemandWeights(3))

    def test_per_client_counts(self):
        env = Environment()
        clients = [CountingClient() for _ in range(3)]
        workload = _workload(env, clients, total=300)
        workload.start()
        env.run()
        assert sum(workload.per_client_counts) == 300
        assert workload.per_client_counts == [len(c.keys) for c in clients]


class ClosedLoopClient:
    """Client double that completes each request after a fixed delay."""

    def __init__(self, env, delay):
        self.env = env
        self.delay = delay
        self.keys = []
        self.recorded = 0
        self.on_complete = None

    def issue(self, key, record):
        self.keys.append(key)
        if record:
            self.recorded += 1
        self.env.call_in(self.delay, self._finish)

    def _finish(self):
        if self.on_complete is not None:
            self.on_complete(self)


class TestClosedLoopWorkload:
    def _workload(self, env, clients, total=50, **kwargs):
        from repro.kvstore.workload import ClosedLoopWorkload

        return ClosedLoopWorkload(
            env,
            clients=clients,
            key_sampler=ZipfSampler(100, 0.99, np.random.default_rng(1)),
            rng=np.random.default_rng(2),
            total_requests=total,
            **kwargs,
        )

    def test_issues_exactly_total(self):
        env = Environment()
        clients = [ClosedLoopClient(env, 1e-3) for _ in range(4)]
        workload = self._workload(env, clients, total=50)
        workload.start()
        env.run()
        assert workload.issued == 50
        assert sum(len(c.keys) for c in clients) == 50

    def test_window_bounds_outstanding(self):
        env = Environment()
        clients = [ClosedLoopClient(env, 1e-3)]
        workload = self._workload(env, clients, total=20, window=3)
        workload.start()
        # Before any completion, exactly `window` requests are outstanding.
        assert len(clients[0].keys) == 3
        env.run()
        assert len(clients[0].keys) == 20

    def test_think_time_slows_issue_rate(self):
        env = Environment()
        clients = [ClosedLoopClient(env, 1e-3)]
        fast = self._workload(env, clients, total=30)
        fast.start()
        env.run()
        fast_duration = env.now

        env2 = Environment()
        clients2 = [ClosedLoopClient(env2, 1e-3)]
        slow = self._workload(env2, clients2, total=30, think_time=5e-3)
        slow.start()
        env2.run()
        assert env2.now > fast_duration

    def test_load_self_regulates(self):
        """Slower clients finish later, but the same total is issued."""
        env = Environment()
        clients = [ClosedLoopClient(env, 10e-3) for _ in range(2)]
        workload = self._workload(env, clients, total=20)
        workload.start()
        env.run()
        assert workload.issued == 20
        assert env.now == pytest.approx(10e-3 * 10, rel=0.01)

    def test_warmup_flag(self):
        env = Environment()
        clients = [ClosedLoopClient(env, 1e-3)]
        workload = self._workload(env, clients, total=30, warmup_requests=10)
        workload.start()
        env.run()
        assert clients[0].recorded == 20

    def test_on_finished(self):
        env = Environment()
        clients = [ClosedLoopClient(env, 1e-3)]
        done = []
        workload = self._workload(
            env, clients, total=10, on_finished=lambda: done.append(env.now)
        )
        workload.start()
        env.run()
        assert len(done) == 1

    def test_validation(self):
        env = Environment()
        clients = [ClosedLoopClient(env, 1e-3)]
        with pytest.raises(ConfigurationError):
            self._workload(env, clients, total=0)
        with pytest.raises(ConfigurationError):
            self._workload(env, clients, window=0)
        with pytest.raises(ConfigurationError):
            self._workload(env, clients, think_time=-1.0)
        with pytest.raises(ConfigurationError):
            self._workload(env, [], total=5)
