"""Tests for the network accelerator model."""

import pytest

from repro.network.accelerator import Accelerator
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def _make(env, cores=1, service=5e-6, link=1.25e-6):
    return Accelerator(
        env, "acc", cores=cores, service_time=service, link_delay=link
    )


class TestValidation:
    def test_cores_positive(self, env):
        with pytest.raises(ValueError):
            _make(env, cores=0)

    def test_service_time_positive(self, env):
        with pytest.raises(ValueError):
            _make(env, service=0.0)

    def test_link_delay_non_negative(self, env):
        with pytest.raises(ValueError):
            _make(env, link=-1e-9)


class TestProcessing:
    def test_single_packet_timing(self, env):
        acc = _make(env)
        done = []
        acc.submit("p", work=lambda p: p, done=lambda p: done.append(env.now))
        env.run()
        # link + service + link = 1.25 + 5 + 1.25 us
        assert done == [pytest.approx(7.5e-6)]

    def test_work_transforms_packet(self, env):
        acc = _make(env)
        results = []
        acc.submit(1, work=lambda p: p + 10, done=results.append)
        env.run()
        assert results == [11]

    def test_absorbing_work_skips_done(self, env):
        acc = _make(env)
        results = []
        acc.submit(1, work=lambda p: None, done=results.append)
        env.run()
        assert results == []
        assert acc.processed == 1

    def test_fifo_queueing_single_core(self, env):
        acc = _make(env)
        finish_times = []
        for i in range(3):
            acc.submit(i, work=lambda p: p, done=lambda p: finish_times.append(env.now))
        env.run()
        # Arrivals at 1.25us; service completions at 6.25, 11.25, 16.25 (+link).
        assert finish_times == [
            pytest.approx(7.5e-6),
            pytest.approx(12.5e-6),
            pytest.approx(17.5e-6),
        ]

    def test_multicore_parallelism(self, env):
        acc = _make(env, cores=2)
        finish_times = []
        for i in range(2):
            acc.submit(i, work=lambda p: p, done=lambda p: finish_times.append(env.now))
        env.run()
        assert finish_times == [pytest.approx(7.5e-6), pytest.approx(7.5e-6)]

    def test_queue_length_peak_tracked(self, env):
        acc = _make(env)
        for i in range(5):
            acc.submit(i, work=lambda p: p)
        env.run()
        assert acc.max_queue_seen == 4
        assert acc.queue_length == 0

    def test_processed_counter(self, env):
        acc = _make(env)
        for i in range(4):
            acc.submit(i, work=lambda p: p)
        env.run()
        assert acc.processed == 4


class TestUtilization:
    def test_capacity(self, env):
        acc = _make(env, cores=2, service=5e-6)
        assert acc.capacity == pytest.approx(400_000.0)

    def test_utilization_fraction(self, env):
        acc = _make(env)
        acc.submit(1, work=lambda p: p)
        env.run()
        env.call_in(2.5e-6 + 5e-6, lambda: None)  # extend the clock window
        env.run()
        util = acc.utilization()
        assert 0 < util <= 1

    def test_reset_utilization(self, env):
        acc = _make(env)
        acc.submit(1, work=lambda p: p)
        env.run()
        acc.reset_utilization()
        assert acc.utilization() == 0.0

    def test_idle_utilization_zero(self, env):
        acc = _make(env)
        env.call_in(1.0, lambda: None)
        env.run()
        assert acc.utilization() == 0.0
