"""Tests for the Network fabric and Host glue."""

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.network.fabric import Network
from repro.network.fattree import build_fat_tree
from repro.network.host import Host
from repro.network.packet import make_request
from repro.sim import Environment


class Sink:
    def __init__(self):
        self.packets = []

    def receive(self, packet, from_name):
        self.packets.append((packet, from_name))

    def handle_packet(self, packet):
        self.packets.append(packet)


@pytest.fixture
def net():
    env = Environment()
    topo = build_fat_tree(4)
    return env, topo, Network(env, topo)


def _plain(dst="host0.0.1"):
    return make_request(
        client="host0.0.0",
        request_id=1,
        key=1,
        rgid=1,
        backup_replica=dst,
        issued_at=0.0,
        netrs=False,
        dst=dst,
    )


class TestNetwork:
    def test_negative_latency_rejected(self, net):
        env, topo, _ = net
        with pytest.raises(ValueError):
            Network(env, topo, switch_link_latency=-1.0)

    def test_attach_unknown_node_rejected(self, net):
        _, _, network = net
        with pytest.raises(TopologyError):
            network.attach("ghost", Sink())

    def test_double_attach_rejected(self, net):
        _, _, network = net
        network.attach("core0", Sink())
        with pytest.raises(TopologyError):
            network.attach("core0", Sink())

    def test_device_lookup_missing(self, net):
        _, _, network = net
        with pytest.raises(TopologyError):
            network.device("core0")

    def test_link_latency_host_vs_switch(self, net):
        env, topo, _ = net
        network = Network(
            env, topo, switch_link_latency=30e-6, host_link_latency=10e-6
        )
        assert network.link_latency("tor0.0", "agg0.0") == 30e-6
        assert network.link_latency("host0.0.0", "tor0.0") == 10e-6

    def test_transmit_delivers_after_latency(self, net):
        env, _, network = net
        sink = Sink()
        network.attach("tor0.0", sink)
        network.transmit("host0.0.0", "tor0.0", _plain())
        env.run()
        assert env.now == pytest.approx(30e-6)
        assert len(sink.packets) == 1
        assert sink.packets[0][1] == "host0.0.0"

    def test_accounting(self, net):
        env, _, network = net
        network.attach("tor0.0", Sink())
        packet = _plain()
        network.transmit("host0.0.0", "tor0.0", packet)
        env.run()
        assert network.transmissions == 1
        assert network.bytes_transferred == packet.wire_size()


class TestHost:
    def test_host_requires_endpoint_for_delivery(self, net):
        env, _, network = net
        host = Host("host0.0.0", network)
        network.transmit("tor0.0", "host0.0.0", _plain("host0.0.0"))
        with pytest.raises(ConfigurationError):
            env.run()

    def test_single_role_per_host(self, net):
        _, _, network = net
        host = Host("host0.0.0", network)
        host.bind(Sink())
        with pytest.raises(ConfigurationError):
            host.bind(Sink())

    def test_send_goes_via_tor(self, net):
        env, _, network = net
        host = Host("host0.0.0", network)
        host.bind(Sink())
        tor_sink = Sink()
        network.attach("tor0.0", tor_sink)
        host.send(_plain())
        env.run()
        assert len(tor_sink.packets) == 1
        assert host.packets_sent == 1

    def test_receive_counts(self, net):
        env, _, network = net
        host = Host("host0.0.0", network)
        sink = Sink()
        host.bind(sink)
        network.transmit("tor0.0", "host0.0.0", _plain("host0.0.0"))
        env.run()
        assert host.packets_received == 1
        assert len(sink.packets) == 1


class TestBandwidthModel:
    def test_bandwidth_validation(self, net):
        env, topo, _ = net
        with pytest.raises(ValueError):
            Network(env, topo, link_bandwidth=0.0)

    def test_serialization_adds_transmission_time(self, net):
        env, topo, _ = net
        network = Network(
            env, topo, switch_link_latency=30e-6, link_bandwidth=10e9
        )
        sink = Sink()
        network.attach("tor0.0", sink)
        packet = _plain()
        network.transmit("host0.0.0", "tor0.0", packet)
        env.run()
        expected = 30e-6 + packet.wire_size() * 8 / 10e9
        assert env.now == pytest.approx(expected)

    def test_packets_queue_behind_each_other(self, net):
        env, topo, _ = net
        # 1 Mbit/s: a ~1 KB packet takes ~8 ms to serialize.
        network = Network(
            env,
            topo,
            switch_link_latency=0.0,
            host_link_latency=0.0,
            link_bandwidth=1e6,
        )
        sink = Sink()
        network.attach("tor0.0", sink)
        first, second = _plain(), _plain()
        network.transmit("host0.0.0", "tor0.0", first)
        network.transmit("host0.0.0", "tor0.0", second)
        env.run()
        tx = first.wire_size() * 8 / 1e6
        assert len(sink.packets) == 2
        assert env.now == pytest.approx(2 * tx)
        assert network.max_link_backlog == pytest.approx(tx)
        assert network.serialization_delay_total == pytest.approx(3 * tx)

    def test_opposite_directions_do_not_contend(self, net):
        env, topo, _ = net
        network = Network(
            env,
            topo,
            switch_link_latency=0.0,
            host_link_latency=0.0,
            link_bandwidth=1e6,
        )
        up, down = Sink(), Sink()
        network.attach("tor0.0", up)
        network.attach("host0.0.0", down)
        network.transmit("host0.0.0", "tor0.0", _plain())
        network.transmit("tor0.0", "host0.0.0", _plain("host0.0.0"))
        env.run()
        tx = _plain().wire_size() * 8 / 1e6
        assert env.now == pytest.approx(tx)

    def test_default_has_no_serialization(self, net):
        env, _, network = net
        network.attach("tor0.0", Sink())
        network.transmit("host0.0.0", "tor0.0", _plain())
        env.run()
        assert network.serialization_delay_total == 0.0


class TestLinkAccounting:
    def test_off_by_default(self, net):
        _, _, network = net
        with pytest.raises(TopologyError):
            network.top_links()

    def test_counts_per_directed_link(self, net):
        env, topo, _ = net
        network = Network(env, topo, track_links=True)
        network.attach("tor0.0", Sink())
        network.attach("host0.0.0", Sink())
        packet = _plain()
        network.transmit("host0.0.0", "tor0.0", packet)
        network.transmit("host0.0.0", "tor0.0", packet.clone())
        network.transmit("tor0.0", "host0.0.0", packet.clone())
        env.run()
        assert network.link_packets[("host0.0.0", "tor0.0")] == 2
        assert network.link_packets[("tor0.0", "host0.0.0")] == 1
        top = network.top_links(1)
        assert top[0][0] == ("host0.0.0", "tor0.0")
        assert top[0][1] == 2 * packet.wire_size()

    def test_experiment_level_hotspots(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import run_experiment

        config = ExperimentConfig.tiny(
            scheme="netrs-ilp", seed=1, track_link_stats=True
        )
        result = run_experiment(config, keep_scenario=True)
        network = result.scenario.network
        top = network.top_links(5)
        assert len(top) == 5
        assert sum(network.link_bytes.values()) == network.bytes_transferred
