"""Tests for the NetRS packet format and magic-field transform."""

import pytest

from repro.errors import ProtocolError
from repro.network.addressing import SourceMarker
from repro.network.packet import (
    MAGIC_MONITOR,
    MAGIC_PLAIN,
    MAGIC_REQUEST,
    MAGIC_RESPONSE,
    Packet,
    ServerStatus,
    magic_transform,
    magic_untransform,
    make_request,
    make_response,
)


class TestMagicTransform:
    def test_transform_is_invertible(self):
        for magic in (MAGIC_REQUEST, MAGIC_RESPONSE, MAGIC_MONITOR):
            assert magic_untransform(magic_transform(magic)) == magic

    def test_transformed_values_are_distinct(self):
        """f(M_resp) must differ from M_req and M_resp (paper section IV-C)."""
        transformed = magic_transform(MAGIC_RESPONSE)
        assert transformed != MAGIC_REQUEST
        assert transformed != MAGIC_RESPONSE
        assert transformed != MAGIC_MONITOR

    def test_all_magics_distinct(self):
        values = {
            MAGIC_PLAIN,
            MAGIC_REQUEST,
            MAGIC_RESPONSE,
            MAGIC_MONITOR,
            magic_transform(MAGIC_REQUEST),
            magic_transform(MAGIC_RESPONSE),
            magic_transform(MAGIC_MONITOR),
        }
        assert len(values) == 7


class TestMakeRequest:
    def test_netrs_request_has_no_destination(self):
        packet = make_request(
            client="host0.0.0",
            request_id=1,
            key=42,
            rgid=7,
            backup_replica="host1.0.0",
            issued_at=0.0,
            netrs=True,
        )
        assert packet.dst is None
        assert packet.magic == MAGIC_REQUEST
        assert packet.rgid == 7
        assert packet.is_request

    def test_netrs_request_with_dst_rejected(self):
        with pytest.raises(ProtocolError):
            make_request(
                client="c",
                request_id=1,
                key=1,
                rgid=1,
                backup_replica="b",
                issued_at=0.0,
                netrs=True,
                dst="server",
            )

    def test_plain_request_requires_dst(self):
        with pytest.raises(ProtocolError):
            make_request(
                client="c",
                request_id=1,
                key=1,
                rgid=1,
                backup_replica="b",
                issued_at=0.0,
                netrs=False,
            )

    def test_plain_request_is_plain(self):
        packet = make_request(
            client="c",
            request_id=1,
            key=1,
            rgid=3,
            backup_replica="s",
            issued_at=0.0,
            netrs=False,
            dst="s",
        )
        assert packet.magic == MAGIC_PLAIN
        assert packet.rgid == -1  # plain packets carry no NetRS RGID
        assert packet.server == "s"


def _request(netrs=True, magic=None):
    packet = make_request(
        client="host0.0.0",
        request_id=9,
        key=5,
        rgid=2 if netrs else 1,
        backup_replica="host1.1.1",
        issued_at=1.5,
        netrs=netrs,
        dst=None if netrs else "host2.0.0",
    )
    if magic is not None:
        packet.magic = magic
    return packet


class TestMakeResponse:
    def test_magic_round_trip_via_selector(self):
        """Request rebuilt by a selector yields a NetRS response."""
        request = _request(magic=magic_transform(MAGIC_RESPONSE))
        request.rsnode_id = 3
        request.retaining_value = 1.25
        status = ServerStatus(queue_size=2, service_rate=1000.0, timestamp=2.0)
        response = make_response(request, server="host2.0.0", status=status)
        assert response.magic == MAGIC_RESPONSE
        assert response.rsnode_id == 3
        assert response.retaining_value == 1.25
        assert response.dst == "host0.0.0"
        assert not response.is_request

    def test_drs_request_yields_monitor_response(self):
        request = _request(magic=magic_transform(MAGIC_MONITOR))
        status = ServerStatus(queue_size=0, service_rate=1.0, timestamp=0.0)
        response = make_response(request, server="s", status=status)
        assert response.magic == MAGIC_MONITOR

    def test_plain_request_yields_plain_response(self):
        request = _request(netrs=False)
        status = ServerStatus(queue_size=0, service_rate=1.0, timestamp=0.0)
        response = make_response(request, server="host2.0.0", status=status)
        assert response.magic == MAGIC_PLAIN

    def test_response_echoes_request_identity(self):
        request = _request(netrs=False)
        status = ServerStatus(queue_size=1, service_rate=2.0, timestamp=0.0)
        response = make_response(request, server="host2.0.0", status=status)
        assert response.request_id == request.request_id
        assert response.key == request.key
        assert response.issued_at == request.issued_at


class TestWireSize:
    def test_plain_packet_smaller_than_netrs(self):
        plain = _request(netrs=False)
        netrs = _request(netrs=True)
        assert plain.wire_size() < netrs.wire_size()

    def test_netrs_header_overhead_is_small(self):
        """Protocol overhead must stay in the tens of bytes (design goal)."""
        plain = _request(netrs=False)
        netrs = _request(netrs=True)
        assert netrs.wire_size() - plain.wire_size() <= 16

    def test_response_includes_status_and_payload(self):
        request = _request(netrs=False)
        status = ServerStatus(queue_size=1, service_rate=2.0, timestamp=0.0)
        response = make_response(
            request, server="s", status=status, value_size=1024
        )
        assert response.wire_size() > 1024

    def test_source_marker_adds_bytes(self):
        request = _request(netrs=True)
        before = request.wire_size()
        request.source_marker = SourceMarker(pod=0, rack=0)
        assert request.wire_size() == before + 4


class TestClone:
    def test_clone_is_independent(self):
        packet = _request()
        packet.route = ["a", "b"]
        packet.route_pos = 1
        duplicate = packet.clone()
        duplicate.route.append("c")
        duplicate.rsnode_id = 99
        assert packet.route == ["a", "b"]
        assert packet.rsnode_id != 99

    def test_clone_copies_fields(self):
        packet = _request()
        packet.hops = 5
        packet.retaining_value = 2.5
        duplicate = packet.clone()
        assert duplicate.hops == 5
        assert duplicate.retaining_value == 2.5
        assert duplicate.request_id == packet.request_id


class TestFlowKey:
    def test_flow_key_deterministic(self):
        assert _request().flow_key() == _request().flow_key()

    def test_flow_key_varies_with_request_id(self):
        a = _request()
        b = _request()
        b.request_id = a.request_id + 1
        assert a.flow_key() != b.flow_key()

    def test_salt_changes_key(self):
        packet = _request()
        assert packet.flow_key() != packet.flow_key(salt="x")
