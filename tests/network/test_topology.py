"""Tests for the generic tree topology."""

import pytest

from repro.errors import TopologyError
from repro.network.topology import Node, NodeKind, Topology, build_tree, iter_rack_ids


@pytest.fixture
def small_tree():
    return build_tree(
        pods=2, racks_per_pod=2, hosts_per_rack=3, aggs_per_pod=2, cores=4
    )


class TestBuildTree:
    def test_element_counts(self, small_tree):
        assert len(small_tree.by_kind(NodeKind.CORE)) == 4
        assert len(small_tree.by_kind(NodeKind.AGG)) == 4
        assert len(small_tree.by_kind(NodeKind.TOR)) == 4
        assert len(small_tree.hosts) == 12
        assert len(small_tree.switches) == 12

    def test_validates(self, small_tree):
        small_tree.validate()

    def test_dimension_validation(self):
        with pytest.raises(TopologyError):
            build_tree(
                pods=0, racks_per_pod=1, hosts_per_rack=1, aggs_per_pod=1, cores=1
            )

    def test_core_links_bounds(self):
        with pytest.raises(TopologyError):
            build_tree(
                pods=1,
                racks_per_pod=1,
                hosts_per_rack=1,
                aggs_per_pod=1,
                cores=2,
                core_links_per_agg=3,
            )

    def test_every_host_has_one_tor(self, small_tree):
        for host in small_tree.hosts:
            tor = small_tree.tor_of(host.name)
            assert tor.kind is NodeKind.TOR
            assert tor.pod == host.pod and tor.rack == host.rack

    def test_tor_connects_to_all_pod_aggs(self, small_tree):
        for tor in small_tree.by_kind(NodeKind.TOR):
            uplinks = small_tree.uplinks(tor.name)
            assert sorted(uplinks) == sorted(
                a.name for a in small_tree.aggs_in_pod(tor.pod)
            )

    def test_partial_core_wiring(self):
        topo = build_tree(
            pods=2,
            racks_per_pod=1,
            hosts_per_rack=1,
            aggs_per_pod=2,
            cores=4,
            core_links_per_agg=2,
        )
        for agg in topo.by_kind(NodeKind.AGG):
            assert len(topo.uplinks(agg.name)) == 2


class TestTopologyQueries:
    def test_unknown_node_raises(self, small_tree):
        with pytest.raises(TopologyError):
            small_tree.node("nonexistent")

    def test_duplicate_node_raises(self, small_tree):
        with pytest.raises(TopologyError):
            small_tree.add_node(Node(name="core0", kind=NodeKind.CORE))

    def test_duplicate_link_raises(self, small_tree):
        with pytest.raises(TopologyError):
            small_tree.add_link("host0.0.0", "tor0.0")

    def test_link_unknown_node_raises(self, small_tree):
        with pytest.raises(TopologyError):
            small_tree.add_link("core0", "ghost")

    def test_tor_of_non_host_raises(self, small_tree):
        with pytest.raises(TopologyError):
            small_tree.tor_of("core0")

    def test_hosts_under(self, small_tree):
        hosts = small_tree.hosts_under("tor1.0")
        assert len(hosts) == 3
        assert all(h.pod == 1 and h.rack == 0 for h in hosts)

    def test_hosts_under_non_tor_raises(self, small_tree):
        with pytest.raises(TopologyError):
            small_tree.hosts_under("agg0.0")

    def test_tiers(self, small_tree):
        assert small_tree.node("core0").tier == 0
        assert small_tree.node("agg0.0").tier == 1
        assert small_tree.node("tor0.0").tier == 2
        assert small_tree.node("host0.0.0").tier == 3

    def test_downlinks(self, small_tree):
        downs = small_tree.downlinks("agg0.0")
        assert sorted(downs) == ["tor0.0", "tor0.1"]

    def test_location_of_host(self, small_tree):
        location = small_tree.node("host1.0.2").location()
        assert (location.pod, location.rack, location.index) == (1, 0, 2)

    def test_location_of_switch_raises(self, small_tree):
        with pytest.raises(TopologyError):
            small_tree.node("tor0.0").location()

    def test_iter_rack_ids(self, small_tree):
        assert sorted(iter_rack_ids(small_tree)) == [
            (0, 0),
            (0, 1),
            (1, 0),
            (1, 1),
        ]


class TestValidation:
    def test_tier_skipping_link_detected(self):
        topo = Topology()
        topo.add_node(Node(name="c", kind=NodeKind.CORE))
        topo.add_node(Node(name="t", kind=NodeKind.TOR, pod=0, rack=0))
        topo.add_link("c", "t")
        with pytest.raises(TopologyError):
            topo.validate()

    def test_orphan_host_detected(self):
        topo = Topology()
        topo.add_node(Node(name="h", kind=NodeKind.HOST, pod=0, rack=0))
        with pytest.raises(TopologyError):
            topo.validate()
