"""Tests for deterministic ECMP routing, including waypoint steering."""

import pytest

from repro.errors import RoutingError
from repro.network.fattree import build_fat_tree
from repro.network.routing import Router
from repro.network.topology import NodeKind


@pytest.fixture(scope="module")
def topo():
    return build_fat_tree(4)


@pytest.fixture(scope="module")
def router(topo):
    return Router(topo)


def _assert_valid_path(topo, src, path, dst):
    """Every consecutive pair must be a real link; path ends at dst."""
    previous = src
    for node in path:
        assert node in topo.neighbors(previous), f"{previous} -/-> {node}"
        previous = node
    assert path[-1] == dst


class TestHostToHost:
    def test_same_rack(self, topo, router):
        path = router.path("host0.0.0", "host0.0.1", flow_key=7)
        assert path == ["tor0.0", "host0.0.1"]

    def test_same_pod_other_rack(self, topo, router):
        path = router.path("host0.0.0", "host0.1.0", flow_key=7)
        _assert_valid_path(topo, "host0.0.0", path, "host0.1.0")
        assert len(path) == 4  # tor, agg, tor, host
        assert topo.node(path[1]).kind is NodeKind.AGG

    def test_cross_pod(self, topo, router):
        path = router.path("host0.0.0", "host3.1.1", flow_key=7)
        _assert_valid_path(topo, "host0.0.0", path, "host3.1.1")
        assert len(path) == 6  # tor, agg, core, agg, tor, host
        kinds = [topo.node(n).kind for n in path[:-1]]
        assert kinds == [
            NodeKind.TOR,
            NodeKind.AGG,
            NodeKind.CORE,
            NodeKind.AGG,
            NodeKind.TOR,
        ]

    def test_self_path_empty(self, router):
        assert router.path("host0.0.0", "host0.0.0", flow_key=1) == []

    def test_deterministic_per_flow(self, router):
        a = router.path("host0.0.0", "host3.1.1", flow_key=123)
        b = router.path("host0.0.0", "host3.1.1", flow_key=123)
        assert a == b

    def test_ecmp_uses_multiple_paths(self, router):
        paths = {
            tuple(router.path("host0.0.0", "host3.1.1", flow_key=k))
            for k in range(64)
        }
        assert len(paths) > 1

    def test_all_pairs_valid(self, topo, router):
        hosts = [h.name for h in topo.hosts]
        for src in hosts[:4]:
            for dst in hosts:
                if src == dst:
                    continue
                path = router.path(src, dst, flow_key=11)
                _assert_valid_path(topo, src, path, dst)


class TestWaypoints:
    def test_tor_to_own_pod_agg(self, topo, router):
        path = router.path("tor0.0", "agg0.1", flow_key=5)
        assert path == ["agg0.1"]

    def test_tor_to_core(self, topo, router):
        for core in topo.by_kind(NodeKind.CORE):
            path = router.path("tor0.0", core.name, flow_key=5)
            _assert_valid_path(topo, "tor0.0", path, core.name)
            assert len(path) == 2  # agg, core

    def test_tor_to_remote_tor(self, topo, router):
        path = router.path("tor0.0", "tor3.1", flow_key=5)
        _assert_valid_path(topo, "tor0.0", path, "tor3.1")
        assert len(path) == 4  # agg, core, agg, tor

    def test_tor_to_same_pod_tor(self, topo, router):
        path = router.path("tor0.0", "tor0.1", flow_key=5)
        _assert_valid_path(topo, "tor0.0", path, "tor0.1")
        assert len(path) == 2  # agg, tor

    def test_tor_to_cross_pod_agg(self, topo, router):
        """Responses heading to an RSNode aggregation in another pod."""
        path = router.path("tor2.1", "agg0.1", flow_key=9)
        _assert_valid_path(topo, "tor2.1", path, "agg0.1")
        # Must climb via the same-index aggregation switch (shared core group).
        assert len(path) == 3  # agg, core, agg

    def test_agg_to_host_same_pod(self, topo, router):
        path = router.path("agg0.0", "host0.1.1", flow_key=3)
        _assert_valid_path(topo, "agg0.0", path, "host0.1.1")
        assert len(path) == 2  # tor, host

    def test_agg_to_host_cross_pod(self, topo, router):
        path = router.path("agg0.0", "host2.0.0", flow_key=3)
        _assert_valid_path(topo, "agg0.0", path, "host2.0.0")
        assert len(path) == 4  # core, agg, tor, host

    def test_core_to_host(self, topo, router):
        for core in topo.by_kind(NodeKind.CORE):
            path = router.path(core.name, "host1.0.1", flow_key=3)
            _assert_valid_path(topo, core.name, path, "host1.0.1")
            assert len(path) == 3  # agg, tor, host

    def test_core_to_tor(self, topo, router):
        path = router.path("core0", "tor2.0", flow_key=1)
        _assert_valid_path(topo, "core0", path, "tor2.0")

    def test_agg_to_unconnected_core_raises(self, topo, router):
        # agg0.0 connects to core group 0 (core0, core1) in a 4-ary fat-tree.
        connected = set(topo.uplinks("agg0.0"))
        unconnected = next(
            c.name for c in topo.by_kind(NodeKind.CORE) if c.name not in connected
        )
        with pytest.raises(RoutingError):
            router.path("agg0.0", unconnected, flow_key=0)

    def test_agg_to_agg_raises(self, router):
        with pytest.raises(RoutingError):
            router.path("agg0.0", "agg0.1", flow_key=0)

    def test_core_to_core_raises(self, router):
        with pytest.raises(RoutingError):
            router.path("core0", "core1", flow_key=0)


class TestHopCount:
    def test_paper_worked_example(self, router):
        """Intra-rack default path is 1 forwarding; via a core it is 5."""
        assert router.hop_count("host0.0.0", "host0.0.1") == 1
        via_core = router.path("host0.0.0", "core0", flow_key=0) + router.path(
            "core0", "host0.0.1", flow_key=0
        )
        switch_hops = sum(1 for n in via_core if not n.startswith("host"))
        assert switch_hops == 5  # extra hops = 5 - 1 = 4, as in the paper

    def test_same_pod_hop_count(self, router):
        assert router.hop_count("host0.0.0", "host0.1.0") == 3

    def test_cross_pod_hop_count(self, router):
        assert router.hop_count("host0.0.0", "host1.0.0") == 5

    def test_tor_of_cached(self, router):
        assert router.tor_of("host2.1.0") == "tor2.1"


class TestPathCache:
    def test_cached_vs_uncached_identical(self, topo):
        """The memoized router must return bit-identical ECMP paths."""
        cached = Router(topo)
        uncached = Router(topo, path_cache_size=0)
        hosts = [h.name for h in topo.hosts]
        for src in hosts[:6]:
            for dst in hosts[:6]:
                for flow_key in (0, 7, 12345):
                    assert cached.path(src, dst, flow_key) == uncached.path(
                        src, dst, flow_key
                    )
                    assert cached.hop_count(src, dst, flow_key) == uncached.hop_count(
                        src, dst, flow_key
                    )

    def test_repeat_lookup_hits_cache(self, topo):
        router = Router(topo)
        first = router.path("host0.0.0", "host3.1.1", flow_key=9)
        assert router.path("host0.0.0", "host3.1.1", flow_key=9) is first

    def test_lru_bound_respected(self, topo):
        router = Router(topo, path_cache_size=4)
        hosts = [h.name for h in topo.hosts]
        for i, dst in enumerate(hosts[:10]):
            router.path("host0.0.0", dst, flow_key=i)
        assert len(router._path_cache) <= 4

    def test_lru_evicts_oldest_not_recent(self, topo):
        router = Router(topo, path_cache_size=2)
        a = router.path("host0.0.0", "host1.0.0", flow_key=1)
        router.path("host0.0.0", "host2.0.0", flow_key=1)
        # Touch the first entry so it is most recent, then insert a third.
        assert router.path("host0.0.0", "host1.0.0", flow_key=1) is a
        router.path("host0.0.0", "host3.0.0", flow_key=1)
        # The first entry survived the eviction (identity => cache hit).
        assert router.path("host0.0.0", "host1.0.0", flow_key=1) is a

    def test_negative_cache_size_rejected(self, topo):
        with pytest.raises(ValueError):
            Router(topo, path_cache_size=-1)

    def test_flow_key_part_of_cache_key(self, topo):
        """Different flows may take different ECMP paths; the cache must
        never conflate them."""
        router = Router(topo)
        uncached = Router(topo, path_cache_size=0)
        for flow_key in range(64):
            assert router.path("host0.0.0", "host3.1.1", flow_key) == uncached.path(
                "host0.0.0", "host3.1.1", flow_key
            )


class TestInvalidationAndLinkFaults:
    """The dynamic-liveness contract: invalidate, fail_link, reroute."""

    def test_invalidate_drops_crossing_entries(self, topo):
        router = Router(topo)
        path = router.path("host0.0.0", "host3.1.1", flow_key=9)
        crossed_agg = path[1]
        # Cache an unrelated same-rack entry that must survive.
        router.path("host1.0.0", "host1.0.1", flow_key=9)
        before = len(router._path_cache)
        dropped = router.invalidate(crossed_agg)
        assert dropped >= 1
        assert len(router._path_cache) == before - dropped
        remaining = list(router._path_cache.items())
        for (src, dst, _), cached in remaining:
            assert crossed_agg not in (src, dst)
            assert crossed_agg not in cached

    def test_invalidate_by_endpoint_key(self, topo):
        router = Router(topo)
        router.path("tor0.0", "host3.1.1", flow_key=3)
        assert router.invalidate("tor0.0") >= 1
        assert all(
            "tor0.0" not in (key[0], key[1]) for key in router._path_cache
        )

    def test_failed_link_entries_invalidated_not_bypassed(self, topo):
        """The regression this API exists for: entries cached *before* a
        failure must not keep routing packets into the dead link."""
        router = Router(topo)
        # Warm the cache across every flow-key equivalence class.
        for flow_key in range(64):
            router.path("host0.0.0", "host3.1.1", flow_key)
        dead_agg = router.path("host0.0.0", "host3.1.1", 9)[1]
        router.fail_link("tor0.0", dead_agg)
        for flow_key in range(64):
            path = router.path("host0.0.0", "host3.1.1", flow_key)
            _assert_valid_path(topo, "host0.0.0", path, "host3.1.1")
            assert path[1] != dead_agg, f"flow {flow_key} crossed the cut"

    def test_reroute_matches_uncached(self, topo):
        cached = Router(topo)
        uncached = Router(topo, path_cache_size=0)
        for r in (cached, uncached):
            r.fail_link("tor0.0", "agg0.0")
        for flow_key in range(64):
            assert cached.path("host0.0.0", "host3.1.1", flow_key) == uncached.path(
                "host0.0.0", "host3.1.1", flow_key
            )

    def test_restore_returns_to_canonical_paths(self, topo):
        router = Router(topo)
        pristine = Router(topo)
        canonical = {
            k: pristine.path("host0.0.0", "host3.1.1", k) for k in range(64)
        }
        router.fail_link("tor0.0", "agg0.0")
        for k in range(64):
            router.path("host0.0.0", "host3.1.1", k)
        router.restore_link("tor0.0", "agg0.0")
        assert not router._failed_links
        # Detours were flushed; the canonical masked-key universe rebuilds.
        for k in range(64):
            assert router.path("host0.0.0", "host3.1.1", k) == canonical[k]

    def test_no_alternative_heads_into_dead_link(self, topo):
        """A cut access link has no detour: the path still crosses it and
        the fabric (not the router) is responsible for the drop."""
        router = Router(topo)
        router.fail_link("host3.1.1", "tor3.1")
        path = router.path("host0.0.0", "host3.1.1", flow_key=5)
        assert path[-2:] == ["tor3.1", "host3.1.1"]

    def test_intra_pod_avoids_dead_descent_link(self, topo):
        """The intra-pod agg choice checks both edges (climb and descent),
        so a dead agg->ToR link steers every flow through the other agg."""
        router = Router(topo)
        router.fail_link("agg0.0", "tor0.1")
        for flow_key in range(64):
            path = router.path("host0.0.0", "host0.1.0", flow_key)
            _assert_valid_path(topo, "host0.0.0", path, "host0.1.0")
            assert ("agg0.0", "tor0.1") not in zip(path, path[1:])

    def test_singleton_descent_has_no_detour(self, topo):
        """In a 4-ary fat tree each core reaches a pod through exactly one
        aggregation switch, so a dead agg->ToR link on the descent leaves
        flows pinned to that core heading into the cut (the fabric drops
        them) -- the documented local link-state model, not a bug."""
        router = Router(topo)
        router.fail_link("agg3.0", "tor3.1")
        paths = [router.path("host0.0.0", "host3.1.1", k) for k in range(64)]
        via_dead = [p for p in paths if ("agg3.0", "tor3.1") in zip(p, p[1:])]
        via_live = [p for p in paths if p not in via_dead]
        assert via_dead and via_live  # both core classes still chosen

    def test_fault_free_router_unaffected(self, topo):
        """With no failed links the liveness machinery must be inert."""
        plain = Router(topo)
        exercised = Router(topo)
        exercised.fail_link("tor0.0", "agg0.0")
        exercised.restore_link("tor0.0", "agg0.0")
        hosts = [h.name for h in topo.hosts]
        for src in hosts[:4]:
            for dst in hosts[:4]:
                for flow_key in (0, 7, 12345):
                    assert plain.path(src, dst, flow_key) == exercised.path(
                        src, dst, flow_key
                    )
