"""Tests for background cross-traffic and shared-fabric contention."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.network.background import BackgroundTraffic
from repro.network.fabric import Network
from repro.network.fattree import build_fat_tree
from repro.network.host import Host
from repro.network.switch import ProgrammableSwitch
from repro.sim import Environment


def _fabric(link_bandwidth=None):
    env = Environment()
    topo = build_fat_tree(4)
    network = Network(env, topo, link_bandwidth=link_bandwidth)
    for node in topo.switches:
        ProgrammableSwitch(node.name, network)
    hosts = [Host(h.name, network) for h in topo.hosts]
    return env, network, hosts


class TestBackgroundTraffic:
    def test_validation(self):
        env, network, hosts = _fabric()
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            BackgroundTraffic(env, network, hosts[:1], rate=100.0, rng=rng)
        with pytest.raises(ConfigurationError):
            BackgroundTraffic(env, network, hosts[:4], rate=0.0, rng=rng)
        with pytest.raises(ConfigurationError):
            BackgroundTraffic(
                env, network, hosts[:4], rate=10.0, packet_size=0, rng=rng
            )

    def test_packets_delivered_and_measured(self):
        env, network, hosts = _fabric()
        traffic = BackgroundTraffic(
            env,
            network,
            hosts[:6],
            rate=10_000.0,
            rng=np.random.default_rng(1),
            total_packets=200,
        )
        traffic.start()
        env.run()
        assert traffic.sent == 200
        assert len(traffic.latency) == 200
        # Latency per packet is 2-6 hops of 30 us.
        assert 60e-6 <= traffic.latency.mean() <= 12 * 30e-6

    def test_stop_halts_generation(self):
        env, network, hosts = _fabric()
        traffic = BackgroundTraffic(
            env, network, hosts[:4], rate=1000.0, rng=np.random.default_rng(2)
        )
        traffic.start()
        env.run(until=0.05)
        traffic.stop()
        sent_at_stop = traffic.sent
        env.run(until=0.2)
        assert traffic.sent <= sent_at_stop + 1

    def test_src_differs_from_dst(self):
        env, network, hosts = _fabric()
        traffic = BackgroundTraffic(
            env,
            network,
            hosts[:3],
            rate=5000.0,
            rng=np.random.default_rng(3),
            total_packets=100,
        )
        traffic.start()
        env.run()
        # Self-delivery would arrive with ~0 latency; the floor is 2 hops.
        assert min(traffic.latency.samples) >= 59e-6


class TestSharedFabricContention:
    def test_experiment_with_background_completes(self):
        config = ExperimentConfig.tiny(
            seed=1, background_traffic_rate=2_000.0
        )
        result = run_experiment(config, keep_scenario=True)
        assert result.completed_requests == config.total_requests
        assert result.scenario.background.sent > 0
        assert len(result.scenario.background.latency) > 0

    def test_contention_visible_with_bandwidth_model(self):
        """On thin links, background flows queue; on pure-delay links not.

        (At tiny scale background hosts saturate their own access links
        long before they dent the KV paths, so the contention assertion
        is made on the background flow itself.)
        """
        fast = run_experiment(
            ExperimentConfig.tiny(seed=4, background_traffic_rate=30_000.0),
            keep_scenario=True,
        )
        thin = run_experiment(
            ExperimentConfig.tiny(
                seed=4,
                link_bandwidth=50e6,
                background_traffic_rate=30_000.0,
            ),
            keep_scenario=True,
        )
        fast_latency = fast.scenario.background.latency.mean()
        thin_latency = thin.scenario.background.latency.mean()
        assert thin_latency > 10 * fast_latency
        assert thin.scenario.network.max_link_backlog > 0

    def test_background_needs_idle_hosts(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig.tiny(
                fat_tree_k=4,
                n_clients=9,
                n_servers=6,
                background_traffic_rate=100.0,
            )
