"""Tests for the programmable switch's NetRS rules pipeline (paper Fig. 3).

Builds a real 4-ary fat-tree fabric with switches everywhere and scripted
endpoints, then injects packets and observes the pipeline decisions.
"""

import pytest

from repro.errors import ConfigurationError
from repro.network.accelerator import Accelerator
from repro.network.fabric import Network
from repro.network.fattree import build_fat_tree
from repro.network.host import Host
from repro.network.packet import (
    MAGIC_MONITOR,
    MAGIC_PLAIN,
    MAGIC_REQUEST,
    MAGIC_RESPONSE,
    RSNODE_ILLEGAL,
    ServerStatus,
    magic_transform,
    make_request,
    make_response,
)
from repro.network.switch import ProgrammableSwitch
from repro.sim import Environment


class RecordingEndpoint:
    """Endpoint that stores everything delivered to its host."""

    def __init__(self):
        self.received = []

    def handle_packet(self, packet):
        self.received.append(packet)


class ScriptedSelector:
    """Minimal selector double: always picks a fixed server."""

    def __init__(self, env, server):
        self.env = env
        self.server = server
        self.requests = []
        self.responses = []

    def on_request(self, packet):
        self.requests.append(packet)
        packet.dst = self.server
        packet.server = self.server
        packet.retaining_value = self.env.now
        packet.magic = magic_transform(MAGIC_RESPONSE)
        return packet

    def on_response(self, packet):
        self.responses.append(packet)


class RecordingMonitor:
    def __init__(self):
        self.seen = []

    def observe(self, packet):
        self.seen.append(packet)


@pytest.fixture
def fabric():
    """A wired 4-ary fat-tree with accelerated switches and idle hosts."""
    env = Environment()
    topo = build_fat_tree(4)
    network = Network(env, topo)
    switches = {}
    directory = {}
    operator_id = 1
    for node in topo.switches:
        acc = Accelerator(env, f"acc:{node.name}")
        switches[node.name] = ProgrammableSwitch(
            node.name, network, operator_id=operator_id, accelerator=acc
        )
        directory[operator_id] = node.name
        operator_id += 1
    endpoints = {}
    for host in topo.hosts:
        h = Host(host.name, network)
        endpoint = RecordingEndpoint()
        h.bind(endpoint)
        endpoints[host.name] = (h, endpoint)
    for switch in switches.values():
        switch.set_directory(directory)
    return env, topo, network, switches, endpoints, directory


def _netrs_request(client, rgid=0, backup="host1.0.0"):
    return make_request(
        client=client,
        request_id=101,
        key=1,
        rgid=rgid,
        backup_replica=backup,
        issued_at=0.0,
        netrs=True,
    )


class TestPlainForwarding:
    def test_plain_packet_reaches_destination(self, fabric):
        env, topo, network, switches, endpoints, _ = fabric
        host, _ = endpoints["host0.0.0"]
        packet = make_request(
            client="host0.0.0",
            request_id=1,
            key=1,
            rgid=1,
            backup_replica="host3.1.1",
            issued_at=0.0,
            netrs=False,
            dst="host3.1.1",
        )
        host.send(packet)
        env.run()
        _, endpoint = endpoints["host3.1.1"]
        assert len(endpoint.received) == 1
        assert endpoint.received[0].magic == MAGIC_PLAIN

    def test_plain_latency_matches_hops(self, fabric):
        env, topo, network, switches, endpoints, _ = fabric
        host, _ = endpoints["host0.0.0"]
        packet = make_request(
            client="host0.0.0",
            request_id=2,
            key=1,
            rgid=1,
            backup_replica="host0.0.1",
            issued_at=0.0,
            netrs=False,
            dst="host0.0.1",
        )
        host.send(packet)
        env.run()
        # host->tor->host: two 30us links.
        assert env.now == pytest.approx(60e-6)


class TestToRStamping:
    def test_request_gets_rsnode_id(self, fabric):
        env, topo, network, switches, endpoints, directory = fabric
        tor = switches["tor0.0"]
        target_op = switches["core0"].operator_id
        tor.install_group_rule("host0.0.0", 5)
        tor.install_rsnode_rule(5, target_op)
        switches["core0"].bind_operator(
            ScriptedSelector(env, "host2.0.0"), directory
        )
        host, _ = endpoints["host0.0.0"]
        host.send(_netrs_request("host0.0.0"))
        env.run()
        _, server_endpoint = endpoints["host2.0.0"]
        assert len(server_endpoint.received) == 1
        delivered = server_endpoint.received[0]
        assert delivered.rsnode_id == target_op
        assert delivered.magic == magic_transform(MAGIC_RESPONSE)

    def test_missing_group_rule_raises(self, fabric):
        env, topo, network, switches, endpoints, _ = fabric
        host, _ = endpoints["host0.0.0"]
        host.send(_netrs_request("host0.0.0"))
        with pytest.raises(ConfigurationError):
            env.run()

    def test_missing_rsnode_rule_raises(self, fabric):
        env, topo, network, switches, endpoints, _ = fabric
        switches["tor0.0"].install_group_rule("host0.0.0", 5)
        host, _ = endpoints["host0.0.0"]
        host.send(_netrs_request("host0.0.0"))
        with pytest.raises(ConfigurationError):
            env.run()

    def test_group_rule_for_foreign_host_rejected(self, fabric):
        _, _, _, switches, _, _ = fabric
        with pytest.raises(ConfigurationError):
            switches["tor0.0"].install_group_rule("host1.0.0", 1)

    def test_group_rules_only_on_tor(self, fabric):
        _, _, _, switches, _, _ = fabric
        with pytest.raises(ConfigurationError):
            switches["core0"].install_group_rule("host0.0.0", 1)


class TestSelection:
    def test_rsnode_at_own_tor(self, fabric):
        env, topo, network, switches, endpoints, directory = fabric
        tor = switches["tor0.0"]
        selector = ScriptedSelector(env, "host3.0.0")
        tor.bind_operator(selector, directory)
        tor.install_group_rule("host0.0.0", 1)
        tor.install_rsnode_rule(1, tor.operator_id)
        host, _ = endpoints["host0.0.0"]
        host.send(_netrs_request("host0.0.0"))
        env.run()
        assert len(selector.requests) == 1
        _, server_endpoint = endpoints["host3.0.0"]
        assert len(server_endpoint.received) == 1
        assert tor.requests_selected == 1

    def test_selection_at_aggregation_waypoint(self, fabric):
        env, topo, network, switches, endpoints, directory = fabric
        agg = switches["agg0.1"]
        selector = ScriptedSelector(env, "host1.1.1")
        agg.bind_operator(selector, directory)
        tor = switches["tor0.0"]
        tor.install_group_rule("host0.0.0", 1)
        tor.install_rsnode_rule(1, agg.operator_id)
        host, _ = endpoints["host0.0.0"]
        host.send(_netrs_request("host0.0.0"))
        env.run()
        assert len(selector.requests) == 1
        _, server_endpoint = endpoints["host1.1.1"]
        assert len(server_endpoint.received) == 1


class TestResponsePath:
    def _run_response(self, fabric, rsnode_switch):
        env, topo, network, switches, endpoints, directory = fabric
        rsnode = switches[rsnode_switch]
        selector = ScriptedSelector(env, "host2.0.0")
        rsnode.bind_operator(selector, directory)
        # Build a response as the server would: copied RID, NetRS magic.
        request = _netrs_request("host0.0.0")
        request.rsnode_id = rsnode.operator_id
        request.magic = magic_transform(MAGIC_RESPONSE)
        request.server = "host2.0.0"
        request.retaining_value = 0.0
        status = ServerStatus(queue_size=1, service_rate=500.0, timestamp=0.0)
        response = make_response(request, server="host2.0.0", status=status)
        assert response.magic == MAGIC_RESPONSE
        server_host, _ = endpoints["host2.0.0"]
        server_host.send(response)
        env.run()
        return env, switches, endpoints, selector, rsnode

    def test_response_visits_rsnode_and_updates_selector(self, fabric):
        env, switches, endpoints, selector, rsnode = self._run_response(
            fabric, "agg0.0"
        )
        assert len(selector.responses) == 1
        assert rsnode.responses_cloned == 1
        _, client_endpoint = endpoints["host0.0.0"]
        assert len(client_endpoint.received) == 1
        assert client_endpoint.received[0].magic == MAGIC_MONITOR

    def test_response_source_marker_stamped(self, fabric):
        env, switches, endpoints, selector, _ = self._run_response(
            fabric, "agg0.0"
        )
        clone = selector.responses[0]
        assert clone.source_marker is not None
        assert clone.source_marker.pod == 2  # server host2.0.0

    def test_monitor_counts_egress(self, fabric):
        env, topo, network, switches, endpoints, directory = fabric
        monitor = RecordingMonitor()
        switches["tor0.0"].monitor = monitor
        _, _, _, selector, _ = self._run_response(fabric, "agg0.0")
        assert len(monitor.seen) == 1

    def test_monitor_ignores_plain_traffic(self, fabric):
        env, topo, network, switches, endpoints, _ = fabric
        monitor = RecordingMonitor()
        switches["tor0.0"].monitor = monitor
        request = make_request(
            client="host2.0.0",
            request_id=3,
            key=1,
            rgid=1,
            backup_replica="host0.0.0",
            issued_at=0.0,
            netrs=False,
            dst="host0.0.0",
        )
        host, _ = endpoints["host2.0.0"]
        host.send(request)
        env.run()
        assert monitor.seen == []


class TestDegradedReplicaSelection:
    def test_illegal_rsnode_routes_to_backup(self, fabric):
        env, topo, network, switches, endpoints, _ = fabric
        tor = switches["tor0.0"]
        tor.install_group_rule("host0.0.0", 1)
        tor.install_rsnode_rule(1, RSNODE_ILLEGAL)
        host, _ = endpoints["host0.0.0"]
        packet = _netrs_request("host0.0.0", backup="host3.1.0")
        host.send(packet)
        env.run()
        _, backup_endpoint = endpoints["host3.1.0"]
        assert len(backup_endpoint.received) == 1
        delivered = backup_endpoint.received[0]
        assert delivered.magic == magic_transform(MAGIC_MONITOR)
        assert delivered.rsnode_id == RSNODE_ILLEGAL

    def test_drs_response_is_monitor_visible(self, fabric):
        env, topo, network, switches, endpoints, _ = fabric
        monitor = RecordingMonitor()
        switches["tor0.0"].monitor = monitor
        tor = switches["tor0.0"]
        tor.install_group_rule("host0.0.0", 1)
        tor.install_rsnode_rule(1, RSNODE_ILLEGAL)
        host, _ = endpoints["host0.0.0"]
        host.send(_netrs_request("host0.0.0", backup="host3.1.0"))
        env.run()
        # Server-side: reply as the KV server would.
        _, backup_endpoint = endpoints["host3.1.0"]
        request = backup_endpoint.received[0]
        status = ServerStatus(queue_size=0, service_rate=1.0, timestamp=0.0)
        response = make_response(request, server="host3.1.0", status=status)
        assert response.magic == MAGIC_MONITOR
        server_host, _ = endpoints["host3.1.0"]
        server_host.send(response)
        env.run()
        assert len(monitor.seen) == 1
        _, client_endpoint = endpoints["host0.0.0"]
        assert len(client_endpoint.received) == 1


class TestOperatorFailure:
    def test_failed_operator_degrades_in_flight_requests(self, fabric):
        env, topo, network, switches, endpoints, directory = fabric
        agg = switches["agg0.0"]
        selector = ScriptedSelector(env, "host2.0.0")
        agg.bind_operator(selector, directory)
        agg.fail()
        tor = switches["tor0.0"]
        tor.install_group_rule("host0.0.0", 1)
        tor.install_rsnode_rule(1, agg.operator_id)
        host, _ = endpoints["host0.0.0"]
        host.send(_netrs_request("host0.0.0", backup="host1.0.1"))
        env.run()
        assert selector.requests == []
        _, backup_endpoint = endpoints["host1.0.1"]
        assert len(backup_endpoint.received) == 1

    def test_recovered_operator_selects_again(self, fabric):
        env, topo, network, switches, endpoints, directory = fabric
        agg = switches["agg0.0"]
        selector = ScriptedSelector(env, "host2.0.0")
        agg.bind_operator(selector, directory)
        agg.fail()
        agg.recover()
        tor = switches["tor0.0"]
        tor.install_group_rule("host0.0.0", 1)
        tor.install_rsnode_rule(1, agg.operator_id)
        host, _ = endpoints["host0.0.0"]
        host.send(_netrs_request("host0.0.0"))
        env.run()
        assert len(selector.requests) == 1


class TestOperatorBinding:
    def test_bind_without_accelerator_rejected(self, fabric):
        env, topo, network, switches, endpoints, directory = fabric
        bare = ProgrammableSwitch("core3", Network(Environment(), topo))
        with pytest.raises(ConfigurationError):
            bare.bind_operator(ScriptedSelector(env, "x"), directory)

    def test_rsnode_rule_only_on_tor(self, fabric):
        _, _, _, switches, _, _ = fabric
        with pytest.raises(ConfigurationError):
            switches["agg0.0"].install_rsnode_rule(1, 2)

    def test_rsnode_of_group(self, fabric):
        _, _, _, switches, _, _ = fabric
        tor = switches["tor0.0"]
        assert tor.rsnode_of_group(9) is None
        tor.install_rsnode_rule(9, 4)
        assert tor.rsnode_of_group(9) == 4


class TestErrorPaths:
    def test_unknown_rsnode_id_raises(self, fabric):
        env, topo, network, switches, endpoints, _ = fabric
        tor = switches["tor0.0"]
        tor.install_group_rule("host0.0.0", 1)
        tor.install_rsnode_rule(1, 9999)  # not in the directory
        host, _ = endpoints["host0.0.0"]
        host.send(_netrs_request("host0.0.0"))
        with pytest.raises(Exception) as excinfo:
            env.run()
        assert "9999" in str(excinfo.value)

    def test_forward_without_destination_raises(self, fabric):
        env, topo, network, switches, endpoints, _ = fabric
        from repro.errors import RoutingError
        from repro.network.packet import Packet

        broken = Packet(src="host0.0.0", dst=None, magic=0, request_id=1)
        with pytest.raises(RoutingError):
            switches["tor0.0"].receive(broken, "agg0.0")

    def test_monitor_skipped_without_marker(self, fabric):
        env, topo, network, switches, endpoints, _ = fabric
        monitor = RecordingMonitor()
        switches["tor0.0"].monitor = monitor
        from repro.network.packet import MAGIC_MONITOR, Packet

        # Monitor-labeled but marker-less (e.g. crafted by a buggy device):
        # the egress rule must not count it.
        packet = Packet(
            src="host2.0.0",
            dst="host0.0.0",
            magic=MAGIC_MONITOR,
            request_id=5,
            client="host0.0.0",
        )
        switches["tor0.0"].receive(packet, "agg0.0")
        env.run()
        assert monitor.seen == []
        _, client_endpoint = endpoints["host0.0.0"]
        assert len(client_endpoint.received) == 1

    def test_two_failed_operators_fall_back_independently(self, fabric):
        env, topo, network, switches, endpoints, directory = fabric
        for name in ("agg0.0", "agg0.1"):
            switches[name].bind_operator(
                ScriptedSelector(env, "host2.0.0"), directory
            )
            switches[name].fail()
        tor = switches["tor0.0"]
        tor.install_group_rule("host0.0.0", 1)
        tor.install_group_rule("host0.0.1", 2)
        tor.install_rsnode_rule(1, switches["agg0.0"].operator_id)
        tor.install_rsnode_rule(2, switches["agg0.1"].operator_id)
        host_a, _ = endpoints["host0.0.0"]
        host_b, _ = endpoints["host0.0.1"]
        host_a.send(_netrs_request("host0.0.0", backup="host3.0.0"))
        packet = _netrs_request("host0.0.1", backup="host3.0.1")
        packet.src = "host0.0.1"
        packet.client = "host0.0.1"
        host_b.send(packet)
        env.run()
        _, backup_a = endpoints["host3.0.0"]
        _, backup_b = endpoints["host3.0.1"]
        assert len(backup_a.received) == 1
        assert len(backup_b.received) == 1
