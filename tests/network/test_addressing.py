"""Tests for locations, markers and tier arithmetic."""

from repro.network.addressing import (
    TIER_AGG,
    TIER_CORE,
    TIER_TOR,
    HostLocation,
    SourceMarker,
    tier_between,
)


class TestTierBetween:
    def test_same_rack_is_tier2(self):
        a = SourceMarker(pod=1, rack=2)
        b = SourceMarker(pod=1, rack=2)
        assert tier_between(a, b) == TIER_TOR == 2

    def test_same_pod_is_tier1(self):
        a = SourceMarker(pod=1, rack=2)
        b = SourceMarker(pod=1, rack=3)
        assert tier_between(a, b) == TIER_AGG == 1

    def test_cross_pod_is_tier0(self):
        a = SourceMarker(pod=1, rack=2)
        b = SourceMarker(pod=2, rack=2)
        assert tier_between(a, b) == TIER_CORE == 0

    def test_symmetric(self):
        a = SourceMarker(pod=0, rack=0)
        b = SourceMarker(pod=3, rack=1)
        assert tier_between(a, b) == tier_between(b, a)

    def test_host_locations_work_too(self):
        a = HostLocation(pod=0, rack=1, index=0)
        b = HostLocation(pod=0, rack=1, index=3)
        assert tier_between(a, b) == 2


class TestHostLocation:
    def test_marker_drops_index(self):
        location = HostLocation(pod=2, rack=3, index=7)
        assert location.marker() == SourceMarker(pod=2, rack=3)

    def test_markers_hashable_and_equal(self):
        assert SourceMarker(pod=1, rack=1) == SourceMarker(pod=1, rack=1)
        assert len({SourceMarker(pod=1, rack=1), SourceMarker(pod=1, rack=1)}) == 1
