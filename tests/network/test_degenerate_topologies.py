"""Routing and placement on degenerate trees (the paper's n-tier claim).

"Besides the 3-tier topology ... our algorithm is applicable to n-tier
tree-based topologies."  We exercise the limiting shapes build_tree can
express: a single-pod tree (effectively 2-tier leaf-spine with a thin core)
and a single-rack tree.
"""

import pytest

from repro.core.placement import solve_greedy, solve_ilp, solve_tor
from repro.core.placement.problem import PlacementProblem, build_operator_specs
from repro.core.plan import make_traffic_groups
from repro.network.routing import Router
from repro.network.topology import NodeKind, build_tree


@pytest.fixture(scope="module")
def single_pod():
    """One pod, four racks, spine of 3 aggregation switches, 1 core."""
    return build_tree(
        pods=1, racks_per_pod=4, hosts_per_rack=3, aggs_per_pod=3, cores=1
    )


@pytest.fixture(scope="module")
def single_rack():
    """The smallest tree: one rack behind one ToR."""
    return build_tree(
        pods=1, racks_per_pod=1, hosts_per_rack=6, aggs_per_pod=1, cores=1
    )


class TestSinglePodRouting:
    def test_intra_pod_paths(self, single_pod):
        router = Router(single_pod)
        path = router.path("host0.0.0", "host0.3.2", flow_key=5)
        assert len(path) == 4  # tor, agg, tor, host
        kinds = [single_pod.node(n).kind for n in path]
        assert kinds[1] is NodeKind.AGG

    def test_waypoint_through_core(self, single_pod):
        router = Router(single_pod)
        up = router.path("tor0.1", "core0", flow_key=3)
        down = router.path("core0", "host0.2.0", flow_key=3)
        assert up[-1] == "core0"
        assert down[-1] == "host0.2.0"

    def test_ecmp_spreads_over_spine(self, single_pod):
        router = Router(single_pod)
        aggs = {
            router.path("host0.0.0", "host0.1.0", flow_key=k)[1]
            for k in range(32)
        }
        assert len(aggs) == 3  # all spine switches used


class TestSingleRackRouting:
    def test_everything_is_one_hop(self, single_rack):
        router = Router(single_rack)
        path = router.path("host0.0.0", "host0.0.5", flow_key=1)
        assert path == ["tor0.0", "host0.0.5"]
        assert router.hop_count("host0.0.0", "host0.0.5") == 1


class TestPlacementOnDegenerateTrees:
    def _problem(self, topo, clients, budget):
        groups = make_traffic_groups(topo, clients)
        operators = build_operator_specs(
            topo,
            accelerator_cores=1,
            accelerator_service_time=5e-6,
            max_utilization=0.5,
        )
        traffic = {g.group_id: (0.0, 800.0, 200.0) for g in groups}
        return PlacementProblem(
            groups=groups,
            operators=operators,
            traffic=traffic,
            extra_hops_budget=budget,
        )

    def test_single_pod_ilp(self, single_pod):
        clients = ["host0.0.0", "host0.1.0", "host0.2.0", "host0.3.0"]
        problem = self._problem(single_pod, clients, budget=10**9)
        plan = solve_ilp(problem)
        problem.check_assignment(plan.assignments)
        assert plan.rsnode_count == 1  # one spine/core node covers the pod

    def test_single_pod_tight_budget(self, single_pod):
        clients = ["host0.0.0", "host0.1.0", "host0.2.0", "host0.3.0"]
        problem = self._problem(single_pod, clients, budget=0.0)
        plan = solve_ilp(problem)
        # Zero budget with intra-rack traffic forces per-rack ToR RSNodes.
        by_id = {op.operator_id: op for op in problem.operators}
        assert all(by_id[oid].tier == 2 for oid in plan.rsnode_ids)

    def test_single_rack_all_solvers(self, single_rack):
        clients = ["host0.0.0", "host0.0.1"]
        problem = self._problem(single_rack, clients, budget=10**9)
        for solver in (solve_ilp, solve_greedy, solve_tor):
            plan = solver(problem)
            assert plan.rsnode_count == 1
            problem.check_assignment(plan.assignments)
