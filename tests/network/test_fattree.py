"""Tests for the k-ary fat-tree builder."""

import pytest

from repro.errors import TopologyError
from repro.network.fattree import build_fat_tree, fat_tree_dimensions
from repro.network.topology import NodeKind


class TestFatTree:
    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_dimensions(self, k):
        topo = build_fat_tree(k)
        dims = fat_tree_dimensions(k)
        assert len(topo.hosts) == dims["hosts"]
        assert len(topo.by_kind(NodeKind.TOR)) == dims["tor_switches"]
        assert len(topo.by_kind(NodeKind.AGG)) == dims["agg_switches"]
        assert len(topo.by_kind(NodeKind.CORE)) == dims["core_switches"]

    def test_paper_scale(self):
        dims = fat_tree_dimensions(16)
        assert dims["hosts"] == 1024
        assert dims["pods"] == 16
        assert dims["core_switches"] == 64

    def test_odd_arity_rejected(self):
        with pytest.raises(TopologyError):
            build_fat_tree(3)

    def test_too_small_rejected(self):
        with pytest.raises(TopologyError):
            build_fat_tree(0)

    def test_structure_validates(self):
        build_fat_tree(4).validate()

    def test_agg_core_degree(self):
        k = 4
        topo = build_fat_tree(k)
        for agg in topo.by_kind(NodeKind.AGG):
            assert len(topo.uplinks(agg.name)) == k // 2

    def test_core_groups_disjoint(self):
        """Aggregation switch a of every pod wires to the same core group."""
        k = 4
        topo = build_fat_tree(k)
        groups = {}
        for agg in topo.by_kind(NodeKind.AGG):
            cores = frozenset(topo.uplinks(agg.name))
            groups.setdefault(agg.index, set()).add(cores)
        # Same index -> same cores across pods; different indexes -> disjoint.
        per_index = {i: next(iter(s)) for i, s in groups.items()}
        assert all(len(s) == 1 for s in groups.values())
        assert per_index[0].isdisjoint(per_index[1])

    def test_every_core_reaches_every_pod(self):
        k = 4
        topo = build_fat_tree(k)
        for core in topo.by_kind(NodeKind.CORE):
            pods = {topo.node(n).pod for n in topo.downlinks(core.name)}
            assert pods == set(range(k))

    def test_hosts_per_rack(self):
        k = 8
        topo = build_fat_tree(k)
        for tor in topo.by_kind(NodeKind.TOR):
            assert len(topo.hosts_under(tor.name)) == k // 2
