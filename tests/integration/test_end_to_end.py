"""Integration tests: full-system invariants across whole runs."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import build_scenario
from repro.network.packet import RSNODE_ILLEGAL


def _run(scheme, seed=1, **overrides):
    config = ExperimentConfig.tiny(scheme=scheme, seed=seed, **overrides)
    return run_experiment(config, keep_scenario=True)


class TestConservation:
    @pytest.mark.parametrize("scheme", ["clirs", "netrs-tor", "netrs-ilp"])
    def test_requests_equal_server_arrivals_and_responses(self, scheme):
        result = _run(scheme)
        scenario = result.scenario
        total = scenario.config.total_requests
        arrivals = sum(s.arrivals for s in scenario.servers.values())
        completions = sum(s.completions for s in scenario.servers.values())
        assert arrivals == total
        assert completions == total
        received = sum(c.responses_received for c in scenario.clients)
        assert received == total

    def test_r95_duplicates_add_server_load(self):
        result = _run("clirs-r95", utilization=1.2, total_requests=900)
        scenario = result.scenario
        arrivals = sum(s.arrivals for s in scenario.servers.values())
        assert arrivals == scenario.config.total_requests + result.redundant_requests

    def test_all_servers_participate(self):
        result = _run("netrs-ilp")
        scenario = result.scenario
        assert all(s.arrivals > 0 for s in scenario.servers.values())

    def test_replicas_respect_ring_membership(self):
        result = _run("netrs-ilp")
        scenario = result.scenario
        assert set(scenario.servers) == set(scenario.ring.servers)


class TestNetrsDataPlane:
    def test_all_selections_happen_at_planned_rsnodes(self):
        result = _run("netrs-ilp")
        scenario = result.scenario
        plan = scenario.plan
        planned_switches = {
            scenario.controller.operators[oid].spec.switch
            for oid in plan.rsnode_ids
        }
        for name, switch in scenario.switches.items():
            if switch.requests_selected > 0:
                assert name in planned_switches
        total_selected = sum(
            s.requests_selected for s in scenario.switches.values()
        )
        assert total_selected == scenario.config.total_requests

    def test_responses_cloned_once_per_request(self):
        result = _run("netrs-tor")
        scenario = result.scenario
        cloned = sum(s.responses_cloned for s in scenario.switches.values())
        assert cloned == scenario.config.total_requests

    def test_monitors_count_every_response(self):
        result = _run("netrs-ilp")
        scenario = result.scenario
        observed = sum(
            m.observed for m in scenario.controller.monitors.values()
        )
        assert observed == scenario.config.total_requests

    def test_monitor_traffic_matches_group_rates(self):
        result = _run("netrs-ilp")
        scenario = result.scenario
        counts = {}
        for monitor in scenario.controller.monitors.values():
            for gid, tiers in monitor.counts().items():
                counts[gid] = counts.get(gid, 0) + sum(tiers)
        assert sum(counts.values()) == scenario.config.total_requests

    def test_netrs_latency_includes_selector_service(self):
        """Every request pays at least the accelerator round trip."""
        result = _run("netrs-tor")
        config = result.config
        floor = (
            4 * config.host_link_latency  # client<->ToR, server<->ToR
            + 2 * config.accelerator_link_delay
            + config.accelerator_service_time
        )
        assert min(result.latency.samples) >= floor


class TestDegradedOperation:
    def test_drs_whole_run_completes(self):
        """All groups degraded: every request goes to the client backup."""
        config = ExperimentConfig.tiny(scheme="netrs-ilp", seed=1)
        scenario = build_scenario(config)
        controller = scenario.controller
        controller.degrade_groups([g.group_id for g in controller.groups])
        result = run_experiment(config, scenario=scenario, keep_scenario=True)
        assert result.completed_requests == config.total_requests
        # Nothing was selected in-network.
        assert all(
            s.requests_selected == 0 for s in scenario.switches.values()
        )
        # Monitors still observed the DRS responses.
        observed = sum(m.observed for m in controller.monitors.values())
        assert observed == config.total_requests

    def test_operator_failure_mid_run_completes(self):
        config = ExperimentConfig.tiny(scheme="netrs-ilp", seed=1)
        scenario = build_scenario(config)
        controller = scenario.controller
        victim = scenario.plan.rsnode_ids[0]
        # Fail the operator a third of the way into the run.
        horizon = config.total_requests / config.arrival_rate() / 3
        scenario.env.call_in(
            horizon, controller.handle_operator_failure, victim
        )
        result = run_experiment(config, scenario=scenario, keep_scenario=True)
        assert result.completed_requests == config.total_requests
        assert controller.failures_handled == 1
        degraded = controller.current_plan.drs_groups
        assert degraded
        for gid in degraded:
            group = controller.groups_by_id[gid]
            tor = scenario.switches[group.tor]
            assert tor.rsnode_of_group(gid) == RSNODE_ILLEGAL

    def test_replanning_run_completes(self):
        result = _run("netrs-ilp", replan_period=0.05)
        assert result.completed_requests == result.config.total_requests
        assert result.scenario.controller.replans >= 1


class TestSchemeEquivalences:
    def test_same_seed_same_deployment_across_schemes(self):
        a = build_scenario(ExperimentConfig.tiny(scheme="clirs", seed=9))
        b = build_scenario(ExperimentConfig.tiny(scheme="netrs-ilp", seed=9))
        assert a.client_hosts == b.client_hosts
        assert a.server_hosts == b.server_hosts

    def test_workload_identical_across_schemes(self):
        a = _run("clirs", seed=9)
        b = _run("netrs-tor", seed=9)
        assert (
            a.scenario.workload.per_client_counts
            == b.scenario.workload.per_client_counts
        )


class TestDemandSkew:
    def test_skew_realized_in_issue_counts(self):
        result = _run("clirs", demand_skew=0.9, total_requests=1000)
        workload = result.scenario.workload
        achieved = workload.weights.achieved_skew(workload.per_client_counts)
        assert achieved == pytest.approx(0.9, abs=0.08)
