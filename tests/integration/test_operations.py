"""Integration tests for operational scenarios: overload, replans, scale.

Covers the controller's exception handling under live traffic (paper
section III-C cases ii and iii) and deployment transitions with packets in
flight.
"""

import json

import pytest

from repro.core.plan import SelectionPlan
from repro.experiments.config import ExperimentConfig
from repro.experiments.metrics import METRICS
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import build_scenario
from repro.experiments.sweep import run_sweep


class TestOverloadHandling:
    def test_overloaded_accelerator_triggers_drs(self):
        """Section III-C case (ii): slow accelerators get their groups degraded."""
        config = ExperimentConfig.tiny(scheme="netrs-tor", seed=1)
        scenario = build_scenario(config)
        controller = scenario.controller
        # Degrade the hardware *after* planning: the capacity model assumed
        # healthy 5 us accelerators, but e.g. a co-tenant application now
        # eats the device (paper section III-C, exception ii).
        for accelerator in scenario.accelerators():
            accelerator.service_time = 2e-3

        overloaded_log = []

        def check(period):
            overloaded_log.extend(controller.check_overloads(0.5))
            scenario.env.call_in(period, check, period)

        scenario.env.call_in(0.02, check, 0.02)
        result = run_experiment(config, scenario=scenario, keep_scenario=True)
        assert result.completed_requests == config.total_requests
        assert overloaded_log, "no operator was ever flagged overloaded"
        assert controller.overloads_handled >= 1
        assert controller.current_plan.drs_groups

    def test_healthy_accelerators_not_flagged(self):
        config = ExperimentConfig.tiny(scheme="netrs-ilp", seed=1)
        scenario = build_scenario(config)
        controller = scenario.controller
        flagged = []
        scenario.env.call_in(
            0.05, lambda: flagged.extend(controller.check_overloads(0.5))
        )
        run_experiment(config, scenario=scenario)
        assert flagged == []


class TestMidRunPlanSwitch:
    def test_switch_to_different_plan_with_packets_in_flight(self):
        """Deploying a new RSP mid-run must not lose or wedge requests.

        Packets already stamped with the old RSNode ID hit an operator that
        may have been deactivated; the data plane degrades them to the
        client's backup replica, exactly like an operator failure.
        """
        config = ExperimentConfig.tiny(scheme="netrs-tor", seed=1)
        scenario = build_scenario(config)
        controller = scenario.controller
        # Build a radically different plan: everything on one core operator.
        core_op = next(
            op
            for op in controller.operators.values()
            if op.spec.tier == 0
        )
        new_plan = SelectionPlan(
            assignments={
                g.group_id: core_op.operator_id for g in controller.groups
            },
            solver="test-core",
        )
        midpoint = config.total_requests / config.arrival_rate() / 2
        scenario.env.call_in(midpoint, controller.deploy, new_plan)
        result = run_experiment(config, scenario=scenario, keep_scenario=True)
        assert result.completed_requests == config.total_requests
        assert controller.deployments == 2
        # The new RSNode actually served traffic after the switch.
        assert core_op.switch.requests_selected > 0

    def test_cold_rsnode_starts_without_state(self):
        config = ExperimentConfig.tiny(scheme="netrs-tor", seed=1)
        scenario = build_scenario(config)
        controller = scenario.controller
        core_op = next(
            op for op in controller.operators.values() if op.spec.tier == 0
        )
        assert core_op.selector is None
        new_plan = SelectionPlan(
            assignments={
                g.group_id: core_op.operator_id for g in controller.groups
            }
        )
        controller.deploy(new_plan)
        assert core_op.selector is not None
        assert core_op.selector.requests_handled == 0  # cold, per section II


class TestHopAccounting:
    def test_request_hop_counts_bounded(self):
        """No packet may exceed the worst-case valley-free detour length."""
        from repro.analysis import attach_probes

        config = ExperimentConfig.tiny(scheme="netrs-ilp", seed=2)
        scenario = build_scenario(config)
        probes = attach_probes(scenario, staleness=False, queues=False)
        run_experiment(config, scenario=scenario)
        # Response path: up to 5 switch hops to the RSNode plus up to 5 more
        # down to the client (the request's hops were reset when rebuilt).
        # Zero is legitimate: client and server in the same rack with the
        # rack's own ToR as RSNode -- the only forwarding is ToR egress.
        assert all(0 <= r.hops <= 10 for r in probes.trace)
        assert any(r.hops >= 2 for r in probes.trace)


class TestSweepExport:
    def test_to_json_round_trips(self):
        base = ExperimentConfig.tiny(seed=1, total_requests=300)
        sweep = run_sweep(
            base,
            parameter="utilization",
            values=[0.5],
            schemes=["clirs"],
        )
        payload = json.loads(sweep.to_json())
        assert payload["parameter"] == "utilization"
        assert payload["values"] == [0.5]
        assert set(payload["metrics_ms"]["clirs"]) == set(METRICS)


@pytest.mark.slow
class TestPaperProfileSmoke:
    def test_paper_scale_topology_runs(self):
        """The full 16-ary / 1024-host / 500-client setup works end to end.

        Shortened to 4000 requests; the full 6M-request figure runs are
        reserved for REPRO_BENCH_PROFILE=paper benchmark invocations.
        """
        config = ExperimentConfig.paper(
            scheme="netrs-ilp", seed=1, total_requests=4000
        )
        result = run_experiment(config)
        assert result.completed_requests == 4000
        assert result.rsnode_count >= 1
        summary = result.summary()
        assert summary["mean"] > 0
