"""API-contract tests: the documented public surface stays importable."""

import importlib

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.sim",
    "repro.network",
    "repro.kvstore",
    "repro.selection",
    "repro.core",
    "repro.core.placement",
    "repro.exec",
    "repro.faults",
    "repro.mesoscale",
    "repro.experiments",
    "repro.analysis",
    "repro.cli",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_imports(module_name):
    importlib.import_module(module_name)


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_names_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.{name} missing"


def test_readme_quickstart_runs():
    """The README's quickstart snippet must stay valid."""
    from repro.experiments import ExperimentConfig, run_experiment

    config = ExperimentConfig.small(scheme="netrs-ilp", seed=1).replace(
        total_requests=300, n_clients=8, n_servers=6, fat_tree_k=4
    )
    result = run_experiment(config)
    assert set(result.summary()) == {"mean", "p95", "p99", "p999"}
    assert result.plan_description.startswith("RSP[")


def test_version_is_consistent():
    import repro
    from repro._version import __version__

    assert repro.__version__ == __version__


def test_module_docstrings_exist():
    """Every public module documents itself."""
    for module_name in PUBLIC_MODULES:
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a docstring"
