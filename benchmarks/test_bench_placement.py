"""Ablation: RSNode placement backends (section V-B text + our extras).

Compares the paper's NetRS-ILP against NetRS-ToR, the greedy heuristic and
the core-only packing, on (a) solver wall time, (b) resulting RSNode count,
(c) end-to-end latency.  The paper reports an example ILP plan of "6 RSNodes
on aggregation switches and 1 on a core switch"; the analogous scaled plan
shape (a few aggregation RSNodes plus cores, far fewer than ToR-level) is
asserted here.
"""

import pytest

from _support import bench_config, flatten_extra_info
from repro.core.placement import SOLVERS
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import build_scenario
from repro.network.addressing import TIER_TOR

PLACEMENT_SCHEMES = ("netrs-tor", "netrs-ilp", "netrs-greedy", "netrs-core")


@pytest.mark.parametrize("scheme", PLACEMENT_SCHEMES)
def test_end_to_end_latency_by_backend(benchmark, scheme):
    config = bench_config(scheme)
    result = benchmark.pedantic(
        run_experiment, args=(config,), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {f"latency_{k}": round(v, 4) for k, v in result.summary().items()}
    )
    benchmark.extra_info["rsnode_count"] = result.rsnode_count
    assert result.completed_requests == config.total_requests


@pytest.mark.parametrize("solver", sorted(SOLVERS))
def test_solver_wall_time(benchmark, solver):
    """Pure solve time on the benchmark profile's placement problem."""
    scenario = build_scenario(bench_config("netrs-ilp", total_requests=100))
    controller = scenario.controller
    traffic = controller.measured_traffic()
    # The 100-request bootstrap leaves monitors nearly empty; use the same
    # estimated matrix the scenario was planned with instead.
    from repro.core.placement.problem import estimate_traffic

    rate = scenario.config.arrival_rate()
    index = {name: i for i, name in enumerate(scenario.client_hosts)}
    group_rates = {
        g.group_id: rate
        * sum(float(scenario.weights.probabilities[index[h]]) for h in g.hosts)
        for g in controller.groups
    }
    traffic = estimate_traffic(
        controller.groups,
        topology=scenario.topology,
        server_hosts=scenario.server_hosts,
        group_rates=group_rates,
    )
    problem = controller.build_problem(traffic)
    plan = benchmark(SOLVERS[solver], problem)
    benchmark.extra_info["rsnode_count"] = plan.rsnode_count
    problem_groups = {g.group_id for g in controller.groups}
    assert set(plan.assignments) == problem_groups


def test_ilp_plan_shape_matches_paper(benchmark):
    """ILP plans mix aggregation/core RSNodes and beat ToR-level counts."""

    def build_and_plan():
        scenario = build_scenario(bench_config("netrs-ilp", total_requests=100))
        return scenario

    scenario = benchmark.pedantic(build_and_plan, rounds=1, iterations=1)
    plan = scenario.plan
    controller = scenario.controller
    tiers = [
        controller.operators[oid].spec.tier for oid in plan.rsnode_ids
    ]
    client_racks = {
        scenario.topology.tor_of(h).name for h in scenario.client_hosts
    }
    benchmark.extra_info["rsnode_count"] = plan.rsnode_count
    benchmark.extra_info["tiers"] = ",".join(map(str, sorted(tiers)))
    # Far fewer RSNodes than racks-with-clients, none of them at ToR level
    # unless a rack's own traffic demanded it.
    assert plan.rsnode_count < len(client_racks)
    assert any(t != TIER_TOR for t in tiers)
