"""Figure 5: response latency vs demand skewness.

Paper setup: the share of requests issued by 20% of clients swept over
{70%, 80%, 90%, 95%}; all four schemes.

Expected shape: NetRS-ILP still wins everywhere, but its relative latency
reduction shrinks as skew rises (fewer effective client RSNodes narrows
CliRS's disadvantage, while switch-level traffic stays spread out).
"""

import pytest

from _support import flatten_extra_info, run_series

SCHEMES = ("clirs", "clirs-r95", "netrs-tor", "netrs-ilp")


@pytest.mark.parametrize("scheme", SCHEMES)
def test_fig5_series(benchmark, scheme, fig5_collector):
    series = benchmark.pedantic(
        run_series, args=("fig5", scheme), rounds=1, iterations=1
    )
    fig5_collector.add(scheme, series)
    benchmark.extra_info.update(flatten_extra_info(series))
    assert all(summary["p999"] >= summary["mean"] for summary in series.values())
