"""Ablation: the paper's two fundamental factors, measured directly.

Section I claims client RSNodes suffer (i) stale local information and
(ii) herd behavior, and that NetRS fixes both by concentrating selection in
few traffic-aggregating RSNodes.  This benchmark quantifies the mechanism:
feedback age at selection time and queue imbalance over time, per scheme.
"""

import pytest

from _support import bench_config
from repro.analysis import attach_probes, jain_fairness
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import build_scenario

SCHEMES = ("clirs", "netrs-tor", "netrs-ilp")


def _measure(scheme):
    config = bench_config(scheme)
    scenario = build_scenario(config)
    probes = attach_probes(scenario)
    result = run_experiment(config, scenario=scenario)
    return result, probes


@pytest.mark.parametrize("scheme", SCHEMES)
def test_factors_by_scheme(benchmark, scheme):
    result, probes = benchmark.pedantic(
        _measure, args=(scheme,), rounds=1, iterations=1
    )
    staleness = probes.staleness.summary()
    herd = probes.queues.summary()
    benchmark.extra_info["mean_feedback_age_ms"] = round(
        staleness["mean_age"] * 1e3, 3
    )
    benchmark.extra_info["cold_selections"] = staleness["cold_selections"]
    benchmark.extra_info["queue_cv"] = round(herd.mean_cv, 4)
    benchmark.extra_info["oscillation_fraction"] = round(
        herd.oscillation_fraction, 4
    )
    benchmark.extra_info["jain_fairness"] = round(
        jain_fairness(probes.trace.per_server_counts()), 4
    )
    benchmark.extra_info["latency_mean_ms"] = round(result.summary()["mean"], 3)
    assert len(probes.trace) == result.config.total_requests


def test_netrs_reduces_both_factors(benchmark):
    """The paper's causal story, asserted: fresher feedback + less herding."""

    def run_pair():
        return {scheme: _measure(scheme) for scheme in ("clirs", "netrs-ilp")}

    measured = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    clirs_staleness = measured["clirs"][1].staleness.mean_age()
    netrs_staleness = measured["netrs-ilp"][1].staleness.mean_age()
    clirs_herd = measured["clirs"][1].queues.summary().mean_cv
    netrs_herd = measured["netrs-ilp"][1].queues.summary().mean_cv
    benchmark.extra_info["staleness_ratio"] = round(
        clirs_staleness / netrs_staleness, 2
    )
    benchmark.extra_info["herd_cv_clirs"] = round(clirs_herd, 4)
    benchmark.extra_info["herd_cv_netrs"] = round(netrs_herd, 4)
    assert netrs_staleness < clirs_staleness
    assert netrs_herd < clirs_herd
