"""Figure 4: response latency vs number of clients.

Paper setup: clients swept over {100, 300, 500, 700} (scaled profile:
{16, 32, 64, 96}), all four schemes, Avg/95th/99th/99.9th latency.

Expected shape: CliRS latency grows with the client count (more independent
RSNodes -> staler information and more herding) while both NetRS schemes
stay flat; NetRS-ILP is the best throughout.
"""

import pytest

from _support import BENCH_SEED, flatten_extra_info, run_series

SCHEMES = ("clirs", "clirs-r95", "netrs-tor", "netrs-ilp")


@pytest.mark.parametrize("scheme", SCHEMES)
def test_fig4_series(benchmark, scheme, fig4_collector):
    series = benchmark.pedantic(
        run_series, args=("fig4", scheme), rounds=1, iterations=1
    )
    fig4_collector.add(scheme, series)
    benchmark.extra_info.update(flatten_extra_info(series))
    benchmark.extra_info["seed"] = BENCH_SEED
    assert all(summary["mean"] > 0 for summary in series.values())
