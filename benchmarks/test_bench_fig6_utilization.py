"""Figure 6: response latency vs system utilization.

Paper setup: nominal utilization swept over {30%, 50%, 70%, 90%}; all four
schemes.

Expected shape: every scheme degrades as utilization grows; NetRS-ILP's
advantage over CliRS widens in the high-utilization region (bad selections
cost more when resources are contended); CliRS-R95 helps tails only at low
utilization.
"""

import pytest

from _support import flatten_extra_info, run_series

SCHEMES = ("clirs", "clirs-r95", "netrs-tor", "netrs-ilp")


@pytest.mark.parametrize("scheme", SCHEMES)
def test_fig6_series(benchmark, scheme, fig6_collector):
    series = benchmark.pedantic(
        run_series, args=("fig6", scheme), rounds=1, iterations=1
    )
    fig6_collector.add(scheme, series)
    benchmark.extra_info.update(flatten_extra_info(series))
    assert all(summary["mean"] > 0 for summary in series.values())
