"""Microbenchmarks of the substrates: event engine, routing, ring, Zipf, ILP.

These quantify the simulator's own throughput (events/second and packet
hops/second), which bounds how fast the paper-scale profile can run.
"""

import numpy as np

from repro.kvstore.hashing import ConsistentHashRing
from repro.kvstore.workload import ZipfSampler
from repro.network.fabric import Network
from repro.network.fattree import build_fat_tree
from repro.network.packet import make_request
from repro.network.routing import Router
from repro.sim import Environment


def test_event_scheduling_throughput(benchmark):
    """Schedule-and-drain cost of 10k raw callbacks."""

    def run():
        env = Environment()
        for i in range(10_000):
            env.call_in(i * 1e-6, lambda: None)
        env.run()
        return env.events_executed

    executed = benchmark(run)
    assert executed == 10_000


def test_timer_cancellation_throughput(benchmark):
    """Timers that never fire (the R95 fast path)."""

    def run():
        env = Environment()
        handles = [env.call_in(1.0, lambda: None) for _ in range(10_000)]
        for handle in handles:
            handle.cancel()
        env.run()
        return env.now

    benchmark(run)


def test_routing_throughput(benchmark):
    """Path computations across a 16-ary (paper-scale) fat-tree."""
    topo = build_fat_tree(16)
    router = Router(topo)
    hosts = [h.name for h in topo.hosts]

    def run():
        total = 0
        for i in range(2_000):
            path = router.path(hosts[i % 512], hosts[-1 - (i % 511)], i)
            total += len(path)
        return total

    assert benchmark(run) > 0


def test_packet_hop_throughput(benchmark):
    """Fabric transmissions per second over a long host-to-host pipe."""
    env = Environment()
    topo = build_fat_tree(8)
    network = Network(env, topo)

    class Reflector:
        def __init__(self):
            self.count = 0

        def receive(self, packet, from_name):
            self.count += 1

    sink = Reflector()
    network.attach("tor0.0", sink)

    def run():
        for i in range(5_000):
            packet = make_request(
                client="host0.0.0",
                request_id=i,
                key=i,
                rgid=1,
                backup_replica="host0.0.1",
                issued_at=0.0,
                netrs=False,
                dst="host0.0.1",
            )
            network.transmit("host0.0.0", "tor0.0", packet)
        env.run()
        return sink.count

    assert benchmark(run) > 0


def test_ring_lookup_throughput(benchmark):
    """Key-to-replica-group lookups on a paper-scale ring (100 servers)."""
    ring = ConsistentHashRing(
        [f"server{i}" for i in range(100)], replication_factor=3
    )

    def run():
        total = 0
        for key in range(5_000):
            rgid, _ = ring.group_for_key(key)
            total += rgid
        return total

    benchmark(run)


def test_zipf_sampling_throughput(benchmark):
    """Rejection-inversion draws from the paper's 100M-key space."""
    sampler = ZipfSampler(100_000_000, 0.99, np.random.default_rng(0))

    def run():
        return sum(sampler.sample() for _ in range(5_000))

    assert benchmark(run) > 0
