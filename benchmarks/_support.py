"""Shared helpers for the benchmark harness.

Environment knobs (all optional):

* ``REPRO_BENCH_REQUESTS``  -- requests per run (default 6000; the paper uses
  6,000,000 -- raise this on a fast machine for tighter tails),
* ``REPRO_BENCH_PROFILE``   -- ``small`` (default) or ``paper``,
* ``REPRO_BENCH_SEED``      -- base seed (default 1),
* ``REPRO_BENCH_REPS``      -- repetitions per cell (default 1; paper uses 3).

Each figure benchmark measures the wall time of regenerating one scheme's
series and stores the latency metrics in ``benchmark.extra_info``; the
collected figure is also written to ``benchmarks/results/<figure>.txt`` in
the paper's table layout.
"""

from __future__ import annotations

import os
import pathlib
from typing import Any, Dict, List, Sequence

from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import FIGURES, base_config
from repro.experiments.metrics import METRICS
from repro.experiments.runner import run_experiment
from repro.experiments.sweep import SweepResult
from repro.experiments.tables import format_figure, format_reductions

BENCH_REQUESTS = int(os.environ.get("REPRO_BENCH_REQUESTS", "6000"))
BENCH_PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "small")
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "1"))
BENCH_REPS = int(os.environ.get("REPRO_BENCH_REPS", "1"))

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_config(scheme: str, **overrides) -> ExperimentConfig:
    """The benchmark profile's configuration for one scheme."""
    overrides.setdefault("total_requests", BENCH_REQUESTS)
    return base_config(BENCH_PROFILE, seed=BENCH_SEED, scheme=scheme, **overrides)


def figure_values(figure_id: str) -> Sequence[Any]:
    """Swept values of a figure under the current profile."""
    return FIGURES[figure_id].values(BENCH_PROFILE)


def run_series(
    figure_id: str, scheme: str, **extra_overrides
) -> Dict[Any, Dict[str, float]]:
    """Run one scheme across a figure's swept values, averaging reps."""
    spec = FIGURES[figure_id]
    series: Dict[Any, Dict[str, float]] = {}
    for value in figure_values(figure_id):
        summaries: List[Dict[str, float]] = []
        for rep in range(BENCH_REPS):
            config = bench_config(
                scheme, **{spec.parameter: value}, **extra_overrides
            ).replace(seed=BENCH_SEED + rep)
            summaries.append(run_experiment(config).summary())
        series[value] = {
            metric: sum(s[metric] for s in summaries) / len(summaries)
            for metric in METRICS
        }
    return series


class FigureCollector:
    """Accumulates per-scheme series and renders the figure at the end."""

    def __init__(self, figure_id: str) -> None:
        self.figure_id = figure_id
        self.spec = FIGURES[figure_id]
        self.series: Dict[str, Dict[Any, Dict[str, float]]] = {}

    def add(self, scheme: str, series: Dict[Any, Dict[str, float]]) -> None:
        """Store one scheme's results."""
        self.series[scheme] = series

    def to_sweep(self) -> SweepResult:
        """Repackage collected series as a SweepResult for the formatters."""
        values = list(figure_values(self.figure_id))
        sweep = SweepResult(
            parameter=self.spec.parameter,
            values=values,
            schemes=list(self.series),
            repetitions=BENCH_REPS,
        )
        for scheme, series in self.series.items():
            for value, summary in series.items():
                sweep.cells[(value, scheme)] = summary
        return sweep

    def render(self) -> str:
        """The figure as paper-style text tables."""
        sweep = self.to_sweep()
        parts = [
            format_figure(
                sweep,
                title=(
                    f"{self.spec.title} "
                    f"[profile={BENCH_PROFILE}, requests={BENCH_REQUESTS}, "
                    f"reps={BENCH_REPS}]"
                ),
            )
        ]
        if "clirs" in self.series and "netrs-ilp" in self.series:
            parts.append(format_reductions(sweep))
        return "\n\n".join(parts)

    def finalize(self) -> None:
        """Print the figure and persist it under benchmarks/results/."""
        text = self.render()
        print()
        print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{self.figure_id}.txt"
        path.write_text(text + "\n", encoding="utf-8")


def flatten_extra_info(series: Dict[Any, Dict[str, float]]) -> Dict[str, float]:
    """Series -> flat benchmark extra_info keys like ``mean@64``."""
    flat: Dict[str, float] = {}
    for value, summary in series.items():
        for metric, number in summary.items():
            flat[f"{metric}@{value}"] = round(number, 4)
    return flat
