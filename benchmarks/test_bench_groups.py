"""Ablation: traffic-group granularity (paper section III-A).

The paper discusses host-level vs rack-level vs intervening-level traffic
groups: finer groups give the planner more freedom but enlarge the problem
and the rule tables.  This benchmark quantifies the trade-off on plan size,
solve time and end-to-end latency.
"""

import pytest

from _support import bench_config
from repro.experiments.runner import run_experiment
from repro.experiments.scenarios import build_scenario

GRANULARITIES = ("rack", 2, "host")


@pytest.mark.parametrize("granularity", GRANULARITIES, ids=str)
def test_latency_by_granularity(benchmark, granularity):
    config = bench_config("netrs-ilp", group_granularity=granularity)
    result = benchmark.pedantic(
        run_experiment, args=(config,), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {f"latency_{k}": round(v, 4) for k, v in result.summary().items()}
    )
    benchmark.extra_info["rsnode_count"] = result.rsnode_count
    assert result.completed_requests == config.total_requests


@pytest.mark.parametrize("granularity", GRANULARITIES, ids=str)
def test_planning_cost_by_granularity(benchmark, granularity):
    """Scenario construction including the ILP solve, per granularity."""

    def build():
        return build_scenario(
            bench_config(
                "netrs-ilp",
                group_granularity=granularity,
                total_requests=100,
            )
        )

    scenario = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["groups"] = len(scenario.groups)
    benchmark.extra_info["rsnode_count"] = scenario.plan.rsnode_count
    benchmark.extra_info["solve_time_s"] = round(scenario.plan.solve_time, 4)
    assert len(scenario.groups) >= scenario.plan.rsnode_count
