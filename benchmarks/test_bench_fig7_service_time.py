"""Figure 7: response latency vs server service time.

Paper setup: mean service time t_kv swept over {0.1, 0.5, 1, 2, 4} ms; all
four schemes.  Utilization is held constant, so the arrival rate scales
inversely with the service time.

Expected shape: absolute latency scales with the service time for every
scheme; NetRS-ILP's *mean*-latency reduction shrinks at small service times
(the fixed network/selector overheads of taking extra hops become comparable
to t_kv) while the tail-latency advantage persists.
"""

import pytest

from _support import flatten_extra_info, run_series

SCHEMES = ("clirs", "clirs-r95", "netrs-tor", "netrs-ilp")


@pytest.mark.parametrize("scheme", SCHEMES)
def test_fig7_series(benchmark, scheme, fig7_collector):
    series = benchmark.pedantic(
        run_series, args=("fig7", scheme), rounds=1, iterations=1
    )
    fig7_collector.add(scheme, series)
    benchmark.extra_info.update(flatten_extra_info(series))
    values = list(series)
    # Latency scales with service time: slowest point beats fastest point.
    assert series[values[-1]]["mean"] > series[values[0]]["mean"]
