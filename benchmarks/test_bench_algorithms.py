"""Ablation: replica-selection algorithms under NetRS.

NetRS is algorithm-agnostic (section IV-C); the paper runs C3 everywhere.
This benchmark swaps the RSNode algorithm to quantify how much of the win is
C3 vs how much is the in-network placement itself.
"""

import pytest

from _support import bench_config
from repro.experiments.runner import run_experiment

ALGORITHMS = ("c3", "least-outstanding", "two-choices", "random", "ewma-snitch")


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_netrs_ilp_latency_by_algorithm(benchmark, algorithm):
    config = bench_config("netrs-ilp", algorithm=algorithm)
    result = benchmark.pedantic(
        run_experiment, args=(config,), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {f"latency_{k}": round(v, 4) for k, v in result.summary().items()}
    )
    assert result.completed_requests == config.total_requests


@pytest.mark.parametrize("algorithm", ("c3", "random"))
def test_clirs_latency_by_algorithm(benchmark, algorithm):
    """Client-side baseline for the same algorithms."""
    config = bench_config("clirs", algorithm=algorithm)
    result = benchmark.pedantic(
        run_experiment, args=(config,), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {f"latency_{k}": round(v, 4) for k, v in result.summary().items()}
    )
    assert result.completed_requests == config.total_requests


@pytest.mark.parametrize("scheme", ("clirs", "netrs-ilp"))
def test_c3_rate_control_ablation(benchmark, scheme):
    """C3's cubic backpressure (off in the paper's simulator) as an extra."""
    config = bench_config(scheme, algorithm="c3-rate")
    result = benchmark.pedantic(
        run_experiment, args=(config,), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {f"latency_{k}": round(v, 4) for k, v in result.summary().items()}
    )
    assert result.completed_requests == config.total_requests
