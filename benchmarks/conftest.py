"""Benchmark fixtures: per-figure collectors that render paper tables."""

import sys
import pathlib

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from _support import FigureCollector  # noqa: E402


def _collector_fixture(figure_id: str):
    @pytest.fixture(scope="module")
    def collector():
        instance = FigureCollector(figure_id)
        yield instance
        if instance.series:
            instance.finalize()

    return collector


fig4_collector = _collector_fixture("fig4")
fig5_collector = _collector_fixture("fig5")
fig6_collector = _collector_fixture("fig6")
fig7_collector = _collector_fixture("fig7")
