"""Committed baseline of grandfathered lint findings.

A baseline lets the linter gate *new* findings in CI while known historical
ones are burned down incrementally.  Entries are line-independent
fingerprints ``(rule, path, message)`` with an occurrence count, so pure
line shifts (edits elsewhere in the file) do not invalidate the baseline,
while any new instance of a grandfathered pattern still fails the build.

Workflow::

    python -m repro.lint src/repro --write-baseline   # snapshot current tree
    git add lint-baseline.json                        # commit the debt
    # ... later: fix an entry, re-run --write-baseline to shrink the file.

The checked-in ``lint-baseline.json`` of this repository is empty: the tree
lints clean and must stay that way.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.lint.findings import Finding

#: Version stamp of the baseline file layout.
BASELINE_VERSION = 1

#: Conventional baseline filename, auto-detected by the CLI.
DEFAULT_BASELINE_NAME = "lint-baseline.json"

Fingerprint = Tuple[str, str, str]


@dataclass
class Baseline:
    """Multiset of grandfathered finding fingerprints."""

    entries: Dict[Fingerprint, int] = field(default_factory=dict)

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        entries: Dict[Fingerprint, int] = {}
        for finding in findings:
            entries[finding.fingerprint] = entries.get(finding.fingerprint, 0) + 1
        return cls(entries=entries)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(
                f"cannot read baseline {path!r}: {exc}"
            ) from exc
        if not isinstance(payload, dict) or "entries" not in payload:
            raise ConfigurationError(
                f"baseline {path!r} is not a v{BASELINE_VERSION} baseline file"
            )
        entries: Dict[Fingerprint, int] = {}
        for entry in payload["entries"]:
            fingerprint = (entry["rule"], entry["path"], entry["message"])
            entries[fingerprint] = int(entry.get("count", 1))
        return cls(entries=entries)

    def save(self, path: str) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "entries": [
                {"rule": rule, "path": file_path, "message": message,
                 "count": count}
                for (rule, file_path, message), count in sorted(
                    self.entries.items()
                )
            ],
        }
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
        os.replace(tmp, path)

    def apply(self, findings: List[Finding]) -> Tuple[List[Finding], int]:
        """Split findings into (new, baselined-count).

        Each baseline entry absorbs up to ``count`` matching findings;
        anything beyond that is a *new* instance and is reported.
        """
        remaining = dict(self.entries)
        kept: List[Finding] = []
        absorbed = 0
        for finding in sorted(findings):
            budget = remaining.get(finding.fingerprint, 0)
            if budget > 0:
                remaining[finding.fingerprint] = budget - 1
                absorbed += 1
            else:
                kept.append(finding)
        return kept, absorbed

    def __len__(self) -> int:
        return sum(self.entries.values())
