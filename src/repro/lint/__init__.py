"""Determinism sanitizer: static + runtime enforcement of simulation invariants.

The NetRS reproduction's headline guarantees -- parallel sweeps that merge
byte-identically to serial runs, caches that leave traces bit-for-bit
unchanged -- all rest on three invariants no test directly checks:

1. every random draw flows through seeded :mod:`repro.sim.rng` streams,
2. simulated code never reads the wall clock,
3. event scheduling never depends on hash/iteration order.

This package enforces them.  :mod:`repro.lint.engine` runs an AST rule suite
(``DET001``..``DET005``, ``SIM001``/``SIM002``, ``API001`` -- see
``docs/LINTING.md``) with ``# repro: noqa(RULE)`` suppressions and a
committed baseline for grandfathered findings; :mod:`repro.lint.runtime`
provides :func:`deterministic_guard`, which patches the global RNG entry
points to raise during a simulation.  ``netrs lint`` / ``python -m
repro.lint`` is the CLI; ``make lint`` gates it in CI.

:mod:`repro.lint.contracts` adds the *contract sanitizer*: declared
cross-implementation contracts (mirror pairs, RNG stream order, config
digest completeness -- rules ``CON001``..``CON003``) checked statically by
``netrs contracts`` / ``netrs lint --contracts``.  Declarations live next
to the code they bind (``repro.mesoscale.contracts``,
``repro.sim.contracts``, ``repro.experiments.contracts``).
"""

from repro.lint.baseline import Baseline
from repro.lint.contracts import (
    CONTRACT_RULES,
    ContractRegistry,
    check_contracts,
    default_registry,
)
from repro.lint.engine import LintReport, lint_paths, lint_source
from repro.lint.findings import Finding
from repro.lint.rules import RULES, Rule
from repro.lint.runtime import NondeterminismError, deterministic_guard

__all__ = [
    "Baseline",
    "CONTRACT_RULES",
    "ContractRegistry",
    "Finding",
    "LintReport",
    "NondeterminismError",
    "RULES",
    "Rule",
    "check_contracts",
    "default_registry",
    "deterministic_guard",
    "lint_paths",
    "lint_source",
]
