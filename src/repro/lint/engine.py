"""Analysis driver: walk files, run checkers, apply noqa and baseline.

The engine is deterministic end to end -- files are discovered in sorted
order, checkers run in sorted rule order, and findings sort by location --
so two runs over the same tree produce byte-identical reports (the same
property the simulator itself guarantees, applied to its own tooling).

Suppressions use a project-specific marker so they cannot collide with
flake8/ruff semantics::

    started = time.perf_counter()  # repro: noqa(DET002) - reported only
    anything = ...                 # repro: noqa          (all rules)
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError
from repro.lint import checkers as _checkers  # noqa: F401 - registers rules
from repro.lint.baseline import Baseline
from repro.lint.contracts import CONTRACT_RULES, check_contracts, default_registry
from repro.lint.findings import JSON_REPORT_VERSION, Finding
from repro.lint.rules import RULES, ModuleContext, checkers_for

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\s*\(\s*(?P<rules>[A-Za-z0-9_\-,\s]+)\s*\))?",
    re.IGNORECASE,
)


def parse_suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map 1-based line numbers to suppressed rule ids.

    ``None`` means the line suppresses *every* rule (bare ``repro: noqa``).
    """
    suppressions: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if not match:
            continue
        spec = match.group("rules")
        if spec is None:
            suppressions[lineno] = None
        else:
            rules = {
                token.strip().upper().replace("-", "")
                for token in spec.split(",")
                if token.strip()
            }
            suppressions[lineno] = rules
    return suppressions


def is_suppressed(
    finding: Finding, suppressions: Dict[int, Optional[Set[str]]]
) -> bool:
    rules = suppressions.get(finding.line, "absent")
    if rules == "absent":
        return False
    if rules is None:
        return True
    return finding.rule.replace("-", "") in rules


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d not in ("__pycache__", ".git")
                )
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        else:
            raise ConfigurationError(f"no such file or directory: {path!r}")
    return sorted(dict.fromkeys(os.path.normpath(f) for f in files))


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding]
    files_analyzed: int
    suppressed: int = 0
    baselined: int = 0
    parse_errors: List[Finding] = field(default_factory=list)
    #: Declared contracts checked (0 when the contract pass did not run).
    contracts_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings and not self.parse_errors

    def per_rule_counts(self) -> Dict[str, int]:
        """Finding count per registered rule (zero-filled, sorted keys)."""
        rule_ids = set(RULES)
        if self.contracts_checked:
            rule_ids |= set(CONTRACT_RULES)
        counts = {rule_id: 0 for rule_id in sorted(rule_ids)}
        for finding in self.findings:
            counts.setdefault(finding.rule, 0)
            counts[finding.rule] += 1
        return counts

    def to_json(self) -> Dict[str, object]:
        return {
            "version": JSON_REPORT_VERSION,
            "files_analyzed": self.files_analyzed,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "findings": [f.to_json() for f in sorted(self.findings)],
            "parse_errors": [f.to_json() for f in sorted(self.parse_errors)],
            "stats": {
                "per_rule": self.per_rule_counts(),
                "contracts_checked": self.contracts_checked,
            },
        }


def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint one module given as text (the unit-test entry point).

    Returns findings after noqa suppression, sorted by location.
    """
    findings, _suppressed = _lint_module(source, path)
    return sorted(findings)


def _lint_module(source: str, path: str) -> Tuple[List[Finding], int]:
    tree = ast.parse(source, filename=path)
    module = ModuleContext(path=path, tree=tree, source=source)
    raw: List[Finding] = []
    for checker in checkers_for(module):
        raw.extend(checker.run())
    suppressions = parse_suppressions(source)
    kept = [f for f in raw if not is_suppressed(f, suppressions)]
    return kept, len(raw) - len(kept)


def lint_paths(
    paths: Sequence[str],
    *,
    baseline: Optional[Baseline] = None,
    display_relative_to: Optional[str] = None,
    contracts: bool = False,
    contracts_only: bool = False,
) -> LintReport:
    """Lint every ``.py`` file under ``paths``.

    ``display_relative_to`` rebases reported paths (defaults to the current
    working directory when files live under it) so findings and baselines
    are machine-independent.

    ``contracts=True`` additionally runs the declared-contract pass
    (:mod:`repro.lint.contracts`, rules CON001..CON003) anchored at the
    display base directory; its findings go through the same noqa and
    baseline machinery as per-file findings.  ``contracts_only=True`` skips
    the per-file rules entirely (``netrs contracts``) -- contract sites are
    declared, not discovered, so ``paths`` is ignored in that mode.
    """
    files = [] if contracts_only else iter_python_files(paths)
    base_dir = display_relative_to or os.getcwd()
    all_findings: List[Finding] = []
    parse_errors: List[Finding] = []
    suppressed = 0
    for file_path in files:
        display = _display_path(file_path, base_dir)
        try:
            with open(file_path, "r", encoding="utf-8") as handle:
                source = handle.read()
            findings, skipped = _lint_module(source, display)
        except SyntaxError as exc:
            parse_errors.append(
                Finding(
                    path=display,
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    rule="PARSE",
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        suppressed += skipped
        all_findings.extend(findings)

    contracts_checked = 0
    if contracts or contracts_only:
        registry = default_registry()
        contracts_checked = registry.total()
        kept, skipped = _suppress_contract_findings(
            check_contracts(base_dir, registry=registry), base_dir
        )
        suppressed += skipped
        all_findings.extend(kept)

    baselined = 0
    if baseline is not None:
        all_findings, baselined = baseline.apply(all_findings)

    return LintReport(
        findings=sorted(all_findings),
        files_analyzed=len(files),
        suppressed=suppressed,
        baselined=baselined,
        parse_errors=sorted(parse_errors),
        contracts_checked=contracts_checked,
    )


def _suppress_contract_findings(
    findings: Sequence[Finding], base_dir: str
) -> Tuple[List[Finding], int]:
    """Apply per-file ``# repro: noqa`` markers to contract findings.

    Contract findings anchor at a statement in a declared source file, so
    the same suppression syntax works; the files were not necessarily part
    of the lint walk, hence the separate read here (unreadable files keep
    their findings -- a missing site is itself a finding).
    """
    cache: Dict[str, Dict[int, Optional[Set[str]]]] = {}
    kept: List[Finding] = []
    skipped = 0
    for finding in findings:
        suppressions = cache.get(finding.path)
        if suppressions is None:
            try:
                full_path = os.path.join(base_dir, finding.path)
                with open(full_path, "r", encoding="utf-8") as handle:
                    suppressions = parse_suppressions(handle.read())
            except OSError:
                suppressions = {}
            cache[finding.path] = suppressions
        if is_suppressed(finding, suppressions):
            skipped += 1
        else:
            kept.append(finding)
    return kept, skipped


def _display_path(file_path: str, base_dir: str) -> str:
    absolute = os.path.abspath(file_path)
    base = os.path.abspath(base_dir)
    if absolute == base or absolute.startswith(base + os.sep):
        return os.path.relpath(absolute, base).replace(os.sep, "/")
    return absolute.replace(os.sep, "/")
