"""Finding records produced by the determinism sanitizer.

A :class:`Finding` pins one rule violation to a file/line/column.  Findings
are value objects: they sort deterministically (path, line, column, rule) so
text and JSON reports are byte-stable for a given tree, and they reduce to a
*fingerprint* -- ``(rule, path, message)`` without the line number -- so a
committed baseline survives unrelated edits that only shift lines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

#: Version stamp of the JSON report layout (bump on breaking changes).
JSON_REPORT_VERSION = 1


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    @property
    def fingerprint(self) -> Tuple[str, str, str]:
        """Line-independent identity used for baseline matching."""
        return (self.rule, self.path, self.message)

    def to_json(self) -> Dict[str, Any]:
        """JSON-serialisable dict (stable key order)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def format_text(self) -> str:
        """One-line human-readable rendering (``path:line:col RULE message``)."""
        return f"{self.path}:{self.line}:{self.col} {self.rule} {self.message}"
