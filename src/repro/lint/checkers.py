"""AST checkers for the determinism/simulation rules (DET*, SIM*, API*).

Every checker is purely syntactic: it inspects one module's AST with no type
inference, erring toward precision (few false positives) over recall.  What a
rule cannot see statically is documented in ``docs/LINTING.md``; the runtime
guard (:mod:`repro.lint.runtime`) covers the dynamic blind spots for DET001.

Importing this module populates :data:`repro.lint.rules.RULES`.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.rules import Checker, register_rule

# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def last_two(dotted: str) -> Tuple[str, str]:
    parts = dotted.rsplit(".", 2)
    if len(parts) == 1:
        return ("", parts[0])
    return (parts[-2], parts[-1])


#: Environment methods that put work on the simulation schedule.  Feeding
#: them from an unordered container (or a stale closure) breaks determinism.
SCHEDULING_METHODS = frozenset(
    {
        "call_at",
        "call_in",
        "post_at",
        "post_in",
        "timeout",
        "process",
        "succeed",
        "fail",
        "add_callback",
        "_schedule_event",
    }
)


def _scheduling_calls(nodes: Iterable[ast.AST]) -> List[ast.Call]:
    """Calls to Environment scheduling methods anywhere below ``nodes``."""
    found: List[ast.Call] = []
    for root in nodes:
        for node in ast.walk(root):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in SCHEDULING_METHODS
            ):
                found.append(node)
    return found


# ---------------------------------------------------------------------------
# DET001 -- unseeded randomness outside the RNG registry
# ---------------------------------------------------------------------------

#: numpy.random names that merely *construct* generators from explicit seed
#: material.  They are deterministic plumbing, needed by repro.sim.rng and
#: acceptable in type annotations everywhere.
_RNG_CONSTRUCTORS = frozenset(
    {"Generator", "BitGenerator", "SeedSequence", "PCG64", "PCG64DXSM",
     "Philox", "SFC64", "MT19937"}
)


@register_rule(
    rule_id="DET001",
    title="randomness must flow through repro.sim.rng streams",
    rationale=(
        "Every stochastic draw in a simulation must come from a named, "
        "seed-derived numpy Generator (repro.sim.rng.RngRegistry).  The "
        "stdlib `random` module and numpy's module-level convenience "
        "functions (np.random.default_rng, np.random.seed, ...) hold global "
        "or fresh-entropy state, so two runs of the same seed diverge and "
        "the byte-identity guarantees of the parallel executor and the "
        "route/engine caches silently evaporate."
    ),
    example_bad="import random\njitter = random.random()",
    example_fix=(
        "rng = registry.stream('client.jitter')  # RngRegistry from the seed\n"
        "jitter = rng.random()"
    ),
)
class Det001UnseededRandom(Checker):
    allowed_path_suffixes = ("repro/sim/rng.py",)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self.report(node, "import of the stdlib `random` module")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if module == "random" or module.startswith("random."):
            self.report(node, "import from the stdlib `random` module")
        elif module in ("numpy.random", "np.random"):
            bad = [a.name for a in node.names if a.name not in _RNG_CONSTRUCTORS]
            if bad:
                self.report(
                    node,
                    "import of numpy.random function(s) "
                    f"{', '.join(sorted(bad))} (use a repro.sim.rng stream)",
                )
        elif module == "numpy":
            if any(alias.name == "random" for alias in node.names):
                self.report(node, "import of the numpy.random module")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        if dotted is not None:
            if dotted.startswith("random."):
                self.report(
                    node,
                    f"call to stdlib `{dotted}` (use a repro.sim.rng stream)",
                )
            elif dotted.startswith(("np.random.", "numpy.random.")):
                attr = dotted.rsplit(".", 1)[-1]
                if attr not in _RNG_CONSTRUCTORS:
                    self.report(
                        node,
                        f"call to `{dotted}` (use a repro.sim.rng stream)",
                    )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# DET002 -- wall-clock reads in simulated code
# ---------------------------------------------------------------------------

_WALL_CLOCK_CALLS = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("time", "process_time"),
        ("time", "process_time_ns"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
    }
)


@register_rule(
    rule_id="DET002",
    title="no wall-clock reads outside the benchmark/progress modules",
    rationale=(
        "Simulated time is Environment.now; reading the host clock "
        "(time.time, time.perf_counter, datetime.now, ...) inside simulated "
        "paths couples results to machine speed and breaks replay.  Only "
        "repro/sim/bench.py (benchmark harness) and repro/exec/progress.py "
        "(stderr ETA reporting) legitimately measure real time.  Wall-clock "
        "instrumentation elsewhere (e.g. solver wall time that is reported "
        "but never fed back into simulated state) must carry an explicit "
        "`# repro: noqa(DET002)` justifying itself."
    ),
    example_bad="started = time.perf_counter()",
    example_fix=(
        "t0 = env.now            # simulated duration, or\n"
        "started = time.perf_counter()  # repro: noqa(DET002) - reported only"
    ),
)
class Det002WallClock(Checker):
    allowed_path_suffixes = ("repro/sim/bench.py", "repro/exec/progress.py")

    def visit_Call(self, node: ast.Call) -> None:
        dotted = dotted_name(node.func)
        if dotted is not None and last_two(dotted) in _WALL_CLOCK_CALLS:
            self.report(node, f"wall-clock read `{dotted}` in simulated code")
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# DET003 -- unordered iteration feeding the event schedule
# ---------------------------------------------------------------------------


def _is_unordered_iterable(node: ast.AST) -> bool:
    """True for expressions whose iteration order is hash-dependent."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in (
            "intersection",
            "union",
            "difference",
            "symmetric_difference",
        ):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
    ):
        # Set algebra (a & b, a - b, ...) -- only counted when a side is
        # itself evidently a set, to avoid flagging integer arithmetic.
        return _is_unordered_iterable(node.left) or _is_unordered_iterable(
            node.right
        )
    return False


@register_rule(
    rule_id="DET003",
    title="sort set iteration before scheduling events from it",
    rationale=(
        "Iterating a set (or any hash-ordered container) enumerates string "
        "elements in a PYTHONHASHSEED-dependent order.  If the loop body "
        "schedules simulation work (Environment.post*/call_*/timeout/...), "
        "the event sequence numbers -- and therefore tie-breaking -- differ "
        "between runs.  Wrap the iterable in sorted() to pin the order."
    ),
    example_bad=(
        "for host in {pkt.src, pkt.dst}:\n"
        "    env.post_in(delay, deliver, (host,))"
    ),
    example_fix=(
        "for host in sorted({pkt.src, pkt.dst}):\n"
        "    env.post_in(delay, deliver, (host,))"
    ),
)
class Det003UnorderedScheduling(Checker):
    def _check_loop(self, node) -> None:
        if _is_unordered_iterable(node.iter) and _scheduling_calls(node.body):
            self.report(
                node,
                "iteration over an unordered set feeds event scheduling; "
                "wrap the iterable in sorted()",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_loop(node)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_loop(node)
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# DET004 -- exact float equality against simulated time
# ---------------------------------------------------------------------------

_TIME_ATTRS = frozenset({"now", "_now", "sim_time"})
_TIME_NAMES = frozenset({"now", "sim_time", "simulated_time"})


def _is_sim_time(node: ast.AST) -> bool:
    if isinstance(node, ast.Attribute):
        return node.attr in _TIME_ATTRS
    if isinstance(node, ast.Name):
        return node.id in _TIME_NAMES
    return False


@register_rule(
    rule_id="DET004",
    title="no exact == / != against simulated time",
    rationale=(
        "Simulated timestamps are floats accumulated through repeated "
        "addition; two mathematically equal instants can differ in the last "
        "ulp depending on evaluation order, so `env.now == deadline` is a "
        "latent heisenbug.  Compare with <=/>= against an interval, or use "
        "math.isclose with an explicit tolerance."
    ),
    example_bad="if env.now == deadline:",
    example_fix="if env.now >= deadline:  # or math.isclose(env.now, deadline)",
)
class Det004FloatTimeEquality(Checker):
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.Eq, ast.NotEq)) and (
                _is_sim_time(left) or _is_sim_time(right)
            ):
                self.report(
                    node,
                    "exact ==/!= comparison against simulated time; "
                    "use an ordering comparison or math.isclose",
                )
                break
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# DET005 -- mutable default arguments
# ---------------------------------------------------------------------------

_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "deque", "defaultdict", "OrderedDict", "Counter",
     "bytearray"}
)


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        return name in _MUTABLE_FACTORIES
    return False


@register_rule(
    rule_id="DET005",
    title="no mutable default arguments",
    rationale=(
        "A mutable default ([] / {} / set()) is evaluated once at def time "
        "and shared across every call.  In a simulation that is cross-run "
        "state leakage: the second experiment in a process observes residue "
        "of the first, so results depend on call history rather than the "
        "seed.  Use None and construct inside the function."
    ),
    example_bad="def run(batch, sinks=[]):",
    example_fix=(
        "def run(batch, sinks=None):\n"
        "    if sinks is None:\n"
        "        sinks = []"
    ),
)
class Det005MutableDefault(Checker):
    def _check(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                self.report(default, "mutable default argument")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check(node)
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# SIM001 -- scheduling callbacks that close over loop variables
# ---------------------------------------------------------------------------


def _loop_target_names(target: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            names.add(node.id)
    return names


@register_rule(
    rule_id="SIM001",
    title="scheduled lambdas must not close over loop variables",
    rationale=(
        "A lambda passed to Environment.call_*/post_*/add_callback inside a "
        "for loop captures the loop *variable*, not its value; by the time "
        "the engine fires the callback the loop has finished and every "
        "callback sees the final iteration's value.  Bind the value eagerly "
        "with a default argument or functools.partial."
    ),
    example_bad=(
        "for server in servers:\n"
        "    env.call_in(d, lambda: server.poll())"
    ),
    example_fix=(
        "for server in servers:\n"
        "    env.call_in(d, lambda s=server: s.poll())"
    ),
)
class Sim001LoopClosure(Checker):
    def _lambda_captures(self, lam: ast.Lambda, targets: Set[str]) -> Set[str]:
        params = {a.arg for a in (
            lam.args.args + lam.args.posonlyargs + lam.args.kwonlyargs
        )}
        if lam.args.vararg:
            params.add(lam.args.vararg.arg)
        if lam.args.kwarg:
            params.add(lam.args.kwarg.arg)
        captured: Set[str] = set()
        for node in ast.walk(lam.body):
            if isinstance(node, ast.Name) and node.id in targets:
                if node.id not in params:
                    captured.add(node.id)
        return captured

    def _check_loop(self, node) -> None:
        targets = _loop_target_names(node.target)
        if not targets:
            return
        for call in _scheduling_calls(node.body):
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                if isinstance(arg, ast.Lambda):
                    captured = self._lambda_captures(arg, targets)
                    if captured:
                        self.report(
                            arg,
                            "scheduled lambda closes over loop "
                            f"variable(s) {', '.join(sorted(captured))}; "
                            "bind with a default argument "
                            "(lambda x=x: ...) or functools.partial",
                        )

    def visit_For(self, node: ast.For) -> None:
        self._check_loop(node)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_loop(node)
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# SIM002 -- entry points must be reproducible from a seed
# ---------------------------------------------------------------------------

_RNG_PARAM_NAMES = frozenset({"rng", "generator", "random_state"})
_SEED_SOURCE_PARAMS = frozenset({"seed", "config", "base"})


@register_rule(
    rule_id="SIM002",
    title="public entry points taking an RNG must also take a seed source",
    rationale=(
        "A public module-level function that accepts a Generator but no "
        "seed (or config carrying one) cannot fall back deterministically: "
        "the tempting default is np.random.default_rng(), i.e. fresh "
        "entropy.  Entry points must accept `seed` (or a config object) and "
        "derive the stream via repro.sim.rng when the caller passes no rng."
    ),
    example_bad="def create_selector(name, *, rng=None): ...",
    example_fix=(
        "def create_selector(name, *, rng=None, seed=0):\n"
        "    rng = rng or stream_from_seed(seed, f'selector.{name}')"
    ),
)
class Sim002SeedlessEntryPoint(Checker):
    def visit_Module(self, node: ast.Module) -> None:
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name.startswith("_"):
                continue
            args = stmt.args
            names = {
                a.arg
                for a in args.args + args.posonlyargs + args.kwonlyargs
            }
            if names & _RNG_PARAM_NAMES and not names & _SEED_SOURCE_PARAMS:
                self.report(
                    stmt,
                    f"public entry point `{stmt.name}` accepts an RNG but "
                    "no `seed`/`config` parameter to derive one "
                    "deterministically",
                )
        # Module-level functions only: no generic_visit.


# ---------------------------------------------------------------------------
# API001 -- __all__ completeness and validity
# ---------------------------------------------------------------------------


@register_rule(
    rule_id="API001",
    title="__all__ must match the module's public definitions",
    rationale=(
        "Modules that declare __all__ are the package's public surface; a "
        "public def/class missing from __all__ is an accidental export "
        "(star-imports and docs disagree with intent), and an __all__ entry "
        "that names nothing is an import-time lie.  Keep __all__ exhaustive "
        "and valid."
    ),
    example_bad=(
        "__all__ = ['run']\n"
        "def run(): ...\n"
        "def report(): ...   # public but unlisted"
    ),
    example_fix="__all__ = ['report', 'run']",
)
class Api001DunderAll(Checker):
    def visit_Module(self, node: ast.Module) -> None:
        declared: Optional[List[Tuple[str, ast.AST]]] = None
        defined: Set[str] = set()
        imported: Set[str] = set()
        definitions: List[Tuple[str, ast.AST]] = []

        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                defined.add(stmt.name)
                definitions.append((stmt.name, stmt))
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        if target.id == "__all__":
                            declared = self._literal_all(stmt.value)
                        else:
                            defined.add(target.id)
                            definitions.append((target.id, stmt))
            elif isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name):
                    defined.add(stmt.target.id)
                    definitions.append((stmt.target.id, stmt))
            elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in stmt.names:
                    imported.add(alias.asname or alias.name.split(".")[0])

        if declared is None:
            return  # no __all__: module opted out of the contract
        declared_names = {name for name, _ in declared}
        for name, anchor in declared:
            if name not in defined and name not in imported:
                self.report(
                    anchor,
                    f"__all__ lists {name!r} which the module neither "
                    "defines nor imports",
                )
        for name, stmt in definitions:
            if name.startswith("_") or name in declared_names:
                continue
            self.report(
                stmt,
                f"public name {name!r} is defined but missing from __all__",
            )

    def _literal_all(
        self, value: ast.AST
    ) -> List[Tuple[str, ast.AST]]:
        names: List[Tuple[str, ast.AST]] = []
        if isinstance(value, (ast.List, ast.Tuple)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    names.append((element.value, element))
        return names


# ---------------------------------------------------------------------------
# PERF001 -- scalar RNG draws on the simulator's hot paths
# ---------------------------------------------------------------------------

#: Generator methods with a batched equivalent in repro.sim.rng.
_SCALAR_DRAW_METHODS = frozenset({"random", "exponential", "integers"})

#: Receiver names that conventionally hold a numpy Generator.  Matching by
#: name keeps the rule purely syntactic; `_draws` (the DrawSource slot fed
#: by BatchedStream) is deliberately absent.  Role-named generators like
#: ``_arrival_rng`` match via the ``_rng`` suffix (see :func:`_is_rng_name`).
_RNG_RECEIVER_NAMES = frozenset(
    {"rng", "_rng", "gen", "generator", "random_state"}
)


def _is_rng_name(name: str) -> bool:
    return name in _RNG_RECEIVER_NAMES or name.endswith("_rng")


#: POSIX path fragments of the per-request hot modules the rule covers.
#: Everywhere else (experiments setup, analysis, selection bootstrap) draws
#: run O(1) per experiment and batching would be noise.  The mesoscale flow
#: tier is per-*request* rather than per-packet but still draws inside the
#: request loop, so it counts.
_HOT_PATH_FRAGMENTS = ("repro/kvstore/", "repro/network/", "repro/mesoscale/")


@register_rule(
    rule_id="PERF001",
    title="hot-path scalar RNG draws should go through BatchedStream",
    rationale=(
        "In repro.kvstore and repro.network a Generator draw runs once per "
        "request (arrivals, service times, think times, jitter), where "
        "numpy's per-call dispatch dominates the draw itself.  "
        "repro.sim.rng.BatchedStream pre-draws 1024-value blocks and serves "
        "scalars from them with the bit-identical value sequence, so hot "
        "paths should take a BatchedStream (conventionally a `_draws` "
        "attribute) instead of calling `rng.exponential()` and friends one "
        "value at a time.  Genuinely mixed-family streams (e.g. the "
        "open-loop arrival process) must stay scalar and say so with "
        "`# repro: noqa(PERF001)`; vectorized draws (`size=...`) are "
        "already batched and never flagged."
    ),
    example_bad="delay = self._rng.exponential(scale)  # one draw per request",
    example_fix=(
        "self._draws = registry.batched('server.service', block_size=1024)\n"
        "delay = self._draws.exponential(scale)"
    ),
)
class Perf001ScalarHotDraw(Checker):
    def run(self) -> List[Finding]:
        path = self.module.posix_path()
        if not any(fragment in path for fragment in _HOT_PATH_FRAGMENTS):
            return self.findings  # cold module: rule does not apply
        return super().run()

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _SCALAR_DRAW_METHODS
        ):
            receiver = func.value
            name: Optional[str] = None
            if isinstance(receiver, ast.Name):
                name = receiver.id
            elif isinstance(receiver, ast.Attribute):
                name = receiver.attr
            if (
                name is not None
                and _is_rng_name(name)
                and not any(kw.arg == "size" for kw in node.keywords)
            ):
                self.report(
                    node,
                    f"scalar `{name}.{func.attr}()` on a per-request hot "
                    "path; serve it from a repro.sim.rng.BatchedStream "
                    "(or draw a vector with size=...)",
                )
        self.generic_visit(node)
