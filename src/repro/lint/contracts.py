"""Contract sanitizer: static cross-implementation drift detection (CON*).

The repo's bit-identity guarantees rest on *mirrored* code: the mesoscale
flow tier replays the packet tier's client/server/selector logic line for
line, and the compiled numba/cython kernels replay their pure-Python
reference loops operation for operation.  Runtime byte-identity suites only
catch drift on the scenarios they run; this module checks the declared
contracts statically, on every lint run, over every code path.

Three rule families:

* **CON001 mirror-pair equivalence** -- a registry of :class:`MirrorPair`
  declarations is checked by normalized-AST comparison: docstrings,
  annotations and asserts are stripped, per-side rename maps unify
  vocabulary (``self.env`` vs ``self.engine``), declared *drop patterns*
  remove tier-specific transport statements, and declared *equivalences*
  whitelist known-safe rewrites (``env.post_in(...)`` vs
  ``heappush``-backed ``engine._post(...)``).  The first divergent
  statement is reported with both spellings.  :class:`ExprAnchor`
  contracts additionally pin a formula (e.g. the C3 cubic score) that must
  appear, normalized, at every declared site.
* **CON002 RNG stream-order** -- :class:`StreamFamilyContract` compares the
  set of named RNG stream families created on each side (a renamed family
  is a silently different seed); :class:`DrawSequencePair` compares the
  ordered draw sequence on a shared mixed-family stream (a reordered draw
  shifts every later value on that stream).
* **CON003 config-digest completeness** -- :class:`DigestContract` enforces
  the forward-compat dance for :class:`ExperimentConfig` knobs: every field
  added after the founding manifest must carry a ``_DIGEST_DEFAULTS`` entry
  (whose value must equal the field default) and a declared CLI route, so
  adding a knob can never silently invalidate existing ledgers.

Declarations live next to the code they bind (``repro.mesoscale.contracts``,
``repro.sim.contracts``, ``repro.experiments.contracts``) and are aggregated
lazily by :func:`default_registry`.  ``netrs lint --contracts`` (and ``netrs
contracts``) runs the pass through the ordinary engine/baseline machinery;
``# repro: noqa(CON001)`` on the anchor line suppresses a finding like any
other rule.
"""

from __future__ import annotations

import ast
import copy
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.lint.findings import Finding
from repro.lint.rules import Checker, Rule

# ---------------------------------------------------------------------------
# Declaration dataclasses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Site:
    """One function (or method) in one module, repo-relative."""

    path: str  #: POSIX path from the repo root, e.g. "src/repro/kvstore/client.py"
    qualname: str  #: "KVClient._fire_redundant" or a module-level "chained_arrival"

    def label(self) -> str:
        return f"{self.path}:{self.qualname}"


@dataclass(frozen=True)
class MirrorPair:
    """Two function bodies declared equivalent up to listed rewrites.

    ``renames`` / ``mirror_renames`` map an exact normalized expression
    spelling to a replacement expression, unifying the two vocabularies
    (longest/outermost match wins; applied recursively).  ``drop_reference``
    / ``drop_mirror`` remove tier-specific statements before comparison --
    a pattern is a statement in the side's own vocabulary; compound
    patterns written ``if cond: ...`` match on the header alone.
    ``equivalences`` lists ``(reference, mirror)`` statement or header
    spellings (post-rename vocabulary) accepted as equal.
    """

    name: str
    reference: Site
    mirror: Site
    renames: Tuple[Tuple[str, str], ...] = ()
    mirror_renames: Tuple[Tuple[str, str], ...] = ()
    drop_reference: Tuple[str, ...] = ()
    drop_mirror: Tuple[str, ...] = ()
    equivalences: Tuple[Tuple[str, str], ...] = ()


@dataclass(frozen=True)
class AnchorSite:
    """One location where an anchored expression must appear."""

    site: Site
    renames: Tuple[Tuple[str, str], ...] = ()


@dataclass(frozen=True)
class ExprAnchor:
    """An expression that must appear, normalized, at every site.

    Used for formulas mirrored into contexts whose surrounding control flow
    legitimately differs (the C3 cubic score appears in a method, a scalar
    loop and two kernels).  Each site's renames map its local spellings
    onto the canonical placeholder names of ``expr``.
    """

    name: str
    expr: str
    sites: Tuple[AnchorSite, ...]


@dataclass(frozen=True)
class StreamFamilyContract:
    """The named RNG stream families of two tiers must agree.

    Families are the first argument of ``rng.stream(...)`` /
    ``rng.batched(...)`` calls; f-string names collapse to a family glob
    (``f"service.{name}"`` -> ``service.*``).  A family present on one side
    only must be declared in the corresponding exemption set.
    """

    name: str
    reference_paths: Tuple[str, ...]
    mirror_paths: Tuple[str, ...]
    reference_only: Tuple[str, ...] = ()
    mirror_only: Tuple[str, ...] = ()


@dataclass(frozen=True)
class DrawSequencePair:
    """Ordered draw sequence on a shared mixed-family stream.

    Both functions must touch the named generator attribute in the same
    order: direct draws record as ``<rng>.<method>``, calls that pass the
    generator onward record as ``<callee>(<rng>)``.  Draws listed in
    ``reference_only_draws`` may appear on the reference side without a
    mirror counterpart (e.g. the write-fraction check on a read-only
    mirror); everything else must match as an ordered sequence.
    """

    name: str
    reference: Site
    mirror: Site
    reference_rng: str  #: attribute name holding the stream, e.g. "_rng"
    mirror_rng: str
    reference_only_draws: Tuple[str, ...] = ()


@dataclass(frozen=True)
class DigestContract:
    """The forward-compat invariants of the job-key config digest."""

    name: str
    config_path: str
    config_class: str
    digest_path: str
    defaults_name: str  #: the elision dict, e.g. "_DIGEST_DEFAULTS"
    #: Fields that predate the contract: hashed unconditionally since the
    #: digest scheme was born, so eliding them now would invalidate every
    #: existing ledger.  Everything NOT listed here must carry an elision
    #: entry equal to its field default.
    founding_fields: Tuple[str, ...]
    cli_path: str = ""
    #: Fields reachable only through the generic ``netrs sweep <field>``
    #: route rather than a dedicated ``--flag`` (a conscious, declared
    #: decision per knob).
    cli_via_sweep: Tuple[str, ...] = ()


@dataclass
class ContractRegistry:
    """Everything the contract pass checks, aggregated across packages."""

    mirror_pairs: List[MirrorPair] = field(default_factory=list)
    expr_anchors: List[ExprAnchor] = field(default_factory=list)
    stream_families: List[StreamFamilyContract] = field(default_factory=list)
    draw_sequences: List[DrawSequencePair] = field(default_factory=list)
    digests: List[DigestContract] = field(default_factory=list)

    def extend(self, other: "ContractRegistry") -> None:
        self.mirror_pairs.extend(other.mirror_pairs)
        self.expr_anchors.extend(other.expr_anchors)
        self.stream_families.extend(other.stream_families)
        self.draw_sequences.extend(other.draw_sequences)
        self.digests.extend(other.digests)

    def total(self) -> int:
        """Number of declared contracts (for the CLI's stats footer)."""
        return (
            len(self.mirror_pairs)
            + len(self.expr_anchors)
            + len(self.stream_families)
            + len(self.draw_sequences)
            + len(self.digests)
        )


#: Modules whose module-level ``CONTRACTS`` registry is aggregated by
#: :func:`default_registry`.  Declarations live next to the code they bind.
CONTRACT_MODULES = (
    "repro.mesoscale.contracts",
    "repro.sim.contracts",
    "repro.experiments.contracts",
)


def default_registry() -> ContractRegistry:
    """Aggregate the per-package declaration modules (imported lazily)."""
    import importlib

    registry = ContractRegistry()
    for module_name in CONTRACT_MODULES:
        module = importlib.import_module(module_name)
        registry.extend(module.CONTRACTS)
    return registry


# ---------------------------------------------------------------------------
# Rule metadata (separate registry: contract rules are cross-module passes,
# not per-module checkers, so they do not join repro.lint.rules.RULES)
# ---------------------------------------------------------------------------


class _ContractPass(Checker):
    """Placeholder checker type: contract rules run over the whole tree."""

    def run(self) -> List[Finding]:  # pragma: no cover - never instantiated
        return []


CONTRACT_RULES: Dict[str, Rule] = {
    "CON001": Rule(
        rule_id="CON001",
        title="mirror pairs must stay AST-equivalent up to declared rewrites",
        rationale=(
            "The flow tier and the compiled kernels are hand-maintained "
            "copies of reference code; one un-replayed edit breaks "
            "bit-identity on exactly the configs the golden suites do not "
            "cover.  Each declared MirrorPair is compared as normalized "
            "ASTs (docstrings/annotations/asserts stripped, rename maps "
            "and declared transport drops applied); any remaining "
            "divergence is drift."
        ),
        example_bad=(
            "# KVServer._complete gained a statement ...\n"
            "self.rate_samples += 1\n"
            "# ... that _FlowServer._complete never received"
        ),
        example_fix=(
            "replay the edit into the mirror in the same commit, or\n"
            "declare the rewrite in the pair's contracts module"
        ),
        checker=_ContractPass,
    ),
    "CON002": Rule(
        rule_id="CON002",
        title="mirrored paths must draw from the same RNG streams in order",
        rationale=(
            "Stream families are seed-deriving names: a mirror that "
            "renames a family draws from a different bitstream, and a "
            "reordered draw on a shared mixed-family stream shifts every "
            "later value.  Runtime tests only catch this when a scenario "
            "exercises the draw; the static check covers every declared "
            "path."
        ),
        example_bad='flow tier: rng.stream("svc.{name}")  # packet tier says "service.{name}"',
        example_fix='use the identical family name: rng.batched(f"service.{name}", batch)',
        checker=_ContractPass,
    ),
    "CON003": Rule(
        rule_id="CON003",
        title="new config fields must keep old job digests valid",
        rationale=(
            "config_digest() hashes every ExperimentConfig field, so "
            "adding a knob silently changes every digest and orphans all "
            "existing ledgers -- unless the new field is elided at its "
            "default via _DIGEST_DEFAULTS (the PR6 forward-compat dance).  "
            "The contract makes the dance unforgettable: every "
            "post-founding field needs an elision entry matching its "
            "default, and a declared CLI route."
        ),
        example_bad="new_knob: int = 7   # added to ExperimentConfig, digest now differs",
        example_fix='_DIGEST_DEFAULTS = {..., "new_knob": 7}  # old ledgers keep resuming',
        checker=_ContractPass,
    ),
}


def contract_rule_ids() -> Tuple[str, ...]:
    return tuple(sorted(CONTRACT_RULES))


# ---------------------------------------------------------------------------
# AST normalization
# ---------------------------------------------------------------------------


class _Normalizer(ast.NodeTransformer):
    """Strip vocabulary-free noise: docstrings, annotations, asserts.

    Also canonicalizes spelling variants that are exactly equivalent
    (``math.isnan(x)`` -> ``x != x``) so mirrors may use either.
    """

    def visit_FunctionDef(self, node: ast.FunctionDef) -> ast.AST:
        self.generic_visit(node)
        node.returns = None
        for arg in (
            node.args.args + node.args.posonlyargs + node.args.kwonlyargs
        ):
            arg.annotation = None
        node.body = _strip_docstring(node.body)
        node.decorator_list = []
        return node

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_AnnAssign(self, node: ast.AnnAssign) -> Optional[ast.AST]:
        self.generic_visit(node)
        if node.value is None:
            return None  # bare declaration (cython loop-var typing)
        return ast.copy_location(
            ast.Assign(targets=[node.target], value=node.value), node
        )

    def visit_Assert(self, node: ast.Assert) -> Optional[ast.AST]:
        return None

    def visit_Call(self, node: ast.Call) -> ast.AST:
        self.generic_visit(node)
        # math.isnan(x)  ->  x != x   (the flow tier's allocation-free form)
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "isnan"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "math"
            and len(node.args) == 1
            and not node.keywords
        ):
            return ast.copy_location(
                ast.Compare(
                    left=node.args[0],
                    ops=[ast.NotEq()],
                    comparators=[copy.deepcopy(node.args[0])],
                ),
                node,
            )
        return node


def _strip_docstring(body: List[ast.stmt]) -> List[ast.stmt]:
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]
    return body or [ast.Pass()]


class _Renamer(ast.NodeTransformer):
    """Replace expressions by exact normalized spelling (outermost-first)."""

    def __init__(self, mapping: Mapping[str, ast.expr]) -> None:
        self.mapping = mapping

    def visit(self, node: ast.AST) -> ast.AST:
        if isinstance(node, ast.expr):
            replacement = self.mapping.get(ast.unparse(node))
            if replacement is not None:
                return ast.copy_location(copy.deepcopy(replacement), node)
        return self.generic_visit(node)


def _parse_renames(
    renames: Sequence[Tuple[str, str]], *, owner: str
) -> Dict[str, ast.expr]:
    mapping: Dict[str, ast.expr] = {}
    for spelling, replacement in renames:
        try:
            key = ast.unparse(ast.parse(spelling, mode="eval").body)
            value = ast.parse(replacement, mode="eval").body
        except SyntaxError as exc:
            raise ConfigurationError(
                f"contract {owner}: bad rename {spelling!r} -> "
                f"{replacement!r}: {exc}"
            ) from None
        mapping[key] = value
    return mapping


# ---------------------------------------------------------------------------
# Statement drop patterns
# ---------------------------------------------------------------------------

_COMPOUND = (ast.If, ast.For, ast.While, ast.With)


class _StatementMatcher:
    """One declared drop pattern.

    A pattern is parsed, normalized and matched by unparse text.  Compound
    patterns whose body is a lone ``...`` match any statement of the same
    type with the same header.
    """

    def __init__(self, pattern: str, *, owner: str) -> None:
        self.pattern = pattern
        try:
            module = ast.parse(pattern)
        except SyntaxError as exc:
            raise ConfigurationError(
                f"contract {owner}: unparseable drop pattern {pattern!r}: {exc}"
            ) from None
        if len(module.body) != 1:
            raise ConfigurationError(
                f"contract {owner}: drop pattern must be one statement: "
                f"{pattern!r}"
            )
        stmt = _normalize_stmt(module.body[0])
        self.header_only = False
        self.stmt_type = type(stmt)
        if isinstance(stmt, _COMPOUND) and _is_ellipsis_body(stmt.body):
            self.header_only = True
            self.header = _header_text(stmt)
        else:
            self.text = ast.unparse(stmt)

    def matches(self, stmt: ast.stmt) -> bool:
        if self.header_only:
            return (
                isinstance(stmt, self.stmt_type)
                and _header_text(stmt) == self.header
            )
        return ast.unparse(stmt) == self.text


def _is_ellipsis_body(body: List[ast.stmt]) -> bool:
    return (
        len(body) == 1
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and body[0].value.value is Ellipsis
    )


def _header_text(stmt: ast.stmt) -> str:
    """The comparison key of a compound statement, body excluded."""
    if isinstance(stmt, ast.If):
        return f"if {ast.unparse(stmt.test)}"
    if isinstance(stmt, ast.While):
        return f"while {ast.unparse(stmt.test)}"
    if isinstance(stmt, ast.For):
        return f"for {ast.unparse(stmt.target)} in {ast.unparse(stmt.iter)}"
    if isinstance(stmt, ast.With):
        items = ", ".join(ast.unparse(item) for item in stmt.items)
        return f"with {items}"
    return ast.unparse(stmt)


def _drop_statements(
    body: List[ast.stmt], matchers: Sequence[_StatementMatcher]
) -> List[ast.stmt]:
    """Remove matching statements from ``body`` and every nested body."""
    kept: List[ast.stmt] = []
    for stmt in body:
        if any(matcher.matches(stmt) for matcher in matchers):
            continue
        for attr in ("body", "orelse", "finalbody"):
            nested = getattr(stmt, attr, None)
            if isinstance(nested, list) and nested:
                setattr(stmt, attr, _drop_statements(nested, matchers))
        kept.append(stmt)
    return kept


def _normalize_stmt(stmt: ast.stmt) -> ast.stmt:
    module = ast.Module(body=[stmt], type_ignores=[])
    normalized = _Normalizer().visit(module)
    ast.fix_missing_locations(normalized)
    body = normalized.body
    return body[0] if body else ast.Pass()


# ---------------------------------------------------------------------------
# Module / site loading
# ---------------------------------------------------------------------------


class _SourceCache:
    """Parse each module once per contract run."""

    def __init__(self, base_dir: str) -> None:
        self.base_dir = base_dir
        self._trees: Dict[str, Optional[ast.Module]] = {}

    def tree(self, rel_path: str) -> Optional[ast.Module]:
        if rel_path not in self._trees:
            full = os.path.join(self.base_dir, rel_path.replace("/", os.sep))
            try:
                with open(full, "r", encoding="utf-8") as handle:
                    source = handle.read()
                self._trees[rel_path] = ast.parse(source, filename=rel_path)
            except (OSError, SyntaxError):
                self._trees[rel_path] = None
        return self._trees[rel_path]

    def function(self, site: Site) -> Optional[ast.FunctionDef]:
        tree = self.tree(site.path)
        if tree is None:
            return None
        parts = site.qualname.split(".")
        scope: List[ast.stmt] = tree.body
        node: Optional[ast.stmt] = None
        for part in parts:
            node = next(
                (
                    stmt
                    for stmt in scope
                    if isinstance(
                        stmt,
                        (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
                    )
                    and stmt.name == part
                ),
                None,
            )
            if node is None:
                return None
            scope = getattr(node, "body", [])
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node  # type: ignore[return-value]
        return None


def _missing_site(rule: str, site: Site, pair_name: str) -> Finding:
    return Finding(
        path=site.path,
        line=1,
        col=1,
        rule=rule,
        message=(
            f"contract {pair_name!r}: site {site.qualname} not found in "
            f"{site.path} (moved or renamed without updating the contract)"
        ),
    )


# ---------------------------------------------------------------------------
# CON001: mirror-pair comparison
# ---------------------------------------------------------------------------


def _prepared_body(
    function: ast.FunctionDef,
    drops: Sequence[str],
    renames: Sequence[Tuple[str, str]],
    *,
    owner: str,
) -> List[ast.stmt]:
    cloned = copy.deepcopy(function)
    cloned = _Normalizer().visit(cloned)
    ast.fix_missing_locations(cloned)
    matchers = [_StatementMatcher(p, owner=owner) for p in drops]
    body = _drop_statements(list(cloned.body), matchers)
    mapping = _parse_renames(renames, owner=owner)
    if mapping:
        renamer = _Renamer(mapping)
        body = [renamer.visit(stmt) for stmt in body]
        for stmt in body:
            ast.fix_missing_locations(stmt)
    return body


def _canon_equivalences(
    pairs: Sequence[Tuple[str, str]], *, owner: str
) -> set:
    canon = set()
    for ref_text, mir_text in pairs:
        canon.add((_canon_fragment(ref_text, owner), _canon_fragment(mir_text, owner)))
    return canon


def _canon_fragment(text: str, owner: str) -> str:
    """Normalize a declared statement/header spelling for comparison."""
    stripped = text.strip()
    for prefix in ("if ", "while "):
        if stripped.startswith(prefix) and stripped.endswith(": ..."):
            inner = stripped[len(prefix) : -len(": ...")]
            return prefix + _canon_expr(inner, owner)
    try:
        module = ast.parse(stripped)
    except SyntaxError:
        raise ConfigurationError(
            f"contract {owner}: unparseable equivalence fragment {text!r}"
        ) from None
    if len(module.body) != 1:
        raise ConfigurationError(
            f"contract {owner}: equivalence fragment must be one statement: "
            f"{text!r}"
        )
    return ast.unparse(_normalize_stmt(module.body[0]))


def _canon_expr(text: str, owner: str) -> str:
    try:
        return ast.unparse(ast.parse(text, mode="eval").body)
    except SyntaxError:
        raise ConfigurationError(
            f"contract {owner}: unparseable equivalence header {text!r}"
        ) from None


def _snippet(text: str, limit: int = 90) -> str:
    flat = "; ".join(line.strip() for line in text.splitlines() if line.strip())
    if len(flat) > limit:
        flat = flat[: limit - 3] + "..."
    return flat


class _PairComparator:
    def __init__(self, pair: MirrorPair) -> None:
        self.pair = pair
        self.equivalences = _canon_equivalences(pair.equivalences, owner=pair.name)

    def compare(
        self, ref_body: List[ast.stmt], mir_body: List[ast.stmt]
    ) -> Optional[Finding]:
        return self._compare_bodies(ref_body, mir_body)

    # The comparison walks both statement lists in lockstep: textual
    # equality or a declared equivalence accepts a statement outright;
    # same-type compound statements with matching headers recurse.
    def _compare_bodies(
        self, ref: List[ast.stmt], mir: List[ast.stmt]
    ) -> Optional[Finding]:
        for ref_stmt, mir_stmt in zip(ref, mir):
            finding = self._compare_stmt(ref_stmt, mir_stmt)
            if finding is not None:
                return finding
        if len(ref) != len(mir):
            if len(ref) > len(mir):
                extra = ref[len(mir)]
                where, line = self.pair.reference, extra.lineno
                side = "reference"
            else:
                extra = mir[len(ref)]
                where, line = self.pair.mirror, extra.lineno
                side = "mirror"
            return self._finding(
                where.path,
                line,
                f"unmatched {side} statement `{_snippet(ast.unparse(extra))}` "
                f"(no counterpart on the other side)",
            )
        return None

    def _compare_stmt(
        self, ref_stmt: ast.stmt, mir_stmt: ast.stmt
    ) -> Optional[Finding]:
        ref_text = ast.unparse(ref_stmt)
        mir_text = ast.unparse(mir_stmt)
        if ref_text == mir_text:
            return None
        if (ref_text, mir_text) in self.equivalences:
            return None
        if type(ref_stmt) is type(mir_stmt) and isinstance(ref_stmt, _COMPOUND):
            ref_header = _header_text(ref_stmt)
            mir_header = _header_text(mir_stmt)
            if (
                ref_header == mir_header
                or (ref_header, mir_header) in self.equivalences
            ):
                finding = self._compare_bodies(
                    list(ref_stmt.body), list(mir_stmt.body)
                )
                if finding is not None:
                    return finding
                return self._compare_bodies(
                    list(getattr(ref_stmt, "orelse", [])),
                    list(getattr(mir_stmt, "orelse", [])),
                )
            return self._divergence(ref_stmt, mir_stmt, ref_header, mir_header)
        return self._divergence(ref_stmt, mir_stmt, ref_text, mir_text)

    def _divergence(
        self,
        ref_stmt: ast.stmt,
        mir_stmt: ast.stmt,
        ref_text: str,
        mir_text: str,
    ) -> Finding:
        pair = self.pair
        return self._finding(
            pair.mirror.path,
            mir_stmt.lineno,
            "first divergent statement -- "
            f"{pair.reference.label()}:{ref_stmt.lineno} reads "
            f"`{_snippet(ref_text)}` but mirror reads `{_snippet(mir_text)}`",
        )

    def _finding(self, path: str, line: int, detail: str) -> Finding:
        pair = self.pair
        return Finding(
            path=path,
            line=line,
            col=1,
            rule="CON001",
            message=(
                f"mirror drift in {pair.name!r} "
                f"({pair.reference.qualname} <-> {pair.mirror.qualname}): "
                f"{detail}"
            ),
        )


def check_mirror_pair(pair: MirrorPair, cache: _SourceCache) -> List[Finding]:
    ref_fn = cache.function(pair.reference)
    mir_fn = cache.function(pair.mirror)
    missing = []
    if ref_fn is None:
        missing.append(_missing_site("CON001", pair.reference, pair.name))
    if mir_fn is None:
        missing.append(_missing_site("CON001", pair.mirror, pair.name))
    if missing:
        return missing
    ref_body = _prepared_body(
        ref_fn, pair.drop_reference, pair.renames, owner=pair.name
    )
    mir_body = _prepared_body(
        mir_fn, pair.drop_mirror, pair.mirror_renames, owner=pair.name
    )
    finding = _PairComparator(pair).compare(ref_body, mir_body)
    return [finding] if finding is not None else []


def check_expr_anchor(anchor: ExprAnchor, cache: _SourceCache) -> List[Finding]:
    canonical = _canon_expr(anchor.expr, anchor.name)
    findings: List[Finding] = []
    for anchor_site in anchor.sites:
        function = cache.function(anchor_site.site)
        if function is None:
            findings.append(
                _missing_site("CON001", anchor_site.site, anchor.name)
            )
            continue
        cloned = _Normalizer().visit(copy.deepcopy(function))
        ast.fix_missing_locations(cloned)
        mapping = _parse_renames(anchor_site.renames, owner=anchor.name)
        renamer = _Renamer(mapping) if mapping else None
        found = False
        for node in ast.walk(cloned):
            if not isinstance(node, ast.expr):
                continue
            candidate = node
            if renamer is not None:
                candidate = renamer.visit(copy.deepcopy(node))
                ast.fix_missing_locations(candidate)
            if ast.unparse(candidate) == canonical:
                found = True
                break
        if not found:
            findings.append(
                Finding(
                    path=anchor_site.site.path,
                    line=function.lineno,
                    col=function.col_offset + 1,
                    rule="CON001",
                    message=(
                        f"anchored expression {anchor.name!r} "
                        f"(`{canonical}`) not found in "
                        f"{anchor_site.site.qualname}; the formula drifted "
                        "or the site's rename map is stale"
                    ),
                )
            )
    return findings


# ---------------------------------------------------------------------------
# CON002: RNG stream families and draw sequences
# ---------------------------------------------------------------------------

_STREAM_METHODS = ("stream", "batched")


def _family_of(arg: ast.expr) -> Optional[str]:
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        return arg.value
    if isinstance(arg, ast.JoinedStr):
        parts: List[str] = []
        for value in arg.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            else:
                parts.append("*")
        return "".join(parts)
    return None


def _collect_families(
    paths: Sequence[str], cache: _SourceCache
) -> Optional[Dict[str, Tuple[int, str]]]:
    """family -> (first line, path); None when a module failed to parse."""
    families: Dict[str, Tuple[int, str]] = {}
    for rel_path in paths:
        tree = cache.tree(rel_path)
        if tree is None:
            return None
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _STREAM_METHODS
                and node.args
            ):
                family = _family_of(node.args[0])
                if family is not None and family not in families:
                    families[family] = (node.lineno, rel_path)
    return families


def check_stream_families(
    contract: StreamFamilyContract, cache: _SourceCache
) -> List[Finding]:
    reference = _collect_families(contract.reference_paths, cache)
    mirror = _collect_families(contract.mirror_paths, cache)
    findings: List[Finding] = []
    if reference is None or mirror is None:
        missing_paths = [
            p
            for p in (*contract.reference_paths, *contract.mirror_paths)
            if cache.tree(p) is None
        ]
        return [
            Finding(
                path=p,
                line=1,
                col=1,
                rule="CON002",
                message=(
                    f"contract {contract.name!r}: module {p} missing or "
                    "unparseable"
                ),
            )
            for p in sorted(missing_paths)
        ]
    ref_only = set(contract.reference_only)
    mir_only = set(contract.mirror_only)
    for family in sorted(set(reference) - set(mirror) - ref_only):
        line, path = reference[family]
        findings.append(
            Finding(
                path=path,
                line=line,
                col=1,
                rule="CON002",
                message=(
                    f"stream family {family!r} exists on the reference side "
                    f"of {contract.name!r} but not in the mirror (a missing "
                    "family means the mirror draws from different streams)"
                ),
            )
        )
    for family in sorted(set(mirror) - set(reference) - mir_only):
        line, path = mirror[family]
        findings.append(
            Finding(
                path=path,
                line=line,
                col=1,
                rule="CON002",
                message=(
                    f"stream family {family!r} exists only in the mirror "
                    f"side of {contract.name!r}; a renamed family is a "
                    "silently different seed"
                ),
            )
        )
    return findings


class _DrawCollector(ast.NodeVisitor):
    """Ordered draw events touching one named generator attribute."""

    def __init__(self, rng_attr: str) -> None:
        self.rng_attr = rng_attr
        self.events: List[Tuple[str, int]] = []

    def _is_rng(self, node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Attribute) and node.attr == self.rng_attr
        ) or (isinstance(node, ast.Name) and node.id == self.rng_attr)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and self._is_rng(func.value):
            self.events.append((f"<rng>.{func.attr}", node.lineno))
            for arg in node.args:
                self.visit(arg)
            return
        if any(self._is_rng(arg) for arg in node.args):
            callee = (
                func.attr
                if isinstance(func, ast.Attribute)
                else ast.unparse(func)
            )
            self.events.append((f"{callee}(<rng>)", node.lineno))
        self.generic_visit(node)


def check_draw_sequence(
    pair: DrawSequencePair, cache: _SourceCache
) -> List[Finding]:
    ref_fn = cache.function(pair.reference)
    mir_fn = cache.function(pair.mirror)
    missing = []
    if ref_fn is None:
        missing.append(_missing_site("CON002", pair.reference, pair.name))
    if mir_fn is None:
        missing.append(_missing_site("CON002", pair.mirror, pair.name))
    if missing:
        return missing
    ref_collector = _DrawCollector(pair.reference_rng)
    ref_collector.visit(ref_fn)
    mir_collector = _DrawCollector(pair.mirror_rng)
    mir_collector.visit(mir_fn)
    allowed_extra = set(pair.reference_only_draws)
    expected = [
        event for event, _line in ref_collector.events
        if event not in allowed_extra
    ]
    actual = [event for event, _line in mir_collector.events]
    if expected == actual:
        return []
    # Locate the first position where the sequences disagree.
    index = 0
    while (
        index < len(expected)
        and index < len(actual)
        and expected[index] == actual[index]
    ):
        index += 1
    want = expected[index] if index < len(expected) else "<end of sequence>"
    got = actual[index] if index < len(actual) else "<end of sequence>"
    if index < len(actual):
        line = mir_collector.events[index][1]
    else:
        line = mir_fn.lineno
    return [
        Finding(
            path=pair.mirror.path,
            line=line,
            col=1,
            rule="CON002",
            message=(
                f"draw-order drift in {pair.name!r}: position {index + 1} "
                f"should draw `{want}` (per {pair.reference.label()}) but "
                f"the mirror draws `{got}`; a reordered draw shifts every "
                "later value on this stream"
            ),
        )
    ]


# ---------------------------------------------------------------------------
# CON003: config-digest completeness
# ---------------------------------------------------------------------------


def _class_fields(
    tree: ast.Module, class_name: str
) -> Optional[List[Tuple[str, Optional[ast.expr], int]]]:
    """(name, default expr, line) per dataclass field, in declared order."""
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef) and stmt.name == class_name:
            fields: List[Tuple[str, Optional[ast.expr], int]] = []
            for node in stmt.body:
                if isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name
                ):
                    fields.append((node.target.id, node.value, node.lineno))
            return fields
    return None


def _dict_literal(
    tree: ast.Module, name: str
) -> Optional[Tuple[Dict[str, ast.expr], int]]:
    for stmt in tree.body:
        target = None
        value = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target, value = stmt.target, stmt.value
        if (
            isinstance(target, ast.Name)
            and target.id == name
            and isinstance(value, ast.Dict)
        ):
            entries: Dict[str, ast.expr] = {}
            for key, val in zip(value.keys, value.values):
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    entries[key.value] = val
            return entries, stmt.lineno
    return None


def _literal_equal(a: Optional[ast.expr], b: Optional[ast.expr]) -> bool:
    if a is None or b is None:
        return False
    try:
        return ast.literal_eval(a) == ast.literal_eval(b)
    except (ValueError, SyntaxError):
        return ast.unparse(a) == ast.unparse(b)


def check_digest_contract(
    contract: DigestContract, cache: _SourceCache
) -> List[Finding]:
    config_tree = cache.tree(contract.config_path)
    digest_tree = cache.tree(contract.digest_path)
    findings: List[Finding] = []
    if config_tree is None or digest_tree is None:
        return [
            Finding(
                path=p,
                line=1,
                col=1,
                rule="CON003",
                message=f"contract {contract.name!r}: module {p} missing",
            )
            for p in (contract.config_path, contract.digest_path)
            if cache.tree(p) is None
        ]
    fields = _class_fields(config_tree, contract.config_class)
    if fields is None:
        return [
            Finding(
                path=contract.config_path,
                line=1,
                col=1,
                rule="CON003",
                message=(
                    f"contract {contract.name!r}: class "
                    f"{contract.config_class} not found"
                ),
            )
        ]
    defaults = _dict_literal(digest_tree, contract.defaults_name)
    if defaults is None:
        return [
            Finding(
                path=contract.digest_path,
                line=1,
                col=1,
                rule="CON003",
                message=(
                    f"contract {contract.name!r}: dict literal "
                    f"{contract.defaults_name} not found in "
                    f"{contract.digest_path}"
                ),
            )
        ]
    elisions, defaults_line = defaults
    founding = set(contract.founding_fields)
    field_map = {name: (default, line) for name, default, line in fields}

    # 1. Post-founding fields must be elided at their default.
    for name, default, line in fields:
        if name in founding or name in elisions:
            continue
        findings.append(
            Finding(
                path=contract.config_path,
                line=line,
                col=1,
                rule="CON003",
                message=(
                    f"config field {name!r} postdates the digest scheme but "
                    f"has no {contract.defaults_name} entry; without one, "
                    "adding it changed every job digest and orphaned "
                    "existing ledgers (add the elision entry with the "
                    "field's default)"
                ),
            )
        )

    # 2. Elision entries must name real fields ...
    for name in sorted(elisions):
        if name not in field_map:
            findings.append(
                Finding(
                    path=contract.digest_path,
                    line=defaults_line,
                    col=1,
                    rule="CON003",
                    message=(
                        f"{contract.defaults_name} elides {name!r}, which is "
                        f"not a field of {contract.config_class} (stale "
                        "entry: the digest silently stopped eliding it)"
                    ),
                )
            )
            continue
        # 3. ... and elide exactly the field default.
        default, _line = field_map[name]
        if not _literal_equal(elisions[name], default):
            findings.append(
                Finding(
                    path=contract.digest_path,
                    line=defaults_line,
                    col=1,
                    rule="CON003",
                    message=(
                        f"{contract.defaults_name}[{name!r}] = "
                        f"`{ast.unparse(elisions[name])}` does not equal the "
                        f"field default `{ast.unparse(default) if default is not None else '<none>'}`; "
                        "the elision only preserves old digests when it "
                        "matches the default exactly"
                    ),
                )
            )

    # 4. Every post-founding field needs a declared CLI route.
    if contract.cli_path:
        cli_tree = cache.tree(contract.cli_path)
        cli_source = None
        if cli_tree is not None:
            full = os.path.join(
                cache.base_dir, contract.cli_path.replace("/", os.sep)
            )
            try:
                with open(full, "r", encoding="utf-8") as handle:
                    cli_source = handle.read()
            except OSError:
                cli_source = None
        via_sweep = set(contract.cli_via_sweep)
        for name, _default, line in fields:
            if name in founding or name in via_sweep:
                continue
            flag = "--" + name.replace("_", "-")
            if cli_source is not None and flag in cli_source:
                continue
            findings.append(
                Finding(
                    path=contract.config_path,
                    line=line,
                    col=1,
                    rule="CON003",
                    message=(
                        f"config field {name!r} has no CLI route: add a "
                        f"`{flag}` flag to {contract.cli_path} or declare it "
                        "in the contract's cli_via_sweep list (reachable "
                        "via `netrs sweep`)"
                    ),
                )
            )
    return findings


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def check_contracts(
    base_dir: str, registry: Optional[ContractRegistry] = None
) -> List[Finding]:
    """Run every declared contract against the tree under ``base_dir``.

    Findings use repo-relative paths (matching the engine's display paths)
    and sort like any other findings; the caller merges them into the
    normal report so noqa/baseline/exit-code semantics are shared.
    """
    if registry is None:
        registry = default_registry()
    cache = _SourceCache(base_dir)
    findings: List[Finding] = []
    for pair in registry.mirror_pairs:
        findings.extend(check_mirror_pair(pair, cache))
    for anchor in registry.expr_anchors:
        findings.extend(check_expr_anchor(anchor, cache))
    for family_contract in registry.stream_families:
        findings.extend(check_stream_families(family_contract, cache))
    for sequence_pair in registry.draw_sequences:
        findings.extend(check_draw_sequence(sequence_pair, cache))
    for digest_contract in registry.digests:
        findings.extend(check_digest_contract(digest_contract, cache))
    return sorted(findings)
