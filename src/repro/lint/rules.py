"""Rule registry for the determinism sanitizer.

Each rule couples an identifier (``DET001`` ...) with human documentation
(rationale, a violating example, the idiomatic fix) and the AST checker class
that detects it.  The registry is the single source of truth consumed by the
engine (which checkers to run), the CLI (``--list-rules`` / ``--explain``)
and the docs test that keeps ``docs/LINTING.md`` in sync.

Registering is done with the :func:`register_rule` class decorator::

    @register_rule(
        rule_id="DET999",
        title="...",
        rationale="...",
        example_bad="...",
        example_fix="...",
    )
    class Det999Checker(Checker):
        ...
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Type

from repro.errors import ConfigurationError
from repro.lint.findings import Finding


@dataclass
class ModuleContext:
    """Everything a checker may need about the module under analysis."""

    path: str  #: display path (as reported in findings)
    tree: ast.Module
    source: str

    def posix_path(self) -> str:
        return self.path.replace("\\", "/")


class Checker(ast.NodeVisitor):
    """Base class for rule checkers: one instance per (rule, module).

    Subclasses visit the module AST and call :meth:`report` for violations.
    ``allowed_path_suffixes`` lists POSIX path suffixes of modules the rule
    deliberately does not apply to (e.g. the RNG registry itself for DET001);
    the engine skips the checker entirely for those modules.
    """

    rule_id: str = ""
    allowed_path_suffixes: Tuple[str, ...] = ()

    def __init__(self, module: ModuleContext) -> None:
        self.module = module
        self.findings: List[Finding] = []

    def report(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.module.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                rule=self.rule_id,
                message=message,
            )
        )

    def run(self) -> List[Finding]:
        self.visit(self.module.tree)
        return self.findings


@dataclass(frozen=True)
class Rule:
    """Metadata and checker for one lint rule."""

    rule_id: str
    title: str
    rationale: str
    example_bad: str
    example_fix: str
    checker: Type[Checker]
    #: POSIX path suffixes the rule is exempted from (mirrors the checker).
    exemptions: Tuple[str, ...] = field(default=())


#: rule id -> Rule, in registration order.
RULES: Dict[str, Rule] = {}


def register_rule(
    *,
    rule_id: str,
    title: str,
    rationale: str,
    example_bad: str,
    example_fix: str,
):
    """Class decorator binding a :class:`Checker` under ``rule_id``."""

    def decorate(cls: Type[Checker]) -> Type[Checker]:
        if rule_id in RULES:
            raise ConfigurationError(f"lint rule {rule_id!r} already registered")
        cls.rule_id = rule_id
        RULES[rule_id] = Rule(
            rule_id=rule_id,
            title=title,
            rationale=rationale,
            example_bad=example_bad,
            example_fix=example_fix,
            checker=cls,
            exemptions=tuple(cls.allowed_path_suffixes),
        )
        return cls

    return decorate


def get_rule(rule_id: str, registry: Optional[Dict[str, Rule]] = None) -> Rule:
    """Look up one rule, raising :class:`ConfigurationError` if unknown.

    ``registry`` defaults to :data:`RULES`; the CLI passes a merged table
    so ``--explain`` also covers the contract rules (``CON001``...),
    which live in :data:`repro.lint.contracts.CONTRACT_RULES`.
    """
    table = RULES if registry is None else registry
    rule = table.get(rule_id)
    if rule is None:
        raise ConfigurationError(
            f"unknown lint rule {rule_id!r}; known: {', '.join(sorted(table))}"
        )
    return rule


def all_rule_ids() -> Tuple[str, ...]:
    """Registered rule ids, sorted."""
    return tuple(sorted(RULES))


def checkers_for(module: ModuleContext) -> List[Checker]:
    """Instantiate every rule checker applicable to ``module``.

    Iterates rules in sorted-id order so finding production (and therefore
    tie-breaking between co-located findings) is deterministic.
    """
    posix = module.posix_path()
    selected: List[Checker] = []
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        if any(posix.endswith(suffix) for suffix in rule.exemptions):
            continue
        selected.append(rule.checker(module))
    return selected


def explain(rule_id: str, registry: Optional[Dict[str, Rule]] = None) -> str:
    """Human-readable documentation block for one rule."""
    rule = get_rule(rule_id, registry)
    lines = [
        f"{rule.rule_id}: {rule.title}",
        "",
        rule.rationale,
        "",
        "Bad:",
        *(f"    {ln}" for ln in rule.example_bad.splitlines()),
        "",
        "Fix:",
        *(f"    {ln}" for ln in rule.example_fix.splitlines()),
    ]
    if rule.exemptions:
        lines += ["", "Exempt modules: " + ", ".join(rule.exemptions)]
    return "\n".join(lines)
