"""CLI for the determinism sanitizer: ``netrs lint`` / ``python -m repro.lint``.

Exit codes: 0 clean (or all findings baselined/suppressed), 1 findings or
parse errors, 2 usage errors.  ``--format json`` emits the machine-readable
report consumed by CI (schema: :data:`repro.lint.findings.JSON_REPORT_VERSION`);
``--format github`` emits ``::error`` workflow annotations so findings show
up inline on pull-request diffs.

``--contracts`` additionally runs the declared-contract pass (rules
``CON001``..``CON003``, see :mod:`repro.lint.contracts`); ``--contracts-only``
runs nothing else and is what the ``netrs contracts`` subcommand dispatches
to.  Contract findings share the noqa/baseline/exit-code machinery with the
per-file rules.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.lint.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.lint.contracts import CONTRACT_RULES
from repro.lint.engine import LintReport, lint_paths
from repro.lint.rules import RULES, Rule, explain


def _all_rules() -> Dict[str, Rule]:
    """Per-file rules plus contract rules, for --list-rules/--explain/--stats."""
    merged: Dict[str, Rule] = dict(RULES)
    merged.update(CONTRACT_RULES)
    return merged


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="netrs lint",
        description="determinism sanitizer: AST lint for simulation invariants",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=[],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="report format (default: text; github = workflow annotations)",
    )
    parser.add_argument(
        "--contracts",
        action="store_true",
        help="also run the declared-contract rules (CON001..CON003)",
    )
    parser.add_argument(
        "--contracts-only",
        action="store_true",
        help="run only the contract rules (what `netrs contracts` does)",
    )
    parser.add_argument(
        "--output",
        default="",
        help="write the report to a file instead of stdout",
    )
    parser.add_argument(
        "--baseline",
        default="",
        help=f"baseline file (default: ./{DEFAULT_BASELINE_NAME} if present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file, report everything",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-rule finding counts and analyzed-file totals",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        default="",
        help="print one rule's documentation and exit",
    )
    return parser


def _resolve_baseline(args: argparse.Namespace) -> Optional[Baseline]:
    if args.no_baseline:
        return None
    if args.baseline:
        return Baseline.load(args.baseline)
    if os.path.exists(DEFAULT_BASELINE_NAME):
        return Baseline.load(DEFAULT_BASELINE_NAME)
    return None


def _render_text(report: LintReport, *, stats: bool) -> str:
    lines: List[str] = []
    titles = _all_rules()
    for finding in report.parse_errors:
        lines.append(finding.format_text())
    for finding in report.findings:
        lines.append(finding.format_text())
    if stats:
        lines.append("")
        lines.append("per-rule finding counts:")
        for rule_id, count in report.per_rule_counts().items():
            rule = titles.get(rule_id)
            title = rule.title if rule is not None else ""
            lines.append(f"  {rule_id:8s} {count:4d}  {title}")
        lines.append(f"files analyzed:    {report.files_analyzed}")
        lines.append(f"contracts checked: {report.contracts_checked}")
        lines.append(f"findings:          {len(report.findings)}")
        lines.append(f"noqa-suppressed:   {report.suppressed}")
        lines.append(f"baselined:         {report.baselined}")
    elif report.clean:
        checked = (
            f", {report.contracts_checked} contracts checked"
            if report.contracts_checked
            else ""
        )
        lines.append(
            f"ok: {report.files_analyzed} files analyzed{checked}, "
            f"no findings "
            f"({report.suppressed} suppressed, {report.baselined} baselined)"
        )
    else:
        lines.append(
            f"{len(report.findings)} finding(s) in "
            f"{report.files_analyzed} files"
        )
    return "\n".join(lines) + "\n"


def _annotation_escape(text: str, *, property_value: bool = False) -> str:
    """Escape per GitHub's workflow-command rules (order matters: % first)."""
    text = text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    if property_value:
        text = text.replace(":", "%3A").replace(",", "%2C")
    return text


def _render_github(report: LintReport) -> str:
    """``::error`` annotation per finding (empty output when clean)."""
    lines: List[str] = []
    for finding in [*report.parse_errors, *report.findings]:
        location = ",".join(
            (
                f"file={_annotation_escape(finding.path, property_value=True)}",
                f"line={finding.line}",
                f"col={finding.col}",
                f"title={_annotation_escape(finding.rule, property_value=True)}",
            )
        )
        message = _annotation_escape(f"{finding.rule} {finding.message}")
        lines.append(f"::error {location}::{message}")
    return "".join(line + "\n" for line in lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        rules = _all_rules()
        for rule_id in sorted(rules):
            print(f"{rule_id:8s} {rules[rule_id].title}")
        return 0
    if args.explain:
        try:
            print(explain(args.explain.upper(), _all_rules()))
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0

    paths = list(args.paths)
    if not paths:
        paths = ["src/repro"] if os.path.isdir("src/repro") else ["."]
    contracts = args.contracts or args.contracts_only

    try:
        baseline = _resolve_baseline(args)
        report = lint_paths(
            paths,
            baseline=baseline,
            contracts=contracts,
            contracts_only=args.contracts_only,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = args.baseline or DEFAULT_BASELINE_NAME
        # Re-lint without a baseline so the snapshot is complete.
        full = lint_paths(
            paths,
            baseline=None,
            contracts=contracts,
            contracts_only=args.contracts_only,
        )
        Baseline.from_findings(full.findings).save(target)
        print(
            f"wrote {len(full.findings)} finding(s) to {target}",
            file=sys.stderr,
        )
        return 0

    if args.format == "json":
        rendered = json.dumps(report.to_json(), indent=2) + "\n"
    elif args.format == "github":
        rendered = _render_github(report)
    else:
        rendered = _render_text(report, stats=args.stats)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
    else:
        sys.stdout.write(rendered)

    return 0 if report.clean else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
