"""CLI for the determinism sanitizer: ``netrs lint`` / ``python -m repro.lint``.

Exit codes: 0 clean (or all findings baselined/suppressed), 1 findings or
parse errors, 2 usage errors.  ``--format json`` emits the machine-readable
report consumed by CI (schema: :data:`repro.lint.findings.JSON_REPORT_VERSION`).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.lint.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.lint.engine import LintReport, lint_paths
from repro.lint.rules import RULES, explain


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="netrs lint",
        description="determinism sanitizer: AST lint for simulation invariants",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=[],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        default="",
        help="write the report to a file instead of stdout",
    )
    parser.add_argument(
        "--baseline",
        default="",
        help=f"baseline file (default: ./{DEFAULT_BASELINE_NAME} if present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file, report everything",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print per-rule finding counts and analyzed-file totals",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        default="",
        help="print one rule's documentation and exit",
    )
    return parser


def _resolve_baseline(args: argparse.Namespace) -> Optional[Baseline]:
    if args.no_baseline:
        return None
    if args.baseline:
        return Baseline.load(args.baseline)
    if os.path.exists(DEFAULT_BASELINE_NAME):
        return Baseline.load(DEFAULT_BASELINE_NAME)
    return None


def _render_text(report: LintReport, *, stats: bool) -> str:
    lines: List[str] = []
    for finding in report.parse_errors:
        lines.append(finding.format_text())
    for finding in report.findings:
        lines.append(finding.format_text())
    if stats:
        lines.append("")
        lines.append("per-rule finding counts:")
        for rule_id, count in report.per_rule_counts().items():
            lines.append(f"  {rule_id:8s} {count:4d}  {RULES[rule_id].title}")
        lines.append(f"files analyzed:    {report.files_analyzed}")
        lines.append(f"findings:          {len(report.findings)}")
        lines.append(f"noqa-suppressed:   {report.suppressed}")
        lines.append(f"baselined:         {report.baselined}")
    elif report.clean:
        lines.append(
            f"ok: {report.files_analyzed} files analyzed, no findings "
            f"({report.suppressed} suppressed, {report.baselined} baselined)"
        )
    else:
        lines.append(
            f"{len(report.findings)} finding(s) in "
            f"{report.files_analyzed} files"
        )
    return "\n".join(lines) + "\n"


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(RULES):
            print(f"{rule_id:8s} {RULES[rule_id].title}")
        return 0
    if args.explain:
        try:
            print(explain(args.explain.upper()))
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0

    paths = list(args.paths)
    if not paths:
        paths = ["src/repro"] if os.path.isdir("src/repro") else ["."]

    try:
        baseline = _resolve_baseline(args)
        report = lint_paths(paths, baseline=baseline)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = args.baseline or DEFAULT_BASELINE_NAME
        # Re-lint without a baseline so the snapshot is complete.
        full = lint_paths(paths, baseline=None)
        Baseline.from_findings(full.findings).save(target)
        print(
            f"wrote {len(full.findings)} finding(s) to {target}",
            file=sys.stderr,
        )
        return 0

    if args.format == "json":
        rendered = json.dumps(report.to_json(), indent=2) + "\n"
    else:
        rendered = _render_text(report, stats=args.stats)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
    else:
        sys.stdout.write(rendered)

    return 0 if report.clean else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
