"""Runtime determinism guard: make stray global randomness *raise*.

Static analysis (DET001) catches direct syntactic uses of ``random`` /
``np.random``; it cannot see dynamic dispatch, third-party helpers, or code
paths assembled at runtime.  :func:`deterministic_guard` closes that gap: it
patches the global entry points of the stdlib ``random`` module and numpy's
module-level convenience API so that any call inside the guarded region
raises :class:`NondeterminismError` naming the offender.

Intended uses:

* the opt-in pytest fixture ``deterministic_sim`` (see ``tests/conftest.py``)
  wraps determinism-sensitive tests, so a regression that sneaks past the
  linter fails loudly instead of silently skewing results;
* ad-hoc auditing: ``with deterministic_guard(): run_experiment(config)``.

The guard is process-global while active (it patches module attributes), so
it is not meant for concurrent use from multiple threads.  Nesting works:
each ``with`` saves whatever it found and restores it on exit.  Methods on
explicit ``np.random.Generator`` instances -- the only sanctioned source of
randomness, via :mod:`repro.sim.rng` -- are untouched.
"""

from __future__ import annotations

import random as _random_module  # repro: noqa(DET001) - guard patches the module it bans
from contextlib import contextmanager
from typing import Iterator, Sequence, Tuple

import numpy as _np

__all__ = ["NondeterminismError", "deterministic_guard"]


class NondeterminismError(RuntimeError):
    """A globally seeded / fresh-entropy RNG entry point was called."""


#: stdlib ``random`` functions that consume or reseed the hidden global state.
_STDLIB_NAMES: Tuple[str, ...] = (
    "random", "uniform", "randint", "randrange", "choice", "choices",
    "sample", "shuffle", "betavariate", "expovariate", "gauss",
    "normalvariate", "lognormvariate", "paretovariate", "weibullvariate",
    "triangular", "vonmisesvariate", "gammavariate", "getrandbits", "seed",
)

#: ``numpy.random`` module-level functions (legacy global state or fresh
#: entropy); Generator construction via explicit seed material stays legal.
_NUMPY_NAMES: Tuple[str, ...] = (
    "default_rng", "seed", "random", "rand", "randn", "randint", "choice",
    "shuffle", "permutation", "uniform", "normal", "standard_normal",
    "exponential", "poisson", "binomial", "beta", "gamma", "bytes",
    "random_sample", "sample", "zipf",
)


def _raiser(qualified: str):
    def blocked(*_args: object, **_kwargs: object) -> None:
        raise NondeterminismError(
            f"`{qualified}` was called inside deterministic_guard(); all "
            "randomness in simulated code must come from a named stream of "
            "repro.sim.rng.RngRegistry (derived from the experiment seed)"
        )

    blocked.__name__ = qualified.rsplit(".", 1)[-1]
    blocked.__qualname__ = f"deterministic_guard.blocked[{qualified}]"
    return blocked


@contextmanager
def deterministic_guard(
    allow: Sequence[str] = (),
) -> Iterator[None]:
    """Context manager that turns global-RNG calls into hard errors.

    Args:
        allow: qualified names (``"random.shuffle"``, ``"np.random.seed"``)
            to leave untouched, for narrowly scoped exceptions.
    """
    allowed = set(allow)
    saved = []
    try:
        for module, prefix, names in (
            (_random_module, "random", _STDLIB_NAMES),
            (_np.random, "np.random", _NUMPY_NAMES),
        ):
            for name in names:
                qualified = f"{prefix}.{name}"
                if qualified in allowed or not hasattr(module, name):
                    continue
                saved.append((module, name, getattr(module, name)))
                setattr(module, name, _raiser(qualified))
        yield
    finally:
        for module, name, original in reversed(saved):
            setattr(module, name, original)
