"""Documentation link checker: every relative link and anchor must resolve.

Scans ``README.md`` plus ``docs/*.md`` (the set ``make docs-check`` covers)
for inline markdown links.  External links (``http(s)://``, ``mailto:``) are
skipped -- CI must not depend on the network -- but every relative target
must name an existing file, and every fragment (``file.md#section`` or
in-page ``#section``) must match a heading anchor in the target document,
using GitHub's slug rules (lowercase, punctuation stripped, spaces to
hyphens, ``-N`` suffixes for duplicates).

Run as ``python -m repro.lint.docs [root]``; exits non-zero listing each
broken link as ``file:line: message``.  The check is pure string work over
the tree -- no simulation imports -- so it stays fast enough for CI.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

#: Inline markdown link: ``[text](target)``.  Images (``![alt](...)``) match
#: too via the optional bang; both kinds must resolve.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")
#: Markdown emphasis/code markers stripped before slugification.
_MARKUP = re.compile(r"[`*_]")
#: Characters GitHub drops from heading anchors.
_SLUG_DROP = re.compile(r"[^\w\- ]")


def github_slug(heading: str) -> str:
    """The anchor GitHub generates for one heading (before deduplication)."""
    text = _MARKUP.sub("", heading.strip())
    # Inline links inside headings anchor on their text, not their target.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = _SLUG_DROP.sub("", text.lower())
    return text.replace(" ", "-")


def heading_anchors(markdown: str) -> List[str]:
    """All heading anchors of a document, duplicate-suffixed like GitHub."""
    anchors: List[str] = []
    seen: Dict[str, int] = {}
    in_fence = False
    for line in markdown.splitlines():
        if line.lstrip().startswith(("```", "~~~")):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if match is None:
            continue
        slug = github_slug(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.append(slug if count == 0 else f"{slug}-{count}")
    return anchors


def _iter_links(markdown: str) -> Iterable[Tuple[int, str]]:
    """Yield ``(line_number, target)`` for every inline link outside fences."""
    in_fence = False
    for lineno, line in enumerate(markdown.splitlines(), start=1):
        if line.lstrip().startswith(("```", "~~~")):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            yield lineno, match.group(1)


def doc_files(root: Path) -> List[Path]:
    """The documents the check covers: README.md plus docs/*.md."""
    files = []
    readme = root / "README.md"
    if readme.is_file():
        files.append(readme)
    docs = root / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.glob("*.md")))
    return files


def check_docs(root: Path) -> List[str]:
    """Validate every relative link/anchor; returns ``file:line: message``."""
    root = root.resolve()
    files = doc_files(root)
    anchor_cache: Dict[Path, List[str]] = {}

    def anchors_of(path: Path) -> List[str]:
        cached = anchor_cache.get(path)
        if cached is None:
            cached = heading_anchors(path.read_text(encoding="utf-8"))
            anchor_cache[path] = cached
        return cached

    problems: List[str] = []
    for doc in files:
        text = doc.read_text(encoding="utf-8")
        rel_doc = doc.relative_to(root)
        for lineno, target in _iter_links(text):
            if target.startswith(_EXTERNAL):
                continue
            path_part, _, fragment = target.partition("#")
            if path_part:
                resolved = (doc.parent / path_part).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{rel_doc}:{lineno}: broken link {target!r} "
                        f"({path_part} does not exist)"
                    )
                    continue
            else:
                resolved = doc
            if not fragment:
                continue
            if resolved.suffix.lower() != ".md" or not resolved.is_file():
                # Anchors into non-markdown targets (source files) are
                # line references GitHub resolves; nothing to validate.
                continue
            if fragment not in anchors_of(resolved):
                problems.append(
                    f"{rel_doc}:{lineno}: broken anchor {target!r} "
                    f"(no heading slugs to #{fragment} in "
                    f"{resolved.relative_to(root)})"
                )
    return problems


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    root = Path(args[0]) if args else Path.cwd()
    files = doc_files(root)
    if not files:
        print(f"docs-check: no README.md or docs/*.md under {root}")
        return 1
    problems = check_docs(root)
    for problem in problems:
        print(problem)
    if problems:
        print(f"docs-check: {len(problems)} broken link(s)")
        return 1
    print(f"docs-check: ok ({len(files)} documents, all links resolve)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
