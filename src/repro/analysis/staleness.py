"""Feedback-staleness measurement (the paper's factor (i)).

"A client is likely to select a poorly-performing server for a request due
to its inaccurate estimation of server status.  The accuracy of the
estimation depends on the recency of [the RSNode's] local information."

:class:`StalenessProbe` records, at every selection, how old the selector's
freshest feedback about each candidate is.  Wrapping the selectors of a
CliRS scenario vs a NetRS scenario quantifies the recency gap the paper
argues for: few in-network RSNodes see most traffic, so their information
is orders of magnitude fresher than any single client's.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence

from repro.network.packet import ServerStatus
from repro.selection.base import ReplicaSelector


class StalenessProbe:
    """Accumulates feedback-age samples across instrumented selectors."""

    def __init__(self) -> None:
        self._ages: List[float] = []
        self.selections_without_any_feedback = 0

    def __len__(self) -> int:
        return len(self._ages)

    def observe(self, ages: Sequence[float]) -> None:
        """Record the candidate feedback ages of one selection."""
        finite = [age for age in ages if math.isfinite(age)]
        if not finite:
            self.selections_without_any_feedback += 1
            return
        self._ages.extend(finite)

    def mean_age(self) -> float:
        """Average feedback age at selection time, in seconds."""
        if not self._ages:
            return math.nan
        return sum(self._ages) / len(self._ages)

    def max_age(self) -> float:
        """Worst feedback age seen."""
        return max(self._ages) if self._ages else math.nan

    def summary(self) -> Dict[str, float]:
        """Mean/max age plus the cold-selection count."""
        return {
            "mean_age": self.mean_age(),
            "max_age": self.max_age(),
            "samples": float(len(self._ages)),
            "cold_selections": float(self.selections_without_any_feedback),
        }


class InstrumentedSelector(ReplicaSelector):
    """Transparent wrapper recording feedback ages at selection time.

    Works with any inner selector; age tracking is kept here so baselines
    without their own feedback timestamps are measurable too.
    """

    algorithm_name = "instrumented"

    def __init__(
        self,
        inner: ReplicaSelector,
        probe: StalenessProbe,
        clock: Callable[[], float],
    ) -> None:
        super().__init__()
        self.inner = inner
        self.probe = probe
        self._clock = clock
        self._last_feedback: Dict[str, float] = {}

    def select(self, candidates: Sequence[str], now: float) -> str:
        ages = [
            now - self._last_feedback[server]
            if server in self._last_feedback
            else math.inf
            for server in candidates
        ]
        self.probe.observe(ages)
        self.selections += 1
        return self.inner.select(candidates, now)

    def note_sent(self, server: str, now: float) -> None:
        self.inner.note_sent(server, now)

    def note_response(
        self, server: str, latency: float, status: ServerStatus, now: float
    ) -> None:
        self._last_feedback[server] = now
        self.inner.note_response(server, latency, status, now)

    # Convenience pass-throughs used by tests and the controller.
    @property
    def concurrency_weight(self) -> Optional[int]:
        """Inner selector's herd-extrapolation weight, if it has one."""
        return getattr(self.inner, "concurrency_weight", None)

    @concurrency_weight.setter
    def concurrency_weight(self, value: int) -> None:
        if hasattr(self.inner, "concurrency_weight"):
            self.inner.concurrency_weight = value
