"""Per-request tracing with CSV / JSON-lines export.

A :class:`TraceCollector` plugs into clients (see
:mod:`repro.analysis.instrument`) and records one :class:`RequestRecord`
per completed request: who issued it, which server answered, through which
RSNode, and when.  Traces make end-to-end invariants checkable ("every
NetRS response really traversed its RSNode") and feed offline analysis.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict, dataclass, fields
from typing import Dict, Iterator, List, Optional

from repro.network.packet import Packet


@dataclass(frozen=True, slots=True)
class RequestRecord:
    """One completed request."""

    request_id: int
    client: str
    server: str
    key: int
    rgid: int
    rsnode_id: int
    issued_at: float
    completed_at: float
    latency: float
    hops: int
    was_redundant_winner: bool
    recorded: bool  # False for warmup requests
    # Latency decomposition (seconds); components sum to ``latency``.
    selection_path_time: float  # issue -> RSNode selection done (0 = client)
    server_queue_delay: float
    server_service_time: float
    network_and_other: float  # remaining propagation / accelerator clones


class TraceCollector:
    """Accumulates request records in completion order."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        """``capacity`` bounds memory: oldest records are dropped past it."""
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be positive or None")
        self.capacity = capacity
        self._records: List[RequestRecord] = []
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[RequestRecord]:
        return iter(self._records)

    @property
    def records(self) -> List[RequestRecord]:
        """The retained records, oldest first."""
        return list(self._records)

    def record_completion(
        self,
        response: Packet,
        *,
        issued_at: float,
        completed_at: float,
        recorded: bool,
        rgid: int,
    ) -> None:
        """Store the completion of a request given its winning response."""
        latency = completed_at - issued_at
        selection_path = (
            response.selected_at - issued_at if response.selected_at > 0 else 0.0
        )
        remainder = (
            latency
            - selection_path
            - response.server_queue_delay
            - response.server_service_time
        )
        record = RequestRecord(
            request_id=response.request_id,
            client=response.client,
            server=response.server,
            key=response.key,
            rgid=rgid,
            rsnode_id=response.rsnode_id,
            issued_at=issued_at,
            completed_at=completed_at,
            latency=latency,
            hops=response.hops,
            was_redundant_winner=response.is_redundant,
            recorded=recorded,
            selection_path_time=selection_path,
            server_queue_delay=response.server_queue_delay,
            server_service_time=response.server_service_time,
            network_and_other=remainder,
        )
        self._records.append(record)
        if self.capacity is not None and len(self._records) > self.capacity:
            del self._records[0]
            self.dropped += 1

    # ------------------------------------------------------------------
    # Aggregations
    # ------------------------------------------------------------------
    def per_server_counts(self) -> Dict[str, int]:
        """Completed requests per serving host."""
        counts: Dict[str, int] = {}
        for record in self._records:
            counts[record.server] = counts.get(record.server, 0) + 1
        return counts

    def per_rsnode_counts(self) -> Dict[int, int]:
        """Completed requests per RSNode ID (0 = client-side selection)."""
        counts: Dict[int, int] = {}
        for record in self._records:
            counts[record.rsnode_id] = counts.get(record.rsnode_id, 0) + 1
        return counts

    def latencies(self, *, recorded_only: bool = True) -> List[float]:
        """Latency samples, optionally excluding warmup requests."""
        return [
            r.latency
            for r in self._records
            if r.recorded or not recorded_only
        ]

    def decomposition_means(
        self, *, recorded_only: bool = True
    ) -> Dict[str, float]:
        """Average latency components (seconds); they sum to the mean latency.

        Components: ``selection`` (issue until the RSNode finished choosing,
        zero under client-side selection), ``server_queue``,
        ``server_service``, and ``network`` (everything else: propagation
        hops, and for client-selected requests the path to the server).
        """
        records = [r for r in self._records if r.recorded or not recorded_only]
        n = len(records)
        if n == 0:
            return {
                "selection": float("nan"),
                "server_queue": float("nan"),
                "server_service": float("nan"),
                "network": float("nan"),
                "total": float("nan"),
            }
        return {
            "selection": sum(r.selection_path_time for r in records) / n,
            "server_queue": sum(r.server_queue_delay for r in records) / n,
            "server_service": sum(r.server_service_time for r in records) / n,
            "network": sum(r.network_and_other for r in records) / n,
            "total": sum(r.latency for r in records) / n,
        }

    def latency_timeline(
        self, bucket: float, *, recorded_only: bool = False
    ) -> List[tuple]:
        """Mean latency over time: ``[(bucket_start, mean, count), ...]``.

        Buckets are aligned to completion times.  Useful for observing
        transients -- e.g. the temporary latency increase after a new RSP
        deploys with cold RSNodes (paper section II).
        """
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        sums: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        for record in self._records:
            if recorded_only and not record.recorded:
                continue
            index = int(record.completed_at / bucket)
            sums[index] = sums.get(index, 0.0) + record.latency
            counts[index] = counts.get(index, 0) + 1
        return [
            (index * bucket, sums[index] / counts[index], counts[index])
            for index in sorted(sums)
        ]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        """The trace as CSV text (header + one row per record)."""
        output = io.StringIO()
        names = [f.name for f in fields(RequestRecord)]
        writer = csv.DictWriter(output, fieldnames=names)
        writer.writeheader()
        for record in self._records:
            writer.writerow(asdict(record))
        return output.getvalue()

    def to_jsonl(self) -> str:
        """The trace as JSON lines."""
        return "\n".join(json.dumps(asdict(r)) for r in self._records)

    def write_csv(self, path: str) -> None:
        """Write the CSV trace to ``path``."""
        with open(path, "w", encoding="utf-8", newline="") as handle:
            handle.write(self.to_csv())
