"""Measurement extensions: request tracing and root-cause analysis.

The paper's section I argues client-side replica selection fails for two
reasons: (i) *stale local information* -- a client sees too little traffic
to keep fresh server-state estimates -- and (ii) *herd behavior* -- many
independent RSNodes simultaneously pick the same momentarily-fast server.
This subpackage instruments a scenario to measure both directly, plus
per-request traces and per-server load balance, so the mechanism behind the
latency reductions (not just the reductions themselves) is reproducible.

* :mod:`~repro.analysis.trace` -- per-request records with CSV/JSONL export,
* :mod:`~repro.analysis.staleness` -- feedback age observed at selection time,
* :mod:`~repro.analysis.herd` -- queue-imbalance sampling over time,
* :mod:`~repro.analysis.loads` -- per-server load shares and fairness,
* :mod:`~repro.analysis.instrument` -- one-call attachment to a scenario.
"""

from repro.analysis.herd import HerdSummary, QueueSampler
from repro.analysis.instrument import AnalysisProbes, attach_probes
from repro.analysis.loads import jain_fairness, server_load_shares
from repro.analysis.staleness import InstrumentedSelector, StalenessProbe
from repro.analysis.trace import RequestRecord, TraceCollector

__all__ = [
    "AnalysisProbes",
    "HerdSummary",
    "InstrumentedSelector",
    "QueueSampler",
    "RequestRecord",
    "StalenessProbe",
    "TraceCollector",
    "attach_probes",
    "jain_fairness",
    "server_load_shares",
]
