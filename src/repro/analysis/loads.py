"""Per-server load balance helpers."""

from __future__ import annotations

import math
from typing import Dict, Mapping

import numpy as np


def server_load_shares(counts: Mapping[str, int]) -> Dict[str, float]:
    """Normalize per-server request counts to shares summing to 1."""
    values = np.fromiter(counts.values(), dtype=float, count=len(counts))
    total = values.sum()
    if total == 0:
        return {name: math.nan for name in counts}
    return dict(zip(counts, (values / total).tolist()))


def jain_fairness(counts: Mapping[str, int]) -> float:
    """Jain's fairness index over per-server loads.

    1.0 means perfectly even; 1/n means one server took everything.  Useful
    alongside the herd metrics: consistent hashing plus load-aware selection
    should keep this near 1 even under Zipfian keys.
    """
    if not counts:
        return math.nan
    values = np.fromiter(counts.values(), dtype=float, count=len(counts))
    total = float(values.sum())
    if total == 0:
        return math.nan
    squares = float(values @ values)
    return (total * total) / (len(values) * squares)
