"""Per-server load balance helpers."""

from __future__ import annotations

import math
from typing import Dict, Mapping


def server_load_shares(counts: Mapping[str, int]) -> Dict[str, float]:
    """Normalize per-server request counts to shares summing to 1."""
    total = sum(counts.values())
    if total == 0:
        return {name: math.nan for name in counts}
    return {name: value / total for name, value in counts.items()}


def jain_fairness(counts: Mapping[str, int]) -> float:
    """Jain's fairness index over per-server loads.

    1.0 means perfectly even; 1/n means one server took everything.  Useful
    alongside the herd metrics: consistent hashing plus load-aware selection
    should keep this near 1 even under Zipfian keys.
    """
    values = list(counts.values())
    if not values:
        return math.nan
    total = sum(values)
    if total == 0:
        return math.nan
    squares = sum(v * v for v in values)
    return (total * total) / (len(values) * squares)
