"""One-call instrumentation of a built scenario.

Usage::

    scenario = build_scenario(config)
    probes = attach_probes(scenario)
    result = run_experiment(config, scenario=scenario)
    print(probes.staleness.summary())
    print(probes.queues.summary())
    probes.trace.write_csv("run.csv")

Attach probes *after* :func:`~repro.experiments.scenarios.build_scenario`
and *before* running.  Staleness wrapping covers the RSNodes active at
attach time; if periodic re-planning later activates new operators, their
fresh selectors are not wrapped (the common benchmarking setup plans once).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.herd import QueueSampler
from repro.analysis.staleness import InstrumentedSelector, StalenessProbe
from repro.analysis.trace import TraceCollector
from repro.errors import ConfigurationError
from repro.experiments.scenarios import Scenario


@dataclass
class AnalysisProbes:
    """Handles to every attached probe (None where not requested)."""

    trace: Optional[TraceCollector]
    staleness: Optional[StalenessProbe]
    queues: Optional[QueueSampler]


def attach_probes(
    scenario: Scenario,
    *,
    trace: bool = True,
    staleness: bool = True,
    queues: bool = True,
    queue_period: float = 5e-3,
    trace_capacity: Optional[int] = None,
) -> AnalysisProbes:
    """Instrument ``scenario`` and return the probe handles."""
    if scenario.workload.issued:
        raise ConfigurationError(
            "attach probes before the workload starts, not mid-run"
        )
    trace_collector: Optional[TraceCollector] = None
    if trace:
        trace_collector = TraceCollector(capacity=trace_capacity)
        for client in scenario.clients:
            client.trace_sink = trace_collector

    staleness_probe: Optional[StalenessProbe] = None
    if staleness:
        staleness_probe = StalenessProbe()
        clock = lambda: scenario.env.now  # noqa: E731 - tiny closure
        if scenario.controller is not None:
            # NetRS: wrap the algorithms of the active in-network RSNodes.
            for operator in scenario.controller.operators.values():
                if operator.selector is not None:
                    operator.selector.algorithm = InstrumentedSelector(
                        operator.selector.algorithm, staleness_probe, clock
                    )
        else:
            # CliRS: the clients are the RSNodes.
            for client in scenario.clients:
                client.selector = InstrumentedSelector(
                    client.selector, staleness_probe, clock
                )

    queue_sampler: Optional[QueueSampler] = None
    if queues:
        queue_sampler = QueueSampler(
            scenario.env, scenario.servers, period=queue_period
        )
        queue_sampler.start()

    return AnalysisProbes(
        trace=trace_collector,
        staleness=staleness_probe,
        queues=queue_sampler,
    )
