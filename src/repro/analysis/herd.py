"""Herd-behavior measurement (the paper's factor (ii)).

"Servers may suffer from load oscillations due to 'herd behavior' (multiple
RSNodes simultaneously choose the same replica server for requests).  The
occurrence ... is positively correlated to the number of independent
RSNodes."

:class:`QueueSampler` snapshots every server's true queue length on a fixed
period and summarizes the *imbalance over time*: the mean coefficient of
variation across servers and the fraction of samples where some server's
queue exceeds a multiple of the instantaneous mean (an "oscillation
episode").  Fewer RSNodes should yield visibly smoother queues.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping

import numpy as np

from repro.errors import ConfigurationError
from repro.kvstore.server import KVServer
from repro.sim.core import Environment


@dataclass(frozen=True, slots=True)
class HerdSummary:
    """Aggregated queue-imbalance statistics."""

    samples: int
    mean_queue: float
    mean_cv: float  # average coefficient of variation across snapshots
    max_queue: int
    oscillation_fraction: float  # share of snapshots with a hot outlier


class QueueSampler:
    """Periodic sampler of every server's instantaneous queue size."""

    def __init__(
        self,
        env: Environment,
        servers: Mapping[str, KVServer],
        *,
        period: float = 5e-3,
        hot_multiplier: float = 3.0,
    ) -> None:
        if not servers:
            raise ConfigurationError("QueueSampler needs at least one server")
        if period <= 0:
            raise ConfigurationError("sampling period must be positive")
        if hot_multiplier <= 1:
            raise ConfigurationError("hot_multiplier must exceed 1")
        self.env = env
        self.servers = dict(servers)
        self.period = period
        self.hot_multiplier = hot_multiplier
        self._snapshots: List[List[int]] = []
        self._names = sorted(self.servers)
        self._running = False

    def start(self) -> None:
        """Begin sampling on the configured period."""
        if self._running:
            raise ConfigurationError("sampler already started")
        self._running = True
        self.env.call_in(self.period, self._tick)

    def _tick(self) -> None:
        self._snapshots.append(
            [self.servers[name].queue_size for name in self._names]
        )
        self.env.call_in(self.period, self._tick)

    def __len__(self) -> int:
        return len(self._snapshots)

    def snapshots(self) -> np.ndarray:
        """Matrix of samples: rows = snapshots, columns = servers."""
        if not self._snapshots:
            return np.zeros((0, len(self._names)))
        return np.asarray(self._snapshots, dtype=float)

    def per_server_time_series(self) -> Dict[str, np.ndarray]:
        """Queue-size time series keyed by server name."""
        matrix = self.snapshots()
        return {
            name: matrix[:, i] for i, name in enumerate(self._names)
        }

    def summary(self) -> HerdSummary:
        """Imbalance statistics over all snapshots."""
        matrix = self.snapshots()
        if matrix.size == 0:
            return HerdSummary(
                samples=0,
                mean_queue=math.nan,
                mean_cv=math.nan,
                max_queue=0,
                oscillation_fraction=math.nan,
            )
        means = matrix.mean(axis=1)
        stds = matrix.std(axis=1)
        # CV undefined for empty systems; treat all-idle snapshots as 0.
        cvs = np.where(means > 0, stds / np.maximum(means, 1e-12), 0.0)
        hot = (matrix.max(axis=1) > self.hot_multiplier * np.maximum(means, 1e-12)) & (
            matrix.max(axis=1) >= 2
        )
        return HerdSummary(
            samples=matrix.shape[0],
            mean_queue=float(means.mean()),
            mean_cv=float(cvs.mean()),
            max_queue=int(matrix.max()),
            oscillation_fraction=float(hot.mean()),
        )
