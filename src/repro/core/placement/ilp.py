"""Exact ILP solver for RSNode placement (paper Equations 1-7).

Decision variables: ``P[i][j]`` (group ``i`` selected at operator ``j``, only
materialized for eligible pairs -- Equation (4) prunes the rest) and
``D[j]`` (operator ``j`` is an RSNode).  The objective minimizes
``sum(D_j)``; an optional epsilon-weighted extra-hops term breaks ties in
favor of cheaper plans without ever trading an RSNode for hops.

The paper solves this with Gurobi/CPLEX; we use SciPy's HiGHS backend
(``scipy.optimize.milp``), which is likewise exact.  A time limit reproduces
the paper's early-termination/suboptimal-plan trade-off.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp
from scipy.sparse import csr_matrix

from repro.core.placement.problem import PlacementProblem
from repro.core.plan import SelectionPlan
from repro.errors import InfeasiblePlanError, PlacementError


def solve_ilp(
    problem: PlacementProblem,
    *,
    time_limit: Optional[float] = None,
    hop_tie_break: bool = True,
) -> SelectionPlan:
    """Solve the placement ILP exactly; raises on infeasibility.

    Args:
        problem: The placement inputs.
        time_limit: Optional solver wall-clock budget in seconds; a feasible
            incumbent found within the budget is returned even if optimality
            was not proven.
        hop_tie_break: Add an epsilon extra-hops term to the objective so
            equally sized plans prefer fewer extra hops.
    """
    started = time.perf_counter()  # repro: noqa(DET002) - solver wall time, reported only
    groups = problem.groups
    operators = problem.operators
    op_index = {op.operator_id: j for j, op in enumerate(operators)}

    # Variable layout: first all eligible P pairs, then D per operator.
    pairs: List[Tuple[int, int]] = []  # (group list index, operator list index)
    for gi, group in enumerate(groups):
        eligible = [op_index[op.operator_id] for op in problem.eligible_operators(group)]
        if not eligible:
            raise InfeasiblePlanError(
                f"group {group.group_id} has no eligible operator",
                unplaced_groups=(group.group_id,),
            )
        pairs.extend((gi, oj) for oj in eligible)
    n_pairs = len(pairs)
    n_ops = len(operators)
    n_vars = n_pairs + n_ops

    # Objective: minimize sum(D) (+ epsilon * normalized extra hops).
    c = np.zeros(n_vars)
    c[n_pairs:] = 1.0
    if hop_tie_break:
        hop_cost = np.array(
            [
                problem.extra_hops_rate(groups[gi], operators[oj])
                for gi, oj in pairs
            ]
        )
        scale = max(problem.extra_hops_budget, hop_cost.max(), 1.0)
        # Keep the tie-break strictly smaller than 1 in total so it can never
        # buy an extra RSNode.
        c[:n_pairs] = hop_cost / (scale * max(n_pairs, 1) * 4.0)

    rows: List[int] = []
    cols: List[int] = []
    data: List[float] = []
    lower: List[float] = []
    upper: List[float] = []
    row = 0

    # Equation (5): each group selected exactly once.
    for gi in range(len(groups)):
        for k, (pg, _po) in enumerate(pairs):
            if pg == gi:
                rows.append(row)
                cols.append(k)
                data.append(1.0)
        lower.append(1.0)
        upper.append(1.0)
        row += 1

    # Equation (3): P_ij <= D_j.
    for k, (_pg, po) in enumerate(pairs):
        rows.extend([row, row])
        cols.extend([k, n_pairs + po])
        data.extend([1.0, -1.0])
        lower.append(-np.inf)
        upper.append(0.0)
        row += 1

    # Equation (6): accelerator capacity, one row per capacity group (a
    # shared accelerator's switch set, or a singleton otherwise).
    for member_ids, capacity in problem.capacity_groups():
        member_indexes = {op_index[oid] for oid in member_ids}
        touched = False
        for k, (pg, po) in enumerate(pairs):
            if po in member_indexes:
                rows.append(row)
                cols.append(k)
                data.append(problem.group_load(groups[pg].group_id))
                touched = True
        if touched:
            lower.append(-np.inf)
            upper.append(capacity)
            row += 1

    # Equation (7): global extra-hops budget.
    for k, (pg, po) in enumerate(pairs):
        cost = problem.extra_hops_rate(groups[pg], operators[po])
        if cost:
            rows.append(row)
            cols.append(k)
            data.append(cost)
    lower.append(-np.inf)
    upper.append(problem.extra_hops_budget)
    row += 1

    constraint_matrix = csr_matrix(
        (data, (rows, cols)), shape=(row, n_vars)
    )
    constraints = LinearConstraint(constraint_matrix, lower, upper)
    bounds = Bounds(lb=np.zeros(n_vars), ub=np.ones(n_vars))
    integrality = np.ones(n_vars)

    options: Dict[str, object] = {}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    result = milp(
        c,
        constraints=constraints,
        bounds=bounds,
        integrality=integrality,
        options=options,
    )
    if result.status not in (0, 1) or result.x is None:
        # status 0 = optimal, 1 = iteration/time limit (may carry incumbent).
        raise InfeasiblePlanError(
            f"placement ILP infeasible or unsolved: {result.message}",
            unplaced_groups=tuple(g.group_id for g in groups),
        )

    x = np.asarray(result.x)
    assignments: Dict[int, int] = {}
    for k, (pg, po) in enumerate(pairs):
        if x[k] > 0.5:
            assignments[groups[pg].group_id] = operators[po].operator_id
    if len(assignments) != len(groups):
        raise PlacementError(
            "solver returned an incomplete assignment "
            f"({len(assignments)}/{len(groups)} groups)"
        )
    problem.check_assignment(assignments)
    return SelectionPlan(
        assignments=assignments,
        solver="ilp",
        objective=float(len(set(assignments.values()))),
        solve_time=time.perf_counter() - started,  # repro: noqa(DET002) - reported only
    )
