"""Trivial placement strategies: NetRS-ToR and core-only.

``solve_tor`` is the paper's NetRS-ToR scheme: every traffic group's RSNode
is the operator co-located with its own ToR switch -- zero extra hops, but
as many RSNodes as there are client racks.  ``solve_core_only`` packs all
groups onto the fewest core operators ignoring the hop budget; it exists as
an ablation endpoint (maximally few RSNodes, maximal detours).
"""

from __future__ import annotations

import time
from typing import Dict

from repro.core.placement.problem import PlacementProblem
from repro.core.plan import SelectionPlan
from repro.errors import InfeasiblePlanError
from repro.network.addressing import TIER_CORE, TIER_TOR


def _capacity_state(problem: PlacementProblem):
    """Per-capacity-group remaining budgets (handles shared accelerators)."""
    capacity_key = {}
    remaining = {}
    for members, capacity in problem.capacity_groups():
        remaining[members] = capacity
        for operator_id in members:
            capacity_key[operator_id] = members
    return capacity_key, remaining


def solve_tor(problem: PlacementProblem) -> SelectionPlan:
    """Assign each group to its own rack's ToR operator (NetRS-ToR)."""
    started = time.perf_counter()  # repro: noqa(DET002) - solver wall time, reported only
    by_switch = {op.switch: op for op in problem.operators if op.tier == TIER_TOR}
    capacity_key, remaining = _capacity_state(problem)
    assignments: Dict[int, int] = {}
    unplaced = []
    for group in problem.groups:
        op = by_switch.get(group.tor)
        if op is None:
            unplaced.append(group.group_id)
            continue
        load = problem.group_load(group.group_id)
        key = capacity_key[op.operator_id]
        if load > remaining[key] * (1 + 1e-9) + 1e-9:
            unplaced.append(group.group_id)
            continue
        remaining[key] -= load
        assignments[group.group_id] = op.operator_id
    if unplaced:
        raise InfeasiblePlanError(
            f"NetRS-ToR placement failed for {len(unplaced)} group(s)",
            unplaced_groups=tuple(unplaced),
        )
    return SelectionPlan(
        assignments=assignments,
        solver="tor",
        objective=float(len(set(assignments.values()))),
        solve_time=time.perf_counter() - started,  # repro: noqa(DET002) - reported only
    )


def solve_core_only(problem: PlacementProblem) -> SelectionPlan:
    """Pack all groups onto as few core operators as capacity allows.

    Ignores the extra-hops budget by design (ablation endpoint); capacity is
    still respected.
    """
    started = time.perf_counter()  # repro: noqa(DET002) - solver wall time, reported only
    cores = [op for op in problem.operators if op.tier == TIER_CORE]
    if not cores:
        raise InfeasiblePlanError(
            "no core operators available",
            unplaced_groups=tuple(g.group_id for g in problem.groups),
        )
    groups = sorted(
        problem.groups, key=lambda g: problem.group_load(g.group_id), reverse=True
    )
    capacity_key, remaining = _capacity_state(problem)
    assignments: Dict[int, int] = {}
    unplaced = []
    for group in groups:
        load = problem.group_load(group.group_id)
        target = None
        for op in cores:  # first-fit over a stable order packs tightly
            if load <= remaining[capacity_key[op.operator_id]] * (1 + 1e-9) + 1e-9:
                target = op
                break
        if target is None:
            unplaced.append(group.group_id)
            continue
        remaining[capacity_key[target.operator_id]] -= load
        assignments[group.group_id] = target.operator_id
    if unplaced:
        raise InfeasiblePlanError(
            f"core-only placement failed for {len(unplaced)} group(s)",
            unplaced_groups=tuple(unplaced),
        )
    return SelectionPlan(
        assignments=assignments,
        solver="core-only",
        objective=float(len(set(assignments.values()))),
        solve_time=time.perf_counter() - started,  # repro: noqa(DET002) - reported only
    )
