"""RSNode placement: problem model plus solver backends.

* :func:`~repro.core.placement.ilp.solve_ilp` -- exact MILP (HiGHS), the
  paper's NetRS-ILP,
* :func:`~repro.core.placement.greedy.solve_greedy` -- first-fit heuristic,
* :func:`~repro.core.placement.trivial.solve_tor` -- the paper's NetRS-ToR,
* :func:`~repro.core.placement.trivial.solve_core_only` -- ablation endpoint.
"""

from repro.core.placement.greedy import solve_greedy
from repro.core.placement.ilp import solve_ilp
from repro.core.placement.problem import (
    OperatorSpec,
    PlacementProblem,
    build_operator_specs,
    estimate_traffic,
)
from repro.core.placement.report import plan_report
from repro.core.placement.trivial import solve_core_only, solve_tor

#: Solver registry used by the controller and the CLI.
SOLVERS = {
    "ilp": solve_ilp,
    "greedy": solve_greedy,
    "tor": solve_tor,
    "core-only": solve_core_only,
}

__all__ = [
    "OperatorSpec",
    "PlacementProblem",
    "SOLVERS",
    "build_operator_specs",
    "plan_report",
    "estimate_traffic",
    "solve_core_only",
    "solve_greedy",
    "solve_ilp",
    "solve_tor",
]
