"""Human-readable quality report for a Replica Selection Plan."""

from __future__ import annotations

from typing import List

from repro.core.placement.problem import PlacementProblem
from repro.core.plan import SelectionPlan

_TIER_NAMES = {0: "core", 1: "agg", 2: "tor"}


def plan_report(problem: PlacementProblem, plan: SelectionPlan) -> str:
    """Per-RSNode load, capacity headroom and extra-hop costs as a table."""
    by_id = {op.operator_id: op for op in problem.operators}
    groups_by_id = {g.group_id: g for g in problem.groups}
    loads = problem.plan_operator_loads(plan.assignments)

    rows: List[List[str]] = [
        ["operator", "switch", "tier", "groups", "load/s", "capacity", "util",
         "extra hops/s"]
    ]
    total_hops = 0.0
    for operator_id in plan.rsnode_ids:
        spec = by_id[operator_id]
        assigned = plan.groups_of(operator_id)
        load = loads.get(operator_id, 0.0)
        capacity = problem.capacity_of_operator(operator_id)
        hops = sum(
            problem.extra_hops_rate(groups_by_id[gid], spec) for gid in assigned
        )
        total_hops += hops
        rows.append(
            [
                str(operator_id),
                spec.switch,
                _TIER_NAMES.get(spec.tier, str(spec.tier)),
                str(len(assigned)),
                f"{load:,.0f}",
                f"{capacity:,.0f}",
                f"{load / capacity * 100:.0f}%",
                f"{hops:,.0f}",
            ]
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = [plan.describe()]
    for row in rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    budget = problem.extra_hops_budget
    share = f" ({total_hops / budget * 100:.0f}% of budget)" if budget > 0 else ""
    lines.append(f"total extra hops: {total_hops:,.0f}/s of {budget:,.0f}/s{share}")
    if plan.drs_groups:
        degraded_load = sum(
            problem.group_load(gid)
            for gid in plan.drs_groups
            if gid in problem.traffic
        )
        lines.append(
            f"degraded groups: {sorted(plan.drs_groups)} "
            f"({degraded_load:,.0f} req/s on client backups)"
        )
    return "\n".join(lines)
