"""Greedy heuristic for RSNode placement.

A fallback/ablation alternative to the exact ILP: first-fit-decreasing
bin packing biased toward operators that can serve many groups.

Strategy: consider groups in decreasing load order.  For each group, try to
reuse an already *open* RSNode (eligible, spare capacity, affordable hops),
preferring the one whose marginal extra-hop cost is smallest; otherwise open
the eligible operator that could also serve the most remaining traffic
(cores first in practice, since they are eligible for everything).

Capacity is tracked per *capacity group* -- a shared accelerator's switch
set or a singleton -- so the paper's shared-accelerator deployments are
handled identically to the ILP.

The heuristic is not optimal -- the placement benchmark quantifies the gap
against the ILP -- but it is fast and never violates a constraint.
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List

from repro.core.placement.problem import OperatorSpec, PlacementProblem
from repro.core.plan import SelectionPlan, TrafficGroup
from repro.errors import InfeasiblePlanError


def solve_greedy(problem: PlacementProblem) -> SelectionPlan:
    """Compute a feasible plan greedily; raises on failure.

    Raises:
        InfeasiblePlanError: carrying the groups that could not be placed,
            so the controller can degrade exactly those and retry.
    """
    started = time.perf_counter()  # repro: noqa(DET002) - solver wall time, reported only
    groups = sorted(
        problem.groups, key=lambda g: problem.group_load(g.group_id), reverse=True
    )
    capacity_key: Dict[int, FrozenSet[int]] = {}
    remaining: Dict[FrozenSet[int], float] = {}
    for members, capacity in problem.capacity_groups():
        remaining[members] = capacity
        for operator_id in members:
            capacity_key[operator_id] = members
    hop_budget = problem.extra_hops_budget
    open_ops: List[OperatorSpec] = []
    assignments: Dict[int, int] = {}
    unplaced: List[int] = []

    def fits(op: OperatorSpec, load: float) -> bool:
        spare = remaining[capacity_key[op.operator_id]]
        return load <= spare * (1 + 1e-9) + 1e-9

    def coverage(op: OperatorSpec) -> int:
        return sum(1 for g in problem.groups if problem.eligible(g, op))

    for group in groups:
        load = problem.group_load(group.group_id)
        placed = False
        # 1. Reuse an open RSNode with the cheapest marginal hop cost.
        candidates = [
            op
            for op in open_ops
            if problem.eligible(group, op)
            and fits(op, load)
            and problem.extra_hops_rate(group, op) <= hop_budget + 1e-12
        ]
        if candidates:
            best = min(candidates, key=lambda op: problem.extra_hops_rate(group, op))
            _assign(assignments, remaining, capacity_key, group, best, load)
            hop_budget -= problem.extra_hops_rate(group, best)
            placed = True
        else:
            # 2. Open a new RSNode: prefer wide coverage, then cheap hops.
            closed = [
                op
                for op in problem.operators
                if op not in open_ops
                and problem.eligible(group, op)
                and fits(op, load)
                and problem.extra_hops_rate(group, op) <= hop_budget + 1e-12
            ]
            if closed:
                best = max(
                    closed,
                    key=lambda op: (
                        coverage(op),
                        -problem.extra_hops_rate(group, op),
                    ),
                )
                open_ops.append(best)
                _assign(assignments, remaining, capacity_key, group, best, load)
                hop_budget -= problem.extra_hops_rate(group, best)
                placed = True
        if not placed:
            unplaced.append(group.group_id)

    if unplaced:
        raise InfeasiblePlanError(
            f"greedy placement failed for {len(unplaced)} group(s)",
            unplaced_groups=tuple(unplaced),
        )
    problem.check_assignment(assignments)
    return SelectionPlan(
        assignments=assignments,
        solver="greedy",
        objective=float(len(set(assignments.values()))),
        solve_time=time.perf_counter() - started,  # repro: noqa(DET002) - reported only
    )


def _assign(
    assignments: Dict[int, int],
    remaining: Dict[FrozenSet[int], float],
    capacity_key: Dict[int, FrozenSet[int]],
    group: TrafficGroup,
    operator: OperatorSpec,
    load: float,
) -> None:
    assignments[group.group_id] = operator.operator_id
    remaining[capacity_key[operator.operator_id]] -= load
