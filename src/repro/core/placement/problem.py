"""The RSNode placement problem (paper section III-B).

Gathers everything the solvers need:

* the traffic groups and their per-tier request rates (the matrix ``T``),
* the candidate NetRS operators with their capacities (``T_max``),
* the eligibility matrix ``R`` derived from the topology rules -- a core
  operator is on the default paths of every group; an aggregation operator
  only of groups in its pod; a ToR operator only of its own rack's groups,
* the extra-hops budget ``E``.

Extra-hops accounting implements the paper's Equation (7) with the
coefficient ``2 (h(i,j) - k)``: the paper prints ``+``, but its own worked
example (Tier-2 traffic to a core RSNode costs 4 extra hops) matches ``-``;
tier-``tau`` traffic steered to a tier-``t(j)`` operator detours
``2 (tau - t(j))`` hops (up and back down).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.core.plan import TrafficGroup
from repro.network.addressing import TIER_AGG, TIER_CORE, TIER_TOR
from repro.network.topology import Topology

#: Per-group traffic rates by tier category: (Tier-0, Tier-1, Tier-2) req/s.
TierTraffic = Tuple[float, float, float]


@dataclass(frozen=True, slots=True)
class OperatorSpec:
    """One candidate NetRS operator (a switch + its accelerator)."""

    operator_id: int
    switch: str
    tier: int  # 0 core, 1 aggregation, 2 ToR
    pod: Optional[int]  # None for core switches
    capacity: float  # max request rate this operator may serve (T_max_j)

    def __post_init__(self) -> None:
        if self.operator_id < 1:
            raise ConfigurationError("operator IDs must be positive integers")
        if self.capacity <= 0:
            raise ConfigurationError(f"operator {self.switch} has no capacity")


@dataclass
class PlacementProblem:
    """Inputs of the ILP: groups, operators, traffic, and the hop budget.

    ``shared_accelerators`` implements the paper's section III-B extension:
    when one accelerator is wired to several switches, Equation (6) becomes
    one joint constraint per switch set ``J`` with the shared device's
    capacity ``T_max_J``.  Operators not in any set keep their individual
    capacity.
    """

    groups: List[TrafficGroup]
    operators: List[OperatorSpec]
    traffic: Dict[int, TierTraffic]
    extra_hops_budget: float
    shared_accelerators: Dict[FrozenSet[int], float] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.shared_accelerators is None:
            self.shared_accelerators = {}
        if not self.groups:
            raise ConfigurationError("placement needs at least one group")
        if not self.operators:
            raise ConfigurationError("placement needs at least one operator")
        if self.extra_hops_budget < 0:
            raise ConfigurationError("extra-hops budget must be non-negative")
        missing = [g.group_id for g in self.groups if g.group_id not in self.traffic]
        if missing:
            raise ConfigurationError(f"no traffic data for groups {missing}")
        ids = [op.operator_id for op in self.operators]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("duplicate operator IDs")
        known = set(ids)
        seen: set = set()
        for members, capacity in self.shared_accelerators.items():
            if capacity <= 0:
                raise ConfigurationError("shared-accelerator capacity must be positive")
            if not members:
                raise ConfigurationError("shared-accelerator set is empty")
            unknown = set(members) - known
            if unknown:
                raise ConfigurationError(
                    f"shared-accelerator set references unknown operators {unknown}"
                )
            if seen & set(members):
                raise ConfigurationError(
                    "an operator appears in two shared-accelerator sets"
                )
            seen |= set(members)

    # ------------------------------------------------------------------
    # Matrix R: eligibility (paper's default-network-path rule)
    # ------------------------------------------------------------------
    def eligible(self, group: TrafficGroup, operator: OperatorSpec) -> bool:
        """Whether ``operator`` lies on default paths of ``group``'s requests."""
        if operator.tier == TIER_CORE:
            return True
        if operator.tier == TIER_AGG:
            return operator.pod == group.pod
        if operator.tier == TIER_TOR:
            return operator.switch == group.tor
        raise ConfigurationError(f"operator {operator.switch} has bad tier")

    def eligible_operators(self, group: TrafficGroup) -> List[OperatorSpec]:
        """All operators with ``R[group][operator] = 1``."""
        return [op for op in self.operators if self.eligible(group, op)]

    # ------------------------------------------------------------------
    # Loads and hop costs
    # ------------------------------------------------------------------
    def group_load(self, group_id: int) -> float:
        """Total request rate of a group (Equation 6's left-hand side)."""
        return float(sum(self.traffic[group_id]))

    def total_load(self) -> float:
        """Aggregate request rate over all groups."""
        return sum(self.group_load(g.group_id) for g in self.groups)

    def extra_hops_rate(self, group: TrafficGroup, operator: OperatorSpec) -> float:
        """Extra forwardings per second if ``operator`` serves ``group``.

        Equation (7): ``sum_{k=0}^{h-1} 2 (h - k) T_{i, t(i)-k}`` with
        ``h = t(i) - t(j)``.  Traffic whose tier category is at or above the
        operator's tier passes through that tier anyway and costs nothing.
        """
        h = group.tier - operator.tier
        if h <= 0:
            return 0.0
        tiers = self.traffic[group.group_id]  # (T0, T1, T2)
        cost = 0.0
        for k in range(h):
            tier_category = group.tier - k  # 2, then 1, ...
            cost += 2.0 * (h - k) * tiers[tier_category]
        return cost

    def plan_extra_hops(self, assignments: Dict[int, int]) -> float:
        """Total extra-hop rate of a complete assignment."""
        by_id = {op.operator_id: op for op in self.operators}
        groups = {g.group_id: g for g in self.groups}
        return sum(
            self.extra_hops_rate(groups[gid], by_id[oid])
            for gid, oid in assignments.items()
        )

    def plan_operator_loads(self, assignments: Dict[int, int]) -> Dict[int, float]:
        """Request rate each operator would carry under an assignment."""
        loads: Dict[int, float] = {}
        for gid, oid in assignments.items():
            loads[oid] = loads.get(oid, 0.0) + self.group_load(gid)
        return loads

    def capacity_groups(self) -> List[Tuple[FrozenSet[int], float]]:
        """Capacity constraints as (operator set, joint capacity) pairs.

        Shared-accelerator sets first, then singletons for every operator
        not covered by a set.  Every operator appears in exactly one pair.
        """
        pairs: List[Tuple[FrozenSet[int], float]] = list(
            self.shared_accelerators.items()
        )
        covered = set()
        for members, _capacity in pairs:
            covered |= set(members)
        for op in self.operators:
            if op.operator_id not in covered:
                pairs.append((frozenset({op.operator_id}), op.capacity))
        return pairs

    def capacity_of_operator(self, operator_id: int) -> float:
        """The (possibly shared) capacity constraint covering one operator."""
        for members, capacity in self.shared_accelerators.items():
            if operator_id in members:
                return capacity
        for op in self.operators:
            if op.operator_id == operator_id:
                return op.capacity
        raise ConfigurationError(f"unknown operator {operator_id}")

    def check_assignment(self, assignments: Dict[int, int]) -> None:
        """Validate a complete assignment against all constraints."""
        by_id = {op.operator_id: op for op in self.operators}
        group_by_id = {g.group_id: g for g in self.groups}
        for gid, oid in assignments.items():
            if oid not in by_id:
                raise ConfigurationError(f"assignment uses unknown operator {oid}")
            if not self.eligible(group_by_id[gid], by_id[oid]):
                raise ConfigurationError(
                    f"group {gid} assigned to ineligible operator {oid}"
                )
        loads = self.plan_operator_loads(assignments)
        for members, capacity in self.capacity_groups():
            joint = sum(loads.get(oid, 0.0) for oid in members)
            if joint > capacity * (1 + 1e-9) + 1e-6:
                raise ConfigurationError(
                    f"accelerator serving operators {sorted(members)} "
                    f"overloaded: {joint:.1f} > {capacity:.1f} req/s"
                )
        extra = self.plan_extra_hops(assignments)
        if extra > self.extra_hops_budget * (1 + 1e-9) + 1e-6:
            raise ConfigurationError(
                f"extra-hop budget exceeded: {extra:.1f} > "
                f"{self.extra_hops_budget:.1f} hops/s"
            )


def build_operator_specs(
    topology: Topology,
    *,
    accelerator_cores: int,
    accelerator_service_time: float,
    max_utilization: float,
    work_per_request: float = 2.0,
    first_id: int = 1,
    utilization_overrides: Optional[Mapping[str, float]] = None,
) -> List[OperatorSpec]:
    """One candidate operator per switch, with capacity ``U c / t_ac``.

    ``work_per_request`` accounts for the accelerator touching each request
    *and* the clone of its response (2 packets per served request); the
    capacity in requests/second is scaled down accordingly.

    ``utilization_overrides`` maps switch names to a different utilization
    cap ``U_j`` -- the paper's mechanism for heterogeneous deployments where
    some accelerators are shared with other applications (lower cap) or
    dedicated (higher cap).
    """
    if not 0 < max_utilization <= 1:
        raise ConfigurationError("max_utilization must be in (0, 1]")
    if work_per_request <= 0:
        raise ConfigurationError("work_per_request must be positive")
    overrides = dict(utilization_overrides or {})
    known = {node.name for node in topology.switches}
    unknown = set(overrides) - known
    if unknown:
        raise ConfigurationError(f"utilization overrides for unknown switches {unknown}")
    specs: List[OperatorSpec] = []
    next_id = first_id
    for node in topology.switches:
        utilization = overrides.get(node.name, max_utilization)
        if not 0 < utilization <= 1:
            raise ConfigurationError(
                f"override for {node.name} must be in (0, 1], got {utilization}"
            )
        packet_rate = utilization * accelerator_cores / accelerator_service_time
        specs.append(
            OperatorSpec(
                operator_id=next_id,
                switch=node.name,
                tier=node.tier,
                pod=node.pod,
                capacity=packet_rate / work_per_request,
            )
        )
        next_id += 1
    return specs


def estimate_traffic(
    groups: Sequence[TrafficGroup],
    *,
    topology: Topology,
    server_hosts: Sequence[str],
    group_rates: Dict[int, float],
) -> Dict[int, TierTraffic]:
    """Bootstrap traffic matrix before any monitor data exists.

    Load-based selection spreads requests ~uniformly over servers, so each
    group's tier mix follows the fraction of servers in its rack / pod /
    elsewhere.
    """
    if not server_hosts:
        raise ConfigurationError("need at least one server host")
    locations = [topology.node(h) for h in server_hosts]
    total = len(locations)
    traffic: Dict[int, TierTraffic] = {}
    for group in groups:
        same_rack = sum(
            1 for n in locations if n.pod == group.pod and n.rack == group.rack
        )
        same_pod = (
            sum(1 for n in locations if n.pod == group.pod) - same_rack
        )
        other = total - same_rack - same_pod
        rate = group_rates.get(group.group_id, 0.0)
        traffic[group.group_id] = (
            rate * other / total,
            rate * same_pod / total,
            rate * same_rack / total,
        )
    return traffic
