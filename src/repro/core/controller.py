"""The NetRS controller (paper section III).

The controller is the centralized SDN-side brain: it

* turns monitor statistics (or a bootstrap estimate) into a
  :class:`~repro.core.placement.problem.PlacementProblem`,
* solves it with the configured backend (ILP / greedy / ToR / core-only),
* degrades traffic groups (DRS) when no feasible plan exists -- highest
  traffic first, per section III-C -- and retries,
* deploys the resulting Replica Selection Plan by rewriting NetRS rules on
  every switch and (de)activating operators,
* optionally re-plans periodically from fresh monitor data, and
* handles exceptions: operator overload and operator failure flip the
  affected groups to DRS.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.core.monitor import NetRSMonitor
from repro.core.operator_node import NetRSOperator
from repro.core.placement import SOLVERS
from repro.core.placement.problem import PlacementProblem, TierTraffic
from repro.core.plan import SelectionPlan, TrafficGroup
from repro.core.selector_node import NetRSSelector
from repro.errors import ConfigurationError, InfeasiblePlanError, PlacementError
from repro.network.packet import RSNODE_ILLEGAL
from repro.network.switch import ProgrammableSwitch
from repro.selection.base import ReplicaSelector
from repro.sim.core import Environment

#: Builds a fresh selection algorithm for a newly activated RSNode; receives
#: the number of RSNodes in the plan (C3's concurrency weight).
AlgorithmFactory = Callable[[int], ReplicaSelector]


class NetRSController:
    """Centralized controller generating and deploying RSPs."""

    def __init__(
        self,
        env: Environment,
        *,
        groups: Sequence[TrafficGroup],
        operators: Dict[int, NetRSOperator],
        tor_switches: Dict[str, ProgrammableSwitch],
        all_switches: Sequence[ProgrammableSwitch],
        monitors: Dict[str, NetRSMonitor],
        algorithm_factory: AlgorithmFactory,
        selector_ring,
        extra_hops_budget: float,
        solver: str = "ilp",
        solver_time_limit: Optional[float] = None,
    ) -> None:
        if solver not in SOLVERS:
            raise ConfigurationError(
                f"unknown solver {solver!r}; available: {', '.join(sorted(SOLVERS))}"
            )
        self.env = env
        self.groups = list(groups)
        self.groups_by_id = {g.group_id: g for g in self.groups}
        self.operators = dict(operators)
        self.tor_switches = dict(tor_switches)
        self.all_switches = list(all_switches)
        self.monitors = dict(monitors)
        self.algorithm_factory = algorithm_factory
        self.selector_ring = selector_ring
        self.extra_hops_budget = extra_hops_budget
        self.solver = solver
        self.solver_time_limit = solver_time_limit
        self.current_plan: Optional[SelectionPlan] = None
        self.directory: Dict[int, str] = {
            op_id: op.spec.switch for op_id, op in self.operators.items()
        }
        self.deployments = 0
        self.replans = 0
        self.failures_handled = 0
        self.overloads_handled = 0
        self._group_table_installed = False

    # ------------------------------------------------------------------
    # Static rules
    # ------------------------------------------------------------------
    def install_group_tables(self) -> None:
        """Install host -> traffic-group match rules on every client ToR."""
        for group in self.groups:
            tor = self._tor_for(group)
            for host in group.hosts:
                tor.install_group_rule(host, group.group_id)
        self._group_table_installed = True

    def _tor_for(self, group: TrafficGroup) -> ProgrammableSwitch:
        try:
            return self.tor_switches[group.tor]
        except KeyError:
            raise ConfigurationError(
                f"no ToR switch registered for {group.tor}"
            ) from None

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def build_problem(self, traffic: Dict[int, TierTraffic]) -> PlacementProblem:
        """Assemble the placement problem from a traffic matrix."""
        return PlacementProblem(
            groups=self.groups,
            operators=[op.spec for op in self.operators.values()],
            traffic=traffic,
            extra_hops_budget=self.extra_hops_budget,
        )

    def plan(self, traffic: Dict[int, TierTraffic]) -> SelectionPlan:
        """Solve for an RSP, degrading highest-traffic groups if needed."""
        solve = SOLVERS[self.solver]
        degraded: List[int] = []
        groups = list(self.groups)
        while True:
            if not groups:
                # Everything degraded: clients' backup replicas serve all
                # traffic.  Extreme, but better than no plan at all.
                return SelectionPlan(
                    assignments={},
                    drs_groups=frozenset(degraded),
                    solver=self.solver,
                )
            problem = PlacementProblem(
                groups=groups,
                operators=[op.spec for op in self.operators.values()],
                traffic=traffic,
                extra_hops_budget=self.extra_hops_budget,
            )
            try:
                if self.solver == "ilp" and self.solver_time_limit is not None:
                    plan = solve(problem, time_limit=self.solver_time_limit)
                else:
                    plan = solve(problem)
            except InfeasiblePlanError:
                if not groups:
                    raise
                # Section III-C: degrade the highest-traffic group and retry
                # (high-demand clients have the freshest local state, so they
                # suffer least from selecting replicas themselves).
                groups = sorted(
                    groups,
                    key=lambda g: sum(traffic.get(g.group_id, (0.0, 0.0, 0.0))),
                    reverse=True,
                )
                victim = groups.pop(0)
                degraded.append(victim.group_id)
                continue
            plan.drs_groups = frozenset(degraded)
            return plan

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------
    def deploy(self, plan: SelectionPlan) -> None:
        """Push an RSP into the data plane."""
        if not self._group_table_installed:
            self.install_group_tables()
        active_ids = set(plan.assignments.values())
        n_rsnodes = max(1, len(active_ids))
        # Directory first, so forwarding toward any RSNode resolves.
        for switch in self.all_switches:
            switch.set_directory(self.directory)
        # (De)activate operators.  Newly activated RSNodes start cold.
        for op_id, operator in self.operators.items():
            if op_id in active_ids:
                if not operator.active:
                    algorithm = self.algorithm_factory(n_rsnodes)
                    selector = NetRSSelector(
                        self.env, algorithm=algorithm, ring=self.selector_ring
                    )
                    operator.activate(selector, self.directory)
                else:
                    # Keep warm state; refresh the herd-extrapolation weight.
                    algorithm = operator.selector.algorithm  # type: ignore[union-attr]
                    if hasattr(algorithm, "concurrency_weight"):
                        algorithm.concurrency_weight = n_rsnodes
            elif operator.active:
                operator.deactivate()
        # RSNode-stamping rules on the client ToRs.
        for group in self.groups:
            tor = self._tor_for(group)
            if group.group_id in plan.drs_groups:
                tor.install_rsnode_rule(group.group_id, RSNODE_ILLEGAL)
            else:
                tor.install_rsnode_rule(
                    group.group_id, plan.operator_of(group.group_id)
                )
        self.current_plan = plan
        self.deployments += 1

    def plan_and_deploy(self, traffic: Dict[int, TierTraffic]) -> SelectionPlan:
        """Convenience: solve then deploy."""
        plan = self.plan(traffic)
        self.deploy(plan)
        return plan

    # ------------------------------------------------------------------
    # Periodic re-planning from monitor data
    # ------------------------------------------------------------------
    def measured_traffic(self) -> Dict[int, TierTraffic]:
        """Merge all monitors' window rates into one traffic matrix."""
        traffic: Dict[int, TierTraffic] = {
            g.group_id: (0.0, 0.0, 0.0) for g in self.groups
        }
        for monitor in self.monitors.values():
            for group_id, rates in monitor.rates().items():
                if group_id in traffic:
                    old = traffic[group_id]
                    traffic[group_id] = (
                        old[0] + rates[0],
                        old[1] + rates[1],
                        old[2] + rates[2],
                    )
        return traffic

    def start_replanning(self, period: float) -> None:
        """Begin periodic replan-from-monitors cycles."""
        if period <= 0:
            raise ConfigurationError("replan period must be positive")
        self.env.call_in(period, self._replan_tick, period)

    def _replan_tick(self, period: float) -> None:
        traffic = self.measured_traffic()
        for monitor in self.monitors.values():
            monitor.reset()
        if any(sum(rates) > 0 for rates in traffic.values()):
            try:
                self.plan_and_deploy(traffic)
                self.replans += 1
            except PlacementError:
                # Keep the previous plan; better a stale RSP than none.
                pass
        self.env.call_in(period, self._replan_tick, period)

    # ------------------------------------------------------------------
    # Exception handling (section III-C)
    # ------------------------------------------------------------------
    def degrade_groups(self, group_ids: Sequence[int]) -> None:
        """Flip the given groups to Degraded Replica Selection."""
        for group_id in group_ids:
            group = self.groups_by_id.get(group_id)
            if group is None:
                raise ConfigurationError(f"unknown group {group_id}")
            self._tor_for(group).install_rsnode_rule(group_id, RSNODE_ILLEGAL)
        if self.current_plan is not None:
            self.current_plan.drs_groups = self.current_plan.drs_groups.union(
                group_ids
            )

    def handle_operator_failure(self, operator_id: int) -> None:
        """An RSNode died: degrade its groups so clients' backups serve them."""
        operator = self._operator(operator_id)
        operator.switch.fail()
        self.failures_handled += 1
        self._degrade_assigned(operator_id)

    def recover_operator(self, operator_id: int) -> None:
        """Bring a failed operator back into the candidate pool."""
        self._operator(operator_id).switch.recover()

    def check_overloads(self, max_utilization: float) -> List[int]:
        """Degrade groups of any active operator above ``max_utilization``.

        Returns the IDs of operators found overloaded.
        """
        overloaded = []
        for op_id, operator in self.operators.items():
            if operator.active and operator.utilization() > max_utilization:
                overloaded.append(op_id)
                self.overloads_handled += 1
                self._degrade_assigned(op_id)
        return overloaded

    def _degrade_assigned(self, operator_id: int) -> None:
        if self.current_plan is None:
            return
        assigned = self.current_plan.groups_of(operator_id)
        if assigned:
            self.degrade_groups(assigned)

    def _operator(self, operator_id: int) -> NetRSOperator:
        try:
            return self.operators[operator_id]
        except KeyError:
            raise ConfigurationError(f"unknown operator {operator_id}") from None
