"""NetRS itself: controller, operators, selector, monitor, placement.

This subpackage is the paper's primary contribution: the framework that
moves replica selection off the clients and into the network.

* :mod:`~repro.core.plan` -- traffic groups and the Replica Selection Plan,
* :mod:`~repro.core.placement` -- the RSNode placement ILP and alternatives,
* :mod:`~repro.core.controller` -- plan generation, deployment, DRS,
* :mod:`~repro.core.operator_node` -- switch+accelerator operator bundles,
* :mod:`~repro.core.selector_node` -- replica selection on the accelerator,
* :mod:`~repro.core.monitor` -- per-group traffic statistics on ToR egress.
"""

from repro.core.controller import NetRSController
from repro.core.monitor import NetRSMonitor
from repro.core.operator_node import NetRSOperator
from repro.core.placement import (
    SOLVERS,
    OperatorSpec,
    PlacementProblem,
    build_operator_specs,
    estimate_traffic,
    solve_core_only,
    solve_greedy,
    solve_ilp,
    solve_tor,
)
from repro.core.plan import SelectionPlan, TrafficGroup, make_traffic_groups
from repro.core.selector_node import NetRSSelector

__all__ = [
    "NetRSController",
    "NetRSMonitor",
    "NetRSOperator",
    "NetRSSelector",
    "OperatorSpec",
    "PlacementProblem",
    "SOLVERS",
    "SelectionPlan",
    "TrafficGroup",
    "build_operator_specs",
    "estimate_traffic",
    "make_traffic_groups",
    "solve_core_only",
    "solve_greedy",
    "solve_ilp",
    "solve_tor",
]
