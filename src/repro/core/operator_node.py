"""NetRS operator: the runtime bundle of switch + accelerator + selector.

A NetRS operator (paper Fig. 1) pairs a programmable switch with an attached
network accelerator.  The controller *activates* an operator when some plan
assigns it traffic groups -- activation installs a selector (cold state, as
the paper notes: new RSNodes rebuild their view from scratch) -- and
*deactivates* it when a later plan drops it.
"""

from __future__ import annotations

from typing import Optional

from repro.core.placement.problem import OperatorSpec
from repro.core.selector_node import NetRSSelector
from repro.errors import ConfigurationError
from repro.network.accelerator import Accelerator
from repro.network.switch import ProgrammableSwitch


class NetRSOperator:
    """Runtime state of one NetRS operator."""

    def __init__(
        self,
        spec: OperatorSpec,
        switch: ProgrammableSwitch,
        accelerator: Accelerator,
    ) -> None:
        if switch.name != spec.switch:
            raise ConfigurationError(
                f"spec names switch {spec.switch}, got {switch.name}"
            )
        if switch.accelerator is not accelerator:
            raise ConfigurationError(
                f"switch {switch.name} is not wired to this accelerator"
            )
        self.spec = spec
        self.switch = switch
        self.accelerator = accelerator
        self.selector: Optional[NetRSSelector] = None
        self.activations = 0

    @property
    def operator_id(self) -> int:
        """The controller-assigned positive integer ID."""
        return self.spec.operator_id

    @property
    def active(self) -> bool:
        """Whether this operator currently acts as an RSNode."""
        return self.selector is not None

    def activate(self, selector: NetRSSelector, directory: dict) -> None:
        """Install selector software; state starts cold."""
        self.selector = selector
        self.switch.bind_operator(selector, directory)
        self.accelerator.reset_utilization()
        self.activations += 1

    def deactivate(self) -> None:
        """Stop acting as an RSNode (rules elsewhere stop steering to us)."""
        self.selector = None
        self.switch.selector = None

    def utilization(self) -> float:
        """Accelerator utilization in the current window."""
        return self.accelerator.utilization()
