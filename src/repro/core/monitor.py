"""The NetRS monitor: per-traffic-group tier counters on ToR egress.

Implements paper section IV-D.  The monitor lives in the egress pipeline of
a ToR switch and counts *responses leaving the network* -- the only packets
that (a) reflect the replica NetRS actually chose and (b) belong to traffic
groups of this rack.  Each response is classified by comparing its source
marker against the ToR's own marker: same rack -> Tier-2, same pod ->
Tier-1, otherwise Tier-0.  The controller periodically collects these
counters to build the ILP's traffic matrix ``T``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ProtocolError
from repro.network.addressing import SourceMarker, tier_between
from repro.network.packet import Packet
from repro.sim.core import Environment

#: Maps a destination host name to its traffic-group ID (None = untracked).
GroupLookup = Callable[[str], Optional[int]]


class NetRSMonitor:
    """Match-action counters for one ToR switch."""

    def __init__(
        self,
        env: Environment,
        *,
        marker: SourceMarker,
        group_lookup: GroupLookup,
    ) -> None:
        self.env = env
        self.marker = marker
        self.group_lookup = group_lookup
        self._counts: Dict[int, List[int]] = {}
        self.window_started_at = env.now
        self.observed = 0
        self.unmatched = 0

    def observe(self, packet: Packet) -> None:
        """Egress pipeline hook: count one monitor-labeled response."""
        if packet.source_marker is None:
            raise ProtocolError(
                f"monitored response {packet.request_id} has no source marker"
            )
        if packet.dst is None:
            raise ProtocolError("monitored response has no destination")
        group_id = self.group_lookup(packet.dst)
        if group_id is None:
            self.unmatched += 1
            return
        tier = tier_between(packet.source_marker, self.marker)
        counters = self._counts.setdefault(group_id, [0, 0, 0])
        counters[tier] += 1
        self.observed += 1

    def counts(self) -> Dict[int, Tuple[int, int, int]]:
        """Raw per-group counters ``(tier0, tier1, tier2)`` this window."""
        return {g: (c[0], c[1], c[2]) for g, c in self._counts.items()}

    def rates(self) -> Dict[int, Tuple[float, float, float]]:
        """Per-group traffic rates in requests/second over the window."""
        elapsed = self.env.now - self.window_started_at
        if elapsed <= 0:
            return {g: (0.0, 0.0, 0.0) for g in self._counts}
        return {
            g: (c[0] / elapsed, c[1] / elapsed, c[2] / elapsed)
            for g, c in self._counts.items()
        }

    def reset(self) -> None:
        """Start a fresh measurement window."""
        self._counts.clear()
        self.window_started_at = self.env.now
