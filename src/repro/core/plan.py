"""Traffic groups and the Replica Selection Plan (paper section III-A).

NetRS divides requests into **traffic groups** and assigns each group's
replica selection to one NetRS operator.  Granularities (the paper considers
host-level up to rack-level; request-level is explicitly ruled out):

* ``"host"``  -- each client host is its own group,
* ``"rack"``  -- all client hosts under one ToR form a group,
* an integer ``m`` -- intervening level: up to ``m`` hosts of the same rack
  per group.

The :class:`SelectionPlan` (RSP) maps every group to the operator that acts
as its RSNode, or marks it *degraded* (DRS: the client's backup replica is
used, section III-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.network.addressing import TIER_TOR
from repro.network.topology import Topology

Granularity = Union[str, int]


@dataclass(frozen=True, slots=True)
class TrafficGroup:
    """Requests from a set of co-racked client hosts."""

    group_id: int
    tor: str  # name of the ToR these hosts hang off
    pod: int
    rack: int
    hosts: Tuple[str, ...]

    @property
    def tier(self) -> int:
        """Paper's ``t(g)``: the tier of the ToR the group connects to."""
        return TIER_TOR

    def __post_init__(self) -> None:
        if not self.hosts:
            raise ConfigurationError(f"traffic group {self.group_id} has no hosts")


@dataclass(slots=True)
class SelectionPlan:
    """One Replica Selection Plan: group -> RSNode operator assignments."""

    assignments: Dict[int, int] = field(default_factory=dict)
    drs_groups: FrozenSet[int] = frozenset()
    solver: str = ""
    objective: float = 0.0
    solve_time: float = 0.0

    @property
    def rsnode_ids(self) -> Tuple[int, ...]:
        """Operator IDs that act as RSNodes under this plan."""
        return tuple(sorted(set(self.assignments.values())))

    @property
    def rsnode_count(self) -> int:
        """Number of distinct RSNodes (the ILP objective)."""
        return len(set(self.assignments.values()))

    def operator_of(self, group_id: int) -> int:
        """RSNode operator for a group (raises if the group is degraded)."""
        if group_id in self.drs_groups:
            raise ConfigurationError(f"group {group_id} is degraded (DRS)")
        try:
            return self.assignments[group_id]
        except KeyError:
            raise ConfigurationError(f"group {group_id} is not in the plan") from None

    def groups_of(self, operator_id: int) -> Tuple[int, ...]:
        """All groups whose RSNode is ``operator_id``."""
        return tuple(
            sorted(g for g, o in self.assignments.items() if o == operator_id)
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"RSP[{self.solver}]: {self.rsnode_count} RSNodes for "
            f"{len(self.assignments)} groups"
            + (f", {len(self.drs_groups)} degraded" if self.drs_groups else "")
        )


def make_traffic_groups(
    topology: Topology,
    client_hosts: Sequence[str],
    granularity: Granularity = "rack",
) -> List[TrafficGroup]:
    """Partition client hosts into traffic groups.

    Hosts are grouped by rack first; ``granularity`` then controls how many
    hosts of one rack share a group.  Group IDs start at 1 and are assigned
    in deterministic (rack, host) order.
    """
    if isinstance(granularity, str):
        if granularity == "rack":
            per_group = None
        elif granularity == "host":
            per_group = 1
        else:
            raise ConfigurationError(
                f"granularity must be 'rack', 'host' or an int, got {granularity!r}"
            )
    else:
        if granularity < 1:
            raise ConfigurationError("integer granularity must be >= 1")
        per_group = granularity

    by_rack: Dict[str, List[str]] = {}
    for host in client_hosts:
        tor = topology.tor_of(host)
        by_rack.setdefault(tor.name, []).append(host)

    groups: List[TrafficGroup] = []
    next_id = 1
    for tor_name in sorted(by_rack):
        tor = topology.node(tor_name)
        assert tor.pod is not None and tor.rack is not None
        hosts = sorted(by_rack[tor_name])
        chunk = per_group if per_group is not None else len(hosts)
        for start in range(0, len(hosts), chunk):
            groups.append(
                TrafficGroup(
                    group_id=next_id,
                    tor=tor_name,
                    pod=tor.pod,
                    rack=tor.rack,
                    hosts=tuple(hosts[start : start + chunk]),
                )
            )
            next_id += 1
    return groups
