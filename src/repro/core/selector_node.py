"""The NetRS selector: replica selection on a network accelerator.

Implements paper section IV-C.  For a NetRS request the selector resolves
the RGID against its local replica-group database, runs the configured
replica-selection algorithm, and rebuilds the packet: destination set to the
chosen server, retaining value set to the send timestamp (the paper's worked
example for RV), and magic set to ``f(MAGIC_RESPONSE)`` so switches treat the
rebuilt packet as ordinary traffic while the server's ``f^-1`` turns the
reply into a NetRS response.  For a cloned NetRS response the selector folds
the piggybacked server status (and the RV-derived response time) into the
algorithm's state and drops the clone.
"""

from __future__ import annotations

from repro.errors import ProtocolError
from repro.kvstore.hashing import ConsistentHashRing
from repro.network.packet import (
    MAGIC_RESPONSE,
    Packet,
    magic_transform,
)
from repro.selection.base import ReplicaSelector
from repro.sim.core import Environment


class NetRSSelector:
    """Selector software running on one NetRS operator's accelerator."""

    def __init__(
        self,
        env: Environment,
        *,
        algorithm: ReplicaSelector,
        ring: ConsistentHashRing,
    ) -> None:
        self.env = env
        self.algorithm = algorithm
        self.ring = ring
        self.requests_handled = 0
        self.responses_handled = 0

    def on_request(self, packet: Packet) -> Packet:
        """Choose a replica and rebuild the request (accelerator work)."""
        if packet.rgid < 0:
            raise ProtocolError(
                f"NetRS request {packet.request_id} carries no RGID"
            )
        now = self.env.now
        candidates = self.ring.replicas(packet.rgid)
        server = self.algorithm.select(candidates, now)
        self.algorithm.note_sent(server, now)
        packet.dst = server
        packet.server = server
        packet.retaining_value = now
        packet.selected_at = now
        packet.magic = magic_transform(MAGIC_RESPONSE)
        self.requests_handled += 1
        return packet

    def on_response(self, packet: Packet) -> None:
        """Fold a cloned NetRS response into local information."""
        if packet.server_status is None:
            raise ProtocolError(
                f"NetRS response {packet.request_id} carries no server status"
            )
        response_time = self.env.now - packet.retaining_value
        self.algorithm.note_response(
            packet.server, response_time, packet.server_status, self.env.now
        )
        self.responses_handled += 1
