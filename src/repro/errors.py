"""Exception hierarchy shared across the NetRS reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """An experiment or component was configured inconsistently."""


class TopologyError(ReproError):
    """The network topology is malformed or a lookup failed."""


class RoutingError(ReproError):
    """A packet could not be routed to its destination."""


class PlacementError(ReproError):
    """The RSNode placement problem could not be solved."""


class InfeasiblePlanError(PlacementError):
    """No Replica Selection Plan satisfies the constraints.

    Carries the traffic groups that the solver failed to place so the
    controller can degrade them (DRS) and retry, as per paper section III-C.
    """

    def __init__(self, message: str, unplaced_groups: tuple = ()) -> None:
        super().__init__(message)
        self.unplaced_groups = tuple(unplaced_groups)


class ProtocolError(ReproError):
    """A packet violated the NetRS wire protocol."""


class ExecutionError(ReproError):
    """A job of a parallel experiment run failed on every attempt."""
