"""Network accelerator model (paper sections II and V-A).

An accelerator is a small multicore packet processor attached to a
programmable switch.  The paper uses low-end devices: 1 core, 5 us of
processing per packet, and a 2.5 us round-trip to the co-located switch
(numbers measured by IncBricks).  We model it as a FIFO queue drained by
``cores`` servers with deterministic service time; the work itself (replica
selection or state update) is an injected callable so the accelerator stays
agnostic of NetRS logic.

Utilization accounting feeds two consumers: the placement problem's capacity
constraint (``T_max = U * cores / service_time``) and the controller's
overload detection (section III-C, exception ii).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple

from repro.sim.core import Environment

#: Work applied to a packet at service completion; returns the (possibly
#: rebuilt) packet, or ``None`` to absorb it.
Work = Callable[[Any], Optional[Any]]
#: Invoked back on the switch with the work's result (skipped when ``None``).
Done = Optional[Callable[[Any], None]]


class Accelerator:
    """FIFO multicore packet processor with deterministic service time."""

    def __init__(
        self,
        env: Environment,
        name: str,
        *,
        cores: int = 1,
        service_time: float = 5e-6,
        link_delay: float = 1.25e-6,
    ) -> None:
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        if service_time <= 0:
            raise ValueError(f"service_time must be positive, got {service_time}")
        if link_delay < 0:
            raise ValueError(f"link_delay must be non-negative, got {link_delay}")
        self.env = env
        self.name = name
        self.cores = cores
        self.service_time = service_time
        self.link_delay = link_delay
        self._busy = 0
        self._queue: Deque[Tuple[Any, Work, Done]] = deque()
        # Accounting
        self.processed = 0
        self.busy_time = 0.0
        self._started_at = env.now
        self.max_queue_seen = 0

    @property
    def capacity(self) -> float:
        """Maximum processing rate in packets per second."""
        return self.cores / self.service_time

    @property
    def queue_length(self) -> int:
        """Packets waiting (not counting those in service)."""
        return len(self._queue)

    def utilization(self) -> float:
        """Fraction of core-time spent busy since construction."""
        elapsed = self.env.now - self._started_at
        if elapsed <= 0:
            return 0.0
        return self.busy_time / (self.cores * elapsed)

    def reset_utilization(self) -> None:
        """Start a fresh utilization window (controller epochs)."""
        self.busy_time = 0.0
        self._started_at = self.env.now

    # ------------------------------------------------------------------
    # Processing
    # ------------------------------------------------------------------
    def submit(self, packet: Any, work: Work, done: Done = None) -> None:
        """Called by the co-located switch: ship the packet over the link."""
        self.env.post_in(self.link_delay, self._enqueue, (packet, work, done))

    def _enqueue(self, packet: Any, work: Work, done: Done) -> None:
        if self._busy < self.cores:
            self._busy += 1
            self.env.post_in(self.service_time, self._complete, (packet, work, done))
        else:
            self._queue.append((packet, work, done))
            if len(self._queue) > self.max_queue_seen:
                self.max_queue_seen = len(self._queue)

    def _complete(self, packet: Any, work: Work, done: Done) -> None:
        self.processed += 1
        self.busy_time += self.service_time
        result = work(packet)
        if done is not None and result is not None:
            # Ship the result back over the accelerator<->switch link.
            self.env.post_in(self.link_delay, done, (result,))
        if self._queue:
            self.env.post_in(self.service_time, self._complete, self._queue.popleft())
        else:
            self._busy -= 1
