"""The NetRS packet format (paper section IV-A, Fig. 2).

NetRS messages ride in UDP payloads.  Request and response carry different
segments to keep protocol overhead low:

===============  =========  =====================================================
Segment          Size       Meaning
===============  =========  =====================================================
RID              2 bytes    ID of the NetRS operator acting as RSNode
MF               6 bytes    magic field: packet-type label
RV               2 bytes    retaining value, set by the RSNode, echoed back
RGID (request)   3 bytes    replica-group ID; selector resolves to candidates
SM (response)    4 bytes    source marker (pod + rack of the server)
SSL (response)   2 bytes    length of the piggybacked server status
SS (response)    variable   piggybacked server status
payload          variable   application content
===============  =========  =====================================================

The magic field distinguishes NetRS requests (``MAGIC_REQUEST``), NetRS
responses (``MAGIC_RESPONSE``) and monitor-visible non-NetRS packets
(``MAGIC_MONITOR``), plus their images under an invertible transform
``f`` (:func:`magic_transform`).  The transform implements the paper's
request/response magic dance:

* the selector rebuilds a request with ``f(MAGIC_RESPONSE)`` -- switches stop
  treating it as NetRS, yet the server's ``f^-1`` restores ``MAGIC_RESPONSE``
  on the reply;
* a ToR enabling DRS stamps ``f(MAGIC_MONITOR)`` -- the reply comes back as
  ``MAGIC_MONITOR``, counted by the monitor but never sent to an accelerator.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ProtocolError
from repro.network.addressing import SourceMarker

# Magic-field constants.  Values are arbitrary but distinct, including under
# the transform; 6 bytes on the wire.
MAGIC_REQUEST = 0x4E52_5351  # "NRSQ"
MAGIC_RESPONSE = 0x4E52_5350  # "NRSP"
MAGIC_MONITOR = 0x4E52_534D  # "NRSM"
MAGIC_PLAIN = 0x0000_0000  # ordinary (non-NetRS) traffic

_TRANSFORM_MASK = 0x00F0_F0F0

#: RSNode ID meaning "no operator assigned" (packet not yet stamped).
RSNODE_UNSET = 0
#: Illegal RSNode ID used to request Degraded Replica Selection (section IV-B).
RSNODE_ILLEGAL = -1

# Fixed segment sizes in bytes (Fig. 2), used by wire_size().
_SIZE_RID = 2
_SIZE_MF = 6
_SIZE_RV = 2
_SIZE_RGID = 3
_SIZE_SM = 4
_SIZE_SSL = 2
_SIZE_UDP_HEADERS = 8 + 20 + 14  # UDP + IPv4 + Ethernet


def magic_transform(magic: int) -> int:
    """The invertible function ``f(.)`` applied to magic fields."""
    return magic ^ _TRANSFORM_MASK


def magic_untransform(magic: int) -> int:
    """``f^-1(.)``; XOR is an involution so this equals ``f``."""
    return magic ^ _TRANSFORM_MASK


@dataclass(frozen=True, slots=True)
class ServerStatus:
    """Piggybacked server state (Fig. 2 ``SS`` segment).

    This is what C3 calls the server-side feedback: the instantaneous queue
    size and the server's own estimate of its service rate.
    """

    queue_size: int
    service_rate: float  # requests per second, EWMA kept by the server
    timestamp: float  # server clock when the status was sampled

    def wire_size(self) -> int:
        """Bytes of the encoded status: queue (4) + rate (4) + stamp (4)."""
        return 12


@dataclass(slots=True)
class Packet:
    """One simulated key-value message (request or response).

    ``src``/``dst`` are end-host names; ``dst`` is ``None`` for a NetRS
    request until an RSNode selects the replica.  ``route``/``route_pos``/
    ``route_target`` cache the source-routed path currently being followed --
    they model the deterministic ECMP choice a chain of switches would make,
    recomputed whenever a NetRS rule redirects the packet.
    """

    src: str
    dst: Optional[str]
    magic: int
    request_id: int
    # --- NetRS header segments -------------------------------------------
    rsnode_id: int = RSNODE_UNSET
    retaining_value: float = 0.0
    rgid: int = -1  # request only
    source_marker: Optional[SourceMarker] = None  # response only
    server_status: Optional[ServerStatus] = None  # response only
    # --- application payload ---------------------------------------------
    key: int = 0
    value_size: int = 0  # bytes carried by a response
    client: str = ""  # issuing client host (src of the original request)
    server: str = ""  # serving host (filled once selected)
    backup_replica: str = ""  # client-chosen DRS fallback (request only)
    issued_at: float = 0.0  # client clock at issue time
    is_redundant: bool = False  # duplicate sent by CliRS-R95
    is_write: bool = False  # replicated write (fans out to all replicas)
    # --- consistency protocol segments (see docs/CONSISTENCY.md) ----------
    is_digest: bool = False  # version-only read probe (quorum reads)
    is_repair: bool = False  # asynchronous read-repair write
    is_migration: bool = False  # key-range transfer between servers (churn)
    version_ts: float = 0.0  # LWW logical timestamp (client issue clock)
    version_id: int = 0  # LWW tie-break (globally monotone request id)
    migration_entries: tuple = ()  # ((key, version_ts, version_id), ...)
    # --- latency-decomposition stamps (simulation metadata, not wire data) --
    selected_at: float = 0.0  # when an RSNode finished selecting (0 = client)
    server_queue_delay: float = 0.0  # waiting time at the server
    server_service_time: float = 0.0  # actual service duration
    # --- in-flight routing state ------------------------------------------
    route: List[str] = field(default_factory=list)
    route_pos: int = 0
    route_target: str = ""
    hops: int = 0  # forwarding count, for overhead accounting

    @property
    def is_request(self) -> bool:
        """True for request-shaped packets (NetRS or plain).

        Every response piggybacks a :class:`ServerStatus` (that is the C3
        feedback channel), so its absence identifies a request.
        """
        return self.server_status is None

    def flow_key(self, salt: str = "") -> int:
        """Deterministic ECMP hash for this packet's 5-tuple-ish identity."""
        identity = f"{self.src}|{self.dst}|{self.request_id}|{salt}"
        return zlib.crc32(identity.encode("ascii"))

    def wire_size(self) -> int:
        """Approximate on-the-wire size in bytes (headers + payload)."""
        size = _SIZE_UDP_HEADERS
        if self.magic != MAGIC_PLAIN:
            size += _SIZE_RID + _SIZE_MF + _SIZE_RV
        if self.rgid >= 0:
            size += _SIZE_RGID
        if self.source_marker is not None:
            size += _SIZE_SM
        if self.server_status is not None:
            size += _SIZE_SSL + self.server_status.wire_size()
        size += 16 if self.value_size == 0 else self.value_size  # app payload
        return size

    def wire_accounting(self) -> "tuple[int, int]":
        """``(wire_size(), netrs_header_bytes())`` in one pass.

        The fabric charges both on every hop; evaluating the shared segment
        branches once halves the accounting cost on the hot path.
        """
        common = 0
        if self.rgid >= 0:
            common += _SIZE_RGID
        if self.source_marker is not None:
            common += _SIZE_SM
        if self.magic != MAGIC_PLAIN:
            fixed = _SIZE_RID + _SIZE_MF + _SIZE_RV
            overhead = fixed + common
        else:
            fixed = 0
            overhead = 0
        size = _SIZE_UDP_HEADERS + fixed + common
        if self.server_status is not None:
            size += _SIZE_SSL + self.server_status.wire_size()
        size += 16 if self.value_size == 0 else self.value_size  # app payload
        return size, overhead

    def netrs_header_bytes(self) -> int:
        """Bytes attributable to the NetRS protocol itself.

        The piggybacked server status is excluded: load-aware selection
        needs it with or without NetRS (C3 piggybacks it under CliRS too).
        """
        if self.magic == MAGIC_PLAIN:
            return 0
        size = _SIZE_RID + _SIZE_MF + _SIZE_RV
        if self.rgid >= 0:
            size += _SIZE_RGID
        if self.source_marker is not None:
            size += _SIZE_SM
        return size

    def clone(self) -> "Packet":
        """Deep-enough copy for redundant requests and accelerator clones."""
        duplicate = Packet(
            src=self.src,
            dst=self.dst,
            magic=self.magic,
            request_id=self.request_id,
            rsnode_id=self.rsnode_id,
            retaining_value=self.retaining_value,
            rgid=self.rgid,
            source_marker=self.source_marker,
            server_status=self.server_status,
            key=self.key,
            value_size=self.value_size,
            client=self.client,
            server=self.server,
            backup_replica=self.backup_replica,
            issued_at=self.issued_at,
            is_redundant=self.is_redundant,
            is_write=self.is_write,
            is_digest=self.is_digest,
            is_repair=self.is_repair,
            is_migration=self.is_migration,
            version_ts=self.version_ts,
            version_id=self.version_id,
            migration_entries=self.migration_entries,
        )
        duplicate.selected_at = self.selected_at
        duplicate.server_queue_delay = self.server_queue_delay
        duplicate.server_service_time = self.server_service_time
        duplicate.route = list(self.route)
        duplicate.route_pos = self.route_pos
        duplicate.route_target = self.route_target
        duplicate.hops = self.hops
        return duplicate


def make_request(
    *,
    client: str,
    request_id: int,
    key: int,
    rgid: int,
    backup_replica: str,
    issued_at: float,
    netrs: bool,
    dst: Optional[str] = None,
) -> Packet:
    """Build a fresh read request.

    With ``netrs=True`` the destination is left open (an RSNode will choose);
    otherwise ``dst`` must name the replica the client selected.
    """
    if netrs:
        magic = MAGIC_REQUEST
        if dst is not None:
            raise ProtocolError("NetRS requests must not pre-select a destination")
    else:
        magic = MAGIC_PLAIN
        if dst is None:
            raise ProtocolError("plain requests require a destination replica")
    return Packet(
        src=client,
        dst=dst,
        magic=magic,
        request_id=request_id,
        rgid=rgid if netrs else -1,
        key=key,
        client=client,
        backup_replica=backup_replica,
        issued_at=issued_at,
        server="" if netrs else (dst or ""),
    )


def make_response(request: Packet, *, server: str, status: ServerStatus, value_size: int = 1024) -> Packet:
    """Build the server's reply to ``request``.

    The magic is ``f^-1`` of the request's magic (paper section IV-C): a
    request rebuilt by a selector (``f(MAGIC_RESPONSE)``) yields a NetRS
    response; a DRS request (``f(MAGIC_MONITOR)``) yields a monitor-only one;
    a plain request yields a plain response.
    """
    if request.magic == MAGIC_PLAIN:
        magic = MAGIC_PLAIN
    else:
        magic = magic_untransform(request.magic)
    response = Packet(
        src=server,
        dst=request.client,
        magic=magic,
        request_id=request.request_id,
        rsnode_id=request.rsnode_id,
        retaining_value=request.retaining_value,
        server_status=status,
        key=request.key,
        value_size=value_size,
        client=request.client,
        server=server,
        issued_at=request.issued_at,
        is_redundant=request.is_redundant,
        is_write=request.is_write,
        is_digest=request.is_digest,
    )
    response.selected_at = request.selected_at
    response.server_queue_delay = request.server_queue_delay
    response.server_service_time = request.server_service_time
    return response
