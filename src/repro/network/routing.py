"""Deterministic ECMP routing over tree topologies.

The router answers one question: *given that a device holds a packet, through
which sequence of devices does it reach a target node?*  Paths are valley-free
(climb, then descend) and equal-cost choices (which aggregation switch, which
core) are made by hashing the packet's flow key, so a flow always takes the
same path -- this models per-flow ECMP as deployed in real data centers and
keeps the simulation deterministic.

NetRS steers packets to waypoint switches (RSNodes); the router therefore
supports switch targets as well as host targets.  All combinations used by
the NetRS data plane are covered:

* ToR -> {host, ToR, aggregation, core}   (stamping ToR forwards to RSNode)
* aggregation/core -> host                (RSNode forwards to server/client)
* host -> anything                        (convenience: prepends the ToR)
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import RoutingError, TopologyError
from repro.network.topology import Node, NodeKind, Topology


def _pick(options: List[str], flow_key: int, depth: int) -> str:
    """Deterministic ECMP choice among ``options``.

    ``depth`` decorrelates successive choices along one path so a flow does
    not always pick index ``k % n`` at every stage.
    """
    if not options:
        raise RoutingError("no candidate next hop")
    if len(options) == 1:
        return options[0]
    return options[(flow_key >> (5 * depth)) % len(options)]


#: Default bound on the per-router path cache.  A paper-scale run touches a
#: few tens of thousands of distinct ``(src, dst, flow_key)`` triples, so
#: this keeps the steady state entirely resident while bounding memory.
DEFAULT_PATH_CACHE_SIZE = 65536


class Router:
    """Path computation with precomputed topology indexes and a path cache.

    ``path()`` is a pure function of ``(src, dst, flow_key)`` for a fixed
    topology, so results are memoized in a bounded LRU keyed by that triple;
    ``path_cache_size=0`` bypasses the cache entirely (the determinism tests
    compare both modes byte-for-byte).  The *wiring* is frozen -- if nodes or
    edges are ever added, build a new ``Router`` -- but link *liveness* is
    dynamic: :meth:`fail_link` marks a link dead, :meth:`invalidate` drops
    every cached path that touches a node, and ECMP choices skip dead links
    when an alternative exists (local link-state rerouting: only the
    immediate next edge of each choice is checked, matching what a real
    switch knows; a cut with no alternative leaves the packet heading into
    the dead link, where the fabric drops it).  NetRS operator failures do
    not invalidate anything because they change which switch *selects*, not
    how packets are wired.

    While any link is down, caching switches from masked to full flow keys
    (a dead link changes candidate-list lengths, so the precomputed ECMP
    key mask no longer covers all influential bits); once the last link is
    restored, the caches are flushed wholesale and the canonical masked-key
    universe rebuilds.  Fault-free runs are therefore byte-identical to a
    Router without this machinery, which the determinism suites pin.

    Cached lists are shared between callers and must not be mutated.
    """

    def __init__(
        self, topology: Topology, *, path_cache_size: int = DEFAULT_PATH_CACHE_SIZE
    ) -> None:
        if path_cache_size < 0:
            raise ValueError("path_cache_size must be >= 0")
        self.topology = topology
        self.path_cache_size = path_cache_size
        # Directed pairs (a, b) whose link is administratively dead; both
        # directions are stored so membership tests need no normalization.
        self._failed_links: set = set()
        self._path_cache: Dict[Tuple[str, str, int], List[str]] = {}
        self._hop_cache: Dict[Tuple[str, str, int], int] = {}
        self._tor_of_host: Dict[str, str] = {}
        self._aggs_by_pod: Dict[int, List[str]] = {}
        self._cores_of_agg: Dict[str, List[str]] = {}
        self._aggs_of_core_pod: Dict[Tuple[str, int], List[str]] = {}
        self._build_indexes()

    def _build_indexes(self) -> None:
        topo = self.topology
        for host in topo.hosts:
            self._tor_of_host[host.name] = topo.tor_of(host.name).name
        for agg in topo.by_kind(NodeKind.AGG):
            assert agg.pod is not None
            self._aggs_by_pod.setdefault(agg.pod, []).append(agg.name)
            cores = sorted(topo.uplinks(agg.name))
            self._cores_of_agg[agg.name] = cores
            for core in cores:
                self._aggs_of_core_pod.setdefault((core, agg.pod), []).append(agg.name)
        # Direct node map and host-name set: the hot path must not pay
        # ``topology.node``'s error handling per hop.
        self._nodes: Dict[str, Node] = topo.nodes
        self._host_names = frozenset(self._tor_of_host)
        self._ecmp_key_mask = self._compute_ecmp_key_mask()

    def _compute_ecmp_key_mask(self) -> int | None:
        """Mask of flow-key bits that can influence any ECMP choice.

        ``_pick`` at depth ``d`` computes ``(flow_key >> 5d) % n``.  When
        every candidate-list length ``n`` a given depth can ever see is a
        power of two (<= 32), that modulo only reads ``log2(n)`` bits of the
        shifted key, so two flow keys agreeing on the masked bits take
        identical paths for every ``(src, dst)``.  The path cache then keys
        on the *masked* key, collapsing the per-request flow keys (which
        otherwise never repeat) onto a few equivalence classes per pair.
        Lengths are tracked per depth: in a fat-tree every core reaches a
        pod through exactly one aggregation switch, so the depth-2 descent
        choice is a singleton and contributes no bits at all.  Returns
        ``None`` (full-key caching) when any length is not a power of two.
        """
        # Candidate-list lengths per _pick depth, matching the call sites in
        # _from_tor/_from_agg/_from_core.
        depth0 = set()  # climb: local aggs, or aggs wired to a target core
        depth1 = set()  # core choice off the chosen agg
        depth2 = set()  # descent agg into the destination pod
        for options in self._aggs_by_pod.values():
            depth0.add(len(options))
        for options in self._aggs_of_core_pod.values():
            depth0.add(len(options))  # climbers toward a core target
            depth2.add(len(options))  # descent into a pod
        for options in self._cores_of_agg.values():
            depth1.add(len(options))
        # The cross-pod aggregation-target branch of _from_tor builds two
        # derived candidate lists (both indexed at depth 1); enumerate their
        # possible lengths too.
        aggs = list(self._cores_of_agg)
        for target in aggs:
            target_cores = set(self._cores_of_agg[target])
            target_pod = self._nodes[target].pod
            for pod, pod_aggs in self._aggs_by_pod.items():
                if pod == target_pod:
                    continue
                shared_counts = [
                    len(target_cores.intersection(self._cores_of_agg[agg]))
                    for agg in pod_aggs
                ]
                depth1.update(n for n in shared_counts if n)
                climbers = sum(1 for n in shared_counts if n)
                if climbers:
                    depth1.add(climbers)
        mask = 0
        for shift, lengths in ((0, depth0), (5, depth1), (10, depth2)):
            lengths.discard(0)
            if not lengths:
                continue
            if any(n & (n - 1) or n > 32 for n in lengths):
                return None
            bits = (1 << (max(lengths).bit_length() - 1)) - 1
            mask |= bits << shift
        return mask

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def tor_of(self, host_name: str) -> str:
        """Name of the ToR a host hangs off (cached)."""
        try:
            return self._tor_of_host[host_name]
        except KeyError:
            raise TopologyError(f"unknown host: {host_name}") from None

    def invalidate(self, node: str) -> int:
        """Drop every cached path that starts at, ends at, or crosses ``node``.

        Returns the number of path entries dropped.  This is the cache's
        contract with dynamic link state: simply *bypassing* a dead link for
        new computations is not enough, because entries computed before the
        failure may still route through it (the regression test in
        ``tests/network/test_routing.py`` pins this).  ``hop_count`` entries
        only store totals, so crossing-``node`` entries cannot be identified
        individually; that cache is flushed wholesale (it is consulted by
        the placement solvers before the run, never on the per-packet path).
        """
        cache = self._path_cache
        stale = [
            key
            for key, path in cache.items()
            if key[0] == node or key[1] == node or node in path
        ]
        for key in stale:
            del cache[key]
        if self._hop_cache:
            self._hop_cache.clear()
        return len(stale)

    def fail_link(self, a: str, b: str) -> None:
        """Mark the direct link ``a <-> b`` dead for ECMP choices."""
        self._failed_links.add((a, b))
        self._failed_links.add((b, a))
        self.invalidate(a)
        self.invalidate(b)

    def restore_link(self, a: str, b: str) -> None:
        """Bring a failed link back; flushes caches on the last restore."""
        self._failed_links.discard((a, b))
        self._failed_links.discard((b, a))
        if self._failed_links:
            self.invalidate(a)
            self.invalidate(b)
        else:
            # Back to a fault-free fabric: drop every detour so subsequent
            # lookups rebuild the canonical masked-key cache universe.
            self._path_cache.clear()
            self._hop_cache.clear()

    def _live(
        self, from_name: str, options: List[str], to_name: str | None = None
    ) -> List[str]:
        """ECMP candidates whose immediate links are alive.

        Checks the ``from_name -> option`` edge and, when ``to_name`` is
        given, the ``option -> to_name`` edge (the descent step, where the
        chosen switch's link to the final target is also known locally).
        Falls back to the unfiltered list when every candidate is dead --
        the packet then heads into a dead link and the fabric drops it,
        modeling a genuine partition rather than inventing a detour the
        topology does not offer.
        """
        failed = self._failed_links
        if not failed:
            return options
        live = [
            option
            for option in options
            if (from_name, option) not in failed
            and (to_name is None or (option, to_name) not in failed)
        ]
        return live or options

    def path(self, src: str, dst: str, flow_key: int) -> List[str]:
        """Device names a packet visits *after* ``src``, ending at ``dst``.

        Results are memoized (see class docstring); treat the returned list
        as immutable.  Raises :class:`RoutingError` when no valley-free path
        exists (e.g. aggregation to aggregation in a fat-tree, which NetRS
        never needs).
        """
        if self.path_cache_size == 0:
            return self._compute_path(src, dst, flow_key)
        # Under active link faults the candidate lists shrink, so the
        # precomputed per-depth mask no longer bounds the influential bits;
        # cache on the full key until the fabric heals (see class docstring).
        mask = self._ecmp_key_mask if not self._failed_links else None
        if mask is not None:
            key = (src, dst, flow_key & mask)
        else:
            key = (src, dst, flow_key)
        cache = self._path_cache
        hit = cache.pop(key, None)
        if hit is not None:
            cache[key] = hit  # re-insert: keeps dict order = recency order
            return hit
        if dst in self._host_names and src not in self._host_names:
            # Every switch-to-host path is the path to the host's ToR plus
            # the host itself (same flow key, same ECMP depths -- each
            # host branch of _from_tor/_from_agg/_from_core appends
            # ``[dst]`` to the corresponding ToR path).  Recursing through
            # the cache shares one ToR-to-ToR trunk entry across all hosts
            # on the destination rack, which matters because within a run
            # most (src, dst) host pairs are seen only a handful of times.
            path = self.path(src, self._tor_of_host[dst], flow_key) + [dst]
        else:
            path = self._compute_path(src, dst, flow_key)
        if len(cache) >= self.path_cache_size:
            del cache[next(iter(cache))]  # least recently used
        cache[key] = path
        return path

    def _compute_path(self, src: str, dst: str, flow_key: int) -> List[str]:
        if src == dst:
            return []
        nodes = self._nodes
        src_node = nodes.get(src)
        dst_node = nodes.get(dst)
        if src_node is None or dst_node is None:
            # Cold path: reproduce topology.node's error reporting.
            src_node = self.topology.node(src)
            dst_node = self.topology.node(dst)
        if src_node.kind is NodeKind.HOST:
            tor = self.tor_of(src)
            if tor == dst:
                return [tor]
            return [tor] + self._from_tor(nodes[tor], dst_node, flow_key)
        if src_node.kind is NodeKind.TOR:
            return self._from_tor(src_node, dst_node, flow_key)
        if src_node.kind is NodeKind.AGG:
            return self._from_agg(src_node, dst_node, flow_key)
        return self._from_core(src_node, dst_node, flow_key)

    # ------------------------------------------------------------------
    # Per-source-kind path construction
    # ------------------------------------------------------------------
    def _from_tor(self, tor: Node, dst: Node, flow_key: int) -> List[str]:
        assert tor.pod is not None
        if dst.kind is NodeKind.HOST:
            dst_tor = self.tor_of(dst.name)
            if dst_tor == tor.name:
                return [dst.name]
            return self._from_tor(tor, self._nodes[dst_tor], flow_key) + [dst.name]
        if dst.kind is NodeKind.TOR:
            if dst.pod == tor.pod:
                agg = _pick(
                    self._live(tor.name, self._aggs_by_pod[tor.pod], dst.name),
                    flow_key,
                    0,
                )
                return [agg, dst.name]
            agg_up = _pick(
                self._live(tor.name, self._aggs_by_pod[tor.pod]), flow_key, 0
            )
            core = _pick(
                self._live(agg_up, self._cores_of_agg[agg_up]), flow_key, 1
            )
            assert dst.pod is not None
            agg_down = _pick(
                self._live(core, self._descent_aggs(core, dst.pod), dst.name),
                flow_key,
                2,
            )
            return [agg_up, core, agg_down, dst.name]
        if dst.kind is NodeKind.AGG:
            if dst.pod == tor.pod:
                return [dst.name]
            # Cross-pod aggregation target (responses heading to an RSNode in
            # the client's pod): climb via a local aggregation switch that
            # shares a core with the target.
            target_cores = set(self._cores_of_agg[dst.name])
            candidates = [
                (
                    agg,
                    [
                        c
                        for c in self._live(
                            agg, self._cores_of_agg[agg], dst.name
                        )
                        if c in target_cores
                    ],
                )
                for agg in self._live(tor.name, self._aggs_by_pod[tor.pod])
            ]
            candidates = [(agg, cores) for agg, cores in candidates if cores]
            if not candidates:
                raise RoutingError(
                    f"no core connects pod {tor.pod} to aggregation {dst.name}"
                )
            agg_up, shared_cores = candidates[
                (flow_key >> 5) % len(candidates)
            ]
            core = _pick(shared_cores, flow_key, 1)
            return [agg_up, core, dst.name]
        # Core target: climb via a local aggregation switch wired to it.
        climbers = self._aggs_of_core_pod.get((dst.name, tor.pod), [])
        if not climbers:
            raise RoutingError(f"pod {tor.pod} has no link to core {dst.name}")
        return [_pick(self._live(tor.name, climbers, dst.name), flow_key, 0), dst.name]

    def _from_agg(self, agg: Node, dst: Node, flow_key: int) -> List[str]:
        assert agg.pod is not None
        if dst.kind is NodeKind.HOST:
            dst_tor_name = self.tor_of(dst.name)
            dst_tor = self._nodes[dst_tor_name]
            if dst_tor.pod == agg.pod:
                return [dst_tor_name, dst.name]
            core = _pick(
                self._live(agg.name, self._cores_of_agg[agg.name]), flow_key, 1
            )
            assert dst_tor.pod is not None
            agg_down = _pick(
                self._live(
                    core, self._descent_aggs(core, dst_tor.pod), dst_tor_name
                ),
                flow_key,
                2,
            )
            return [core, agg_down, dst_tor_name, dst.name]
        if dst.kind is NodeKind.TOR:
            if dst.pod == agg.pod:
                return [dst.name]
            core = _pick(
                self._live(agg.name, self._cores_of_agg[agg.name]), flow_key, 1
            )
            assert dst.pod is not None
            agg_down = _pick(
                self._live(core, self._descent_aggs(core, dst.pod), dst.name),
                flow_key,
                2,
            )
            return [core, agg_down, dst.name]
        if dst.kind is NodeKind.CORE:
            if dst.name in self._cores_of_agg[agg.name]:
                return [dst.name]
            raise RoutingError(f"{agg.name} has no direct link to {dst.name}")
        raise RoutingError(
            f"aggregation-to-aggregation routing is not valley-free "
            f"({agg.name} -> {dst.name})"
        )

    def _from_core(self, core: Node, dst: Node, flow_key: int) -> List[str]:
        if dst.kind is NodeKind.HOST:
            dst_tor_name = self.tor_of(dst.name)
            dst_tor = self._nodes[dst_tor_name]
            assert dst_tor.pod is not None
            agg_down = _pick(
                self._live(
                    core.name,
                    self._descent_aggs(core.name, dst_tor.pod),
                    dst_tor_name,
                ),
                flow_key,
                2,
            )
            return [agg_down, dst_tor_name, dst.name]
        if dst.kind is NodeKind.TOR:
            assert dst.pod is not None
            agg_down = _pick(
                self._live(
                    core.name, self._descent_aggs(core.name, dst.pod), dst.name
                ),
                flow_key,
                2,
            )
            return [agg_down, dst.name]
        if dst.kind is NodeKind.AGG:
            assert dst.pod is not None
            if dst.name in self._descent_aggs(core.name, dst.pod):
                return [dst.name]
            raise RoutingError(f"{core.name} has no direct link to {dst.name}")
        raise RoutingError(f"core-to-core routing is undefined ({core.name} -> {dst.name})")

    def _descent_aggs(self, core: str, pod: int) -> List[str]:
        aggs = self._aggs_of_core_pod.get((core, pod), [])
        if not aggs:
            raise RoutingError(f"core {core} has no link into pod {pod}")
        return aggs

    # ------------------------------------------------------------------
    # Hop accounting (used by the placement model's sanity tests)
    # ------------------------------------------------------------------
    def hop_count(self, src: str, dst: str, flow_key: int = 0) -> int:
        """Number of forwardings on the default path from ``src`` to ``dst``.

        Counting matches the paper: every *switch* on the path forwards the
        packet once (intra-rack host-to-host is 1: the ToR forwards once; a
        detour via a core switch makes it 5).  Memoized alongside ``path``
        (the placement solvers call this in tight loops).
        """
        if self.path_cache_size == 0:
            path = self._compute_path(src, dst, flow_key)
            return sum(1 for name in path if name not in self._host_names)
        key = (src, dst, flow_key)
        cached = self._hop_cache.get(key)
        if cached is not None:
            return cached
        count = sum(
            1 for name in self.path(src, dst, flow_key)
            if name not in self._host_names
        )
        if len(self._hop_cache) >= self.path_cache_size:
            del self._hop_cache[next(iter(self._hop_cache))]
        self._hop_cache[key] = count
        return count
