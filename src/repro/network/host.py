"""End-host NIC glue.

A :class:`Host` owns one topology host node, forwards everything it receives
to the *endpoint* living on it (a key-value client or server), and injects
the endpoint's outgoing packets into the network via its ToR uplink.
"""

from __future__ import annotations

from typing import Optional, Protocol

from repro.errors import ConfigurationError
from repro.network.fabric import Network
from repro.network.packet import Packet


class Endpoint(Protocol):
    """Application logic that lives on a host (client or server)."""

    def handle_packet(self, packet: Packet) -> None:
        """Consume a packet delivered to this host."""
        ...  # pragma: no cover - protocol definition


class Host:
    """One end-host: a NIC attached to its ToR plus an application endpoint."""

    __slots__ = (
        "name",
        "network",
        "tor_name",
        "endpoint",
        "packets_sent",
        "packets_received",
        "_transmit",
        "_transmit_fast",
    )

    def __init__(self, name: str, network: Network) -> None:
        self.name = name
        self.network = network
        self.tor_name = network.router.tor_of(name)
        self.endpoint: Optional[Endpoint] = None
        self.packets_sent = 0
        self.packets_received = 0
        # Pre-bound fabric entry points for the per-packet injection path.
        self._transmit = network.transmit
        self._transmit_fast = network.transmit_fast
        network.attach(name, self)

    def bind(self, endpoint: Endpoint) -> None:
        """Install the application endpoint; a host has exactly one role."""
        if self.endpoint is not None:
            raise ConfigurationError(f"host {self.name} already has an endpoint")
        self.endpoint = endpoint

    def send(self, packet: Packet) -> None:
        """Inject a packet into the network through the ToR uplink.

        The source-routed path from the ToR is attached here (one route-cache
        lookup) so every switch on the way performs a plain index bump; the
        path is exactly what the ToR would have computed on first contact, so
        behaviour is bit-identical.  NetRS requests are skipped -- they have
        no destination until an RSNode selects one -- and a ToR rule that
        redirects the packet (DRS) changes ``dst``, which invalidates the
        attached route automatically via the ``route_target`` check.
        """
        dst = packet.dst
        if dst is not None and packet.route_target != dst:
            packet.route_target = dst
            packet.route = self.network.router.path(
                self.tor_name, dst, packet.flow_key()
            )
            packet.route_pos = 0
        self.packets_sent += 1
        self._transmit_fast(self.name, self.tor_name, packet, True)

    def receive(self, packet: Packet, from_name: str) -> None:
        """Fabric callback: hand the packet to the endpoint."""
        if self.endpoint is None:
            raise ConfigurationError(
                f"host {self.name} received a packet but has no endpoint"
            )
        self.packets_received += 1
        self.endpoint.handle_packet(packet)
