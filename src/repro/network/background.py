"""Background cross-traffic from other applications sharing the fabric.

Paper section II, design consideration (iii): "NetRS should minimize its
impacts on other applications and limit its bandwidth overheads since
multiple applications share the data center network."  To make that impact
measurable, this module injects plain (non-NetRS) traffic between otherwise
idle hosts and records its delivery latency -- with the bandwidth model
enabled, KV traffic and background traffic contend for links in both
directions.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.network.fabric import Network
from repro.network.host import Host
from repro.network.packet import MAGIC_PLAIN, Packet
from repro.sim.core import Environment
from repro.sim.probes import LatencyRecorder

_background_ids = itertools.count(1_000_000_000)


class BackgroundAgent:
    """Endpoint absorbing background packets and recording their latency."""

    def __init__(self, recorder: LatencyRecorder, env: Environment) -> None:
        self._recorder = recorder
        self._env = env
        self.received = 0

    def handle_packet(self, packet: Packet) -> None:
        """Record one delivery."""
        self.received += 1
        self._recorder.add(self._env.now - packet.issued_at)


class BackgroundTraffic:
    """Poisson cross-traffic between a pool of idle hosts."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        hosts: Sequence[Host],
        *,
        rate: float,
        packet_size: int = 1024,
        rng: np.random.Generator,
        total_packets: Optional[int] = None,
    ) -> None:
        if len(hosts) < 2:
            raise ConfigurationError("background traffic needs >= 2 hosts")
        if rate <= 0:
            raise ConfigurationError("background rate must be positive")
        if packet_size < 1:
            raise ConfigurationError("packet_size must be >= 1 byte")
        self.env = env
        self.network = network
        self.hosts: List[Host] = list(hosts)
        self.rate = rate
        self.packet_size = packet_size
        self._rng = rng
        self.total_packets = total_packets
        self.latency = LatencyRecorder()
        self.sent = 0
        self._stopped = False
        for host in self.hosts:
            host.bind(BackgroundAgent(self.latency, env))

    def start(self) -> None:
        """Schedule the first packet."""
        self.env.call_in(self._rng.exponential(1.0 / self.rate), self._arrival)  # repro: noqa(PERF001) - mixed-family stream (choice + exponential)

    def stop(self) -> None:
        """Stop generating after the current packet."""
        self._stopped = True

    def _arrival(self) -> None:
        if self._stopped:
            return
        if self.total_packets is not None and self.sent >= self.total_packets:
            return
        src_index, dst_index = self._rng.choice(
            len(self.hosts), size=2, replace=False
        )
        src = self.hosts[int(src_index)]
        dst = self.hosts[int(dst_index)]
        packet = Packet(
            src=src.name,
            dst=dst.name,
            magic=MAGIC_PLAIN,
            request_id=next(_background_ids),
            value_size=self.packet_size,
            client=dst.name,  # deliver-to, for is_request bookkeeping only
            issued_at=self.env.now,
        )
        self.sent += 1
        src.send(packet)
        self.env.call_in(self._rng.exponential(1.0 / self.rate), self._arrival)  # repro: noqa(PERF001) - mixed-family stream (choice + exponential)
