"""The k-ary fat-tree used by the paper's evaluation (Al-Fares et al.).

A k-ary fat-tree has:

* ``k`` pods, each with ``k/2`` ToR (edge) and ``k/2`` aggregation switches,
* ``k/2`` hosts per ToR, so ``k^3/4`` hosts total,
* ``(k/2)^2`` core switches in ``k/2`` groups of ``k/2``; aggregation switch
  ``a`` of every pod connects to core group ``a``.

The paper simulates the 16-ary instance: 1024 hosts, 128 ToR, 128
aggregation and 64 core switches.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.network.topology import Topology, build_tree


def build_fat_tree(k: int) -> Topology:
    """Build a k-ary fat-tree; ``k`` must be even and >= 2.

    Uses :func:`~repro.network.topology.build_tree` with the fat-tree's
    parameters; the round-robin core wiring there reduces exactly to the
    canonical disjoint core groups because ``core_links_per_agg *
    aggs_per_pod == cores``.
    """
    if k < 2 or k % 2 != 0:
        raise TopologyError(f"fat-tree arity must be even and >= 2, got k={k}")
    half = k // 2
    return build_tree(
        pods=k,
        racks_per_pod=half,
        hosts_per_rack=half,
        aggs_per_pod=half,
        cores=half * half,
        core_links_per_agg=half,
    )


def fat_tree_dimensions(k: int) -> dict:
    """Expected element counts of a k-ary fat-tree (for tests and docs)."""
    half = k // 2
    return {
        "pods": k,
        "hosts": k * half * half,
        "tor_switches": k * half,
        "agg_switches": k * half,
        "core_switches": half * half,
        "switches": 2 * k * half + half * half,
    }
