"""Network locations, source markers and tier arithmetic.

The paper's tier numbering (section III-B): the tier ID of a device is the
minimum number of links between it and any core switch.  Core = 0,
aggregation = 1, ToR = 2.  Traffic categories use the *highest* tier a
default path climbs to: Tier-2 = intra-rack, Tier-1 = intra-pod inter-rack,
Tier-0 = inter-pod.
"""

from __future__ import annotations

from dataclasses import dataclass

TIER_CORE = 0
TIER_AGG = 1
TIER_TOR = 2


@dataclass(frozen=True, slots=True)
class HostLocation:
    """Position of an end-host in the tree: pod, rack, index within rack."""

    pod: int
    rack: int
    index: int

    def marker(self) -> "SourceMarker":
        """The source marker a ToR would stamp for this host."""
        return SourceMarker(pod=self.pod, rack=self.rack)


@dataclass(frozen=True, slots=True)
class SourceMarker:
    """Paper Fig. 2 ``SM`` segment: pod ID + rack ID of a response's origin.

    A ToR switch compares an incoming marker against its own to classify a
    response as intra-rack / intra-pod / inter-pod (section IV-D).
    """

    pod: int
    rack: int


def tier_between(a: SourceMarker | HostLocation, b: SourceMarker | HostLocation) -> int:
    """Traffic tier of communication between two locations.

    Returns 2 for same rack, 1 for same pod different rack, 0 for different
    pods -- the highest tier a default path reaches (paper section III-B).
    """
    if a.pod == b.pod:
        return TIER_TOR if a.rack == b.rack else TIER_AGG
    return TIER_CORE
