"""Data-center network substrate.

Implements the environment NetRS runs in (paper section II):

* :mod:`~repro.network.topology` / :mod:`~repro.network.fattree` -- n-tier
  tree topologies and the k-ary fat-tree used in the evaluation,
* :mod:`~repro.network.routing` -- deterministic ECMP up/down routing,
  including routing *via* a waypoint switch (the RSNode),
* :mod:`~repro.network.packet` -- the NetRS packet format (paper Fig. 2),
* :mod:`~repro.network.fabric` -- the device registry + link-latency model,
* :mod:`~repro.network.switch` -- programmable switches with the NetRS rules
  pipeline (paper Fig. 3),
* :mod:`~repro.network.accelerator` -- network accelerators running the
  NetRS selector,
* :mod:`~repro.network.host` -- end-host NIC glue.
"""

from repro.network.accelerator import Accelerator
from repro.network.addressing import HostLocation, SourceMarker, tier_between
from repro.network.fabric import Network
from repro.network.fattree import build_fat_tree
from repro.network.host import Host
from repro.network.packet import (
    MAGIC_MONITOR,
    MAGIC_REQUEST,
    MAGIC_RESPONSE,
    Packet,
    ServerStatus,
    magic_transform,
    magic_untransform,
)
from repro.network.routing import Router
from repro.network.switch import ProgrammableSwitch
from repro.network.topology import Node, NodeKind, Topology, build_tree

__all__ = [
    "Accelerator",
    "Host",
    "HostLocation",
    "MAGIC_MONITOR",
    "MAGIC_REQUEST",
    "MAGIC_RESPONSE",
    "Network",
    "Node",
    "NodeKind",
    "Packet",
    "ProgrammableSwitch",
    "Router",
    "ServerStatus",
    "SourceMarker",
    "Topology",
    "build_fat_tree",
    "build_tree",
    "magic_transform",
    "magic_untransform",
    "tier_between",
]
