"""The network fabric: device registry plus link model.

``Network`` owns every simulated device (hosts, switches) and moves packets
between directly-linked devices with the configured per-hop latency.  The
paper's parameters (section V-A, taken from IncBricks measurements): 30 us
between directly connected switches; we default host links to the same value.

By default bandwidth is not modeled as a queue -- consistent with the paper,
whose requests are ~1 KB and whose bottleneck is server/accelerator service
time -- but every byte transferred is accounted so protocol overhead is
measurable.  Passing ``link_bandwidth`` (bits/second) enables a
store-and-forward serialization model: each directed link transmits one
packet at a time (``wire_size * 8 / bandwidth`` seconds each), later packets
queue behind it, and per-link backlog becomes observable.  Useful for
congestion studies beyond the paper's scope.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Any, Callable, Dict, Optional, Protocol, Tuple

import numpy as np

from repro.errors import TopologyError
from repro.network.packet import (
    _SIZE_MF,
    _SIZE_RGID,
    _SIZE_RID,
    _SIZE_RV,
    _SIZE_SM,
    _SIZE_SSL,
    _SIZE_UDP_HEADERS,
    MAGIC_MONITOR,
    MAGIC_PLAIN,
    MAGIC_REQUEST,
    MAGIC_RESPONSE,
    Packet,
)
from repro.network.routing import DEFAULT_PATH_CACHE_SIZE, Router
from repro.network.topology import NodeKind, Topology
from repro.sim.core import Environment

_SIZE_FIXED_NETRS = _SIZE_RID + _SIZE_MF + _SIZE_RV


class Device(Protocol):
    """Anything that can be attached to the fabric."""

    def receive(self, packet: Packet, from_name: str) -> None:
        """Handle a packet arriving over a link."""
        ...  # pragma: no cover - protocol definition


class Network:
    """Device registry and packet mover.

    Args:
        env: The simulation environment.
        topology: The wired topology; transmissions are checked against it.
        switch_link_latency: One-way latency between two switches (seconds).
        host_link_latency: One-way latency of a host's access link (seconds).
    """

    __slots__ = (
        "env",
        "topology",
        "router",
        "switch_link_latency",
        "host_link_latency",
        "link_bandwidth",
        "_devices",
        "_latency_cache",
        "_link_busy_until",
        "transmissions",
        "bytes_transferred",
        "netrs_overhead_bytes",
        "serialization_delay_total",
        "max_link_backlog",
        "track_links",
        "link_bytes",
        "link_packets",
        "_receivers",
        "_fast_delay",
        "packets_dropped",
        "_dead_links",
        "_degraded_links",
        "_faulty",
        "_trunking",
        "_pending_trunks",
        "_trunk_plans",
        "_kernels",
    )

    def __init__(
        self,
        env: Environment,
        topology: Topology,
        *,
        switch_link_latency: float = 30e-6,
        host_link_latency: float = 30e-6,
        link_bandwidth: Optional[float] = None,
        track_links: bool = False,
        route_cache_size: int = DEFAULT_PATH_CACHE_SIZE,
    ) -> None:
        if switch_link_latency < 0 or host_link_latency < 0:
            raise ValueError("link latencies must be non-negative")
        if link_bandwidth is not None and link_bandwidth <= 0:
            raise ValueError("link_bandwidth must be positive (bits/second)")
        self.env = env
        self.topology = topology
        self.router = Router(topology, path_cache_size=route_cache_size)
        self.switch_link_latency = switch_link_latency
        self.host_link_latency = host_link_latency
        self.link_bandwidth = link_bandwidth
        self._devices: Dict[str, Device] = {}
        # Pre-bound receive methods, filled at attach time: the hot path
        # then skips both the .receive attribute load and the bound-method
        # allocation on every hop.
        self._receivers: Dict[str, Callable[[Packet, str], None]] = {}
        # With equal link latencies, no bandwidth model and no per-link
        # accounting (the paper-default configuration), every hop schedules
        # delivery after the same constant delay.
        self._fast_delay: Optional[float] = (
            switch_link_latency
            if (
                switch_link_latency == host_link_latency
                and link_bandwidth is None
                and not track_links
            )
            else None
        )
        # Per-directed-link propagation latency, filled lazily; saves two
        # topology lookups per hop.
        self._latency_cache: Dict[Tuple[str, str], float] = {}
        # Serialization state per directed link: time the link frees up.
        self._link_busy_until: Dict[Tuple[str, str], float] = {}
        # Aggregate fabric accounting.
        self.transmissions = 0
        self.bytes_transferred = 0
        self.netrs_overhead_bytes = 0
        self.serialization_delay_total = 0.0
        self.max_link_backlog = 0.0
        # Optional per-directed-link accounting (hotspot diagnostics).
        self.track_links = track_links
        self.link_bytes: Dict[Tuple[str, str], int] = {}
        self.link_packets: Dict[Tuple[str, str], int] = {}
        # Link fault state (see repro.faults): dead links swallow packets,
        # degraded links multiply the per-hop delay.  ``_faulty`` folds both
        # into one flag so the fault-free hot path pays a single branch.
        self.packets_dropped = 0
        self._dead_links: set = set()
        self._degraded_links: Dict[Tuple[str, str], float] = {}
        self._faulty = False
        # Trunk collapse (transmit_fast): disabled for fault runs -- a
        # collapsed trunk commits to its path at send time, which would let
        # a packet sail over a link that dies while it is in flight.
        self._trunking = True
        # In-flight collapsed trunks whose eager accounting may need to be
        # unwound if the run stops before their hops would have executed
        # (see settle_trunks).  Pruned as deliveries pass.
        self._pending_trunks: deque = deque()
        # Memoized walk outcomes keyed on (route id, position, endpoints,
        # packet steering fields); see transmit_fast.
        self._trunk_plans: Dict[tuple, tuple] = {}
        # Compiled kernel module (repro.sim.backend); None = reference loops.
        self._kernels: Optional[Any] = None

    def use_backend(self, backend: Any) -> None:
        """Install a resolved :class:`repro.sim.backend.Backend`.

        Compiled backends route the trunk timing chain and the settlement
        pass through their kernels; the pure-Python backend keeps the
        reference loops (``kernels`` is None there).
        """
        self._kernels = backend.kernels

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    def attach(self, name: str, device: Device) -> None:
        """Bind a device object to a topology node name."""
        if name not in self.topology.nodes:
            raise TopologyError(f"cannot attach to unknown node {name}")
        if name in self._devices:
            raise TopologyError(f"device already attached at {name}")
        self._devices[name] = device
        self._receivers[name] = device.receive

    def device(self, name: str) -> Device:
        """The device attached at ``name``."""
        try:
            return self._devices[name]
        except KeyError:
            raise TopologyError(f"no device attached at {name}") from None

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def link_latency(self, a: str, b: str) -> float:
        """One-way latency of the direct link between ``a`` and ``b``."""
        if (
            self.topology.node(a).kind is NodeKind.HOST
            or self.topology.node(b).kind is NodeKind.HOST
        ):
            return self.host_link_latency
        return self.switch_link_latency

    def transmit(self, from_name: str, to_name: str, packet: Packet) -> None:
        """Send ``packet`` over the direct link ``from_name -> to_name``.

        With bandwidth modeling on, the packet first waits for the directed
        link to finish earlier transmissions, then occupies it for its
        serialization time; propagation latency is added on top.
        """
        receive = self._receivers.get(to_name)
        if receive is None:
            raise TopologyError(f"no device attached at {to_name}")
        fault_factor = None
        if self._faulty:
            fault_link = (from_name, to_name)
            if fault_link in self._dead_links:
                # Dropped before any wire accounting: nothing was carried.
                self.packets_dropped += 1
                return
            fault_factor = self._degraded_links.get(fault_link)
        # Inlined Packet.wire_accounting (the reference implementation):
        # sizing runs once per hop, where even the call overhead shows up.
        # test_fabric cross-checks these totals against wire_size().
        common = 0
        if packet.rgid >= 0:
            common += _SIZE_RGID
        if packet.source_marker is not None:
            common += _SIZE_SM
        if packet.magic != MAGIC_PLAIN:
            overhead = _SIZE_FIXED_NETRS + common
            size = _SIZE_UDP_HEADERS + overhead
        else:
            overhead = 0
            size = _SIZE_UDP_HEADERS + common
        status = packet.server_status
        if status is not None:
            size += _SIZE_SSL + status.wire_size()
        value_size = packet.value_size
        size += 16 if value_size == 0 else value_size  # app payload
        self.transmissions += 1
        self.bytes_transferred += size
        self.netrs_overhead_bytes += overhead
        delay = self._fast_delay
        if delay is None:
            link = (from_name, to_name)
            if self.track_links:
                self.link_bytes[link] = self.link_bytes.get(link, 0) + size
                self.link_packets[link] = self.link_packets.get(link, 0) + 1
            delay = self._latency_cache.get(link)
            if delay is None:
                delay = self.link_latency(from_name, to_name)
                self._latency_cache[link] = delay
            if self.link_bandwidth is not None:
                now = self.env.now
                transmission_time = size * 8.0 / self.link_bandwidth
                free_at = max(now, self._link_busy_until.get(link, 0.0))
                backlog = free_at - now
                self._link_busy_until[link] = free_at + transmission_time
                self.serialization_delay_total += backlog + transmission_time
                if backlog > self.max_link_backlog:
                    self.max_link_backlog = backlog
                delay += backlog + transmission_time
        if fault_factor is not None:
            delay *= fault_factor
        # Inlined Environment.post_in (the reference implementation): one
        # event per hop makes even the scheduler's call overhead measurable.
        env = self.env
        env._seq += 1
        when = env._now + delay
        dq = env._dq
        entry = (when, env._seq, 2, receive, (packet, from_name))
        if not dq or when >= dq[-1][0]:
            dq.append(entry)
        else:
            heappush(env._heap, entry)

    def transmit_fast(
        self,
        from_name: str,
        to_name: str,
        packet: Packet,
        from_host: bool = False,
    ) -> None:
        """Like :meth:`transmit`, but collapses runs of transparent hops.

        Under the paper-default fabric (equal link latencies, no bandwidth
        model, no per-link accounting, no active link faults) a packet
        crossing k "mechanical" switches -- switches whose receive pipeline
        would only bump counters and follow the attached source route --
        produces k identical scheduler events.  This entry point walks the
        route up front, performs the per-device accounting the skipped
        receive calls would have done, and schedules a single delivery at
        the cumulative delay ``k * d``.  A device that would do anything
        beyond mechanical forwarding (operator intercept, route
        recomputation, ToR ingress stamping, monitor egress, faults,
        bandwidth queues) ends the trunk and is delivered to normally, so
        event timing, counters, and tie-breaking seqs along a request chain
        are exactly what the hop-by-hop path produces.
        """
        delay = self._fast_delay
        if delay is None or self._faulty or not self._trunking:
            self.transmit(from_name, to_name, packet)
            return
        magic = packet.magic
        if from_host and (
            magic == MAGIC_REQUEST
            or magic == MAGIC_RESPONSE
            or magic == MAGIC_MONITOR
        ):
            # First hop into a ToR stamps these (RSNode ID / source marker):
            # not mechanical, take the regular path.
            self.transmit(from_name, to_name, packet)
            return
        route = packet.route
        pos = packet.route_pos
        dst = packet.dst
        # Trunk plans repeat: routes are shared cached lists from the
        # router, and the walk outcome is a pure function of the plan key
        # (everything it reads -- directory, attached hosts, monitors,
        # operator IDs -- is frozen after build).  The plan holds a strong
        # reference to the route list, which pins its id().
        plan_key = (
            id(route), pos, from_name, to_name, magic,
            packet.rsnode_id, packet.route_target, dst,
        )
        plan = self._trunk_plans.get(plan_key)
        if plan is not None:
            absorbed, hops, receive, prev, pos_after, hop_bumps = plan[1:]
            for device in absorbed:
                device.packets_forwarded += 1
            packet.hops += hop_bumps
            packet.route_pos = pos_after
        else:
            devices = self._devices
            netrs_kind = magic == MAGIC_REQUEST or magic == MAGIC_RESPONSE
            hops = 1
            hop_bumps = 0
            prev = from_name
            recv_name = to_name
            absorbed = []
            while True:
                device = devices.get(recv_name)
                if device is None:
                    # No device attached: fall back for the error behaviour.
                    self.transmit(from_name, to_name, packet)
                    return
                if getattr(device, "is_tor", None) is None:
                    break  # a host (or a test double): deliver here
                if netrs_kind:
                    if packet.rsnode_id == device.operator_id:
                        break  # operator intercept: full pipeline runs there
                    target = device._operator_directory.get(packet.rsnode_id)
                    if target is None or packet.route_target != target:
                        break  # unknown ID / route recompute: not mechanical
                else:
                    if dst is None:
                        break  # the switch raises RoutingError; let it
                    if dst in device._attached_hosts:
                        # Egress ToR.  Monitor observation is not mechanical.
                        if (
                            device.monitor is not None
                            and magic == MAGIC_MONITOR
                            and packet.source_marker is not None
                        ):
                            break
                        device.packets_forwarded += 1
                        absorbed.append(device)
                        prev = recv_name
                        recv_name = dst
                        hops += 1
                        continue  # next device is the host; loop exits there
                    if packet.route_target != dst:
                        break  # route recompute: not mechanical
                try:
                    next_hop = route[pos]
                except IndexError:
                    break  # exhausted route: the switch raises RoutingError
                device.packets_forwarded += 1
                absorbed.append(device)
                packet.hops += 1
                hop_bumps += 1
                pos += 1
                hops += 1
                prev = recv_name
                recv_name = next_hop
            packet.route_pos = pos
            pos_after = pos
            receive = self._receivers[recv_name]
            absorbed = tuple(absorbed)
            plans = self._trunk_plans
            if len(plans) >= 65536:
                plans.clear()  # unbounded-key safety valve; never hit in runs
            plans[plan_key] = (
                route, absorbed, hops, receive, prev, pos_after, hop_bumps
            )
        # Wire accounting once for the whole trunk (size is invariant along
        # it: nothing that changes sizing fields is mechanical).
        common = 0
        if packet.rgid >= 0:
            common += _SIZE_RGID
        if packet.source_marker is not None:
            common += _SIZE_SM
        if magic != MAGIC_PLAIN:
            overhead = _SIZE_FIXED_NETRS + common
            size = _SIZE_UDP_HEADERS + overhead
        else:
            overhead = 0
            size = _SIZE_UDP_HEADERS + common
        status = packet.server_status
        if status is not None:
            size += _SIZE_SSL + status.wire_size()
        value_size = packet.value_size
        size += 16 if value_size == 0 else value_size  # app payload
        self.transmissions += hops
        self.bytes_transferred += size * hops
        self.netrs_overhead_bytes += overhead * hops
        env = self.env
        now = env._now
        if hops == 1:
            when = now + delay
        else:
            # Chained additions, not ``now + delay * hops``: hop-by-hop
            # forwarding accumulates the delay one event at a time, and the
            # two float sums differ in the last ulp.  Byte-identity with the
            # reference path requires reproducing the chain exactly (the
            # compiled kernel performs the identical chain).
            kernels = self._kernels
            if kernels is not None:
                when = kernels.chained_arrival(now, delay, hops)
            else:
                when = now
                for _ in range(hops):
                    when += delay
            pending = self._pending_trunks
            while pending and pending[0][6] < now:
                pending.popleft()  # delivered; accounting is final
            pending.append((now, delay, hops, size, overhead, absorbed, when))
        # Inlined Environment.post_in, as in transmit().
        env._seq += 1
        dq = env._dq
        entry = (when, env._seq, 2, receive, (packet, prev))
        if not dq or when >= dq[-1][0]:
            dq.append(entry)
        else:
            heappush(env._heap, entry)

    def disable_trunking(self) -> None:
        """Force per-hop forwarding (used whenever faults may be injected).

        Collapsed trunks commit their path and accounting at send time;
        hop-by-hop forwarding re-checks link state at every hop.  The two
        diverge the moment a link dies with packets in flight, so fault
        runs take the reference path throughout.
        """
        self._trunking = False

    def settle_trunks(self, stop_time: float) -> None:
        """Unwind eager trunk accounting past the end of the run.

        ``transmit_fast`` accounts every hop of a trunk at send time; the
        reference path accounts hop ``i`` only when hop ``i``'s forwarding
        event executes.  When the run stops at ``stop_time`` with trunks in
        flight, the hops that would have executed at or after ``stop_time``
        must be subtracted to keep fabric counters byte-identical with
        hop-by-hop forwarding.  Called once after the event loop stops,
        before counters are read.
        """
        pending = self._pending_trunks
        kernels = self._kernels
        if kernels is not None and pending:
            # Vectorized settlement: gather the in-flight trunks into typed
            # arrays and count undone hops in one compiled pass.  Hop times
            # are a monotone chain, so the hops landing at or after the
            # stop are exactly the last ``undone`` of each trunk.
            cut = [t for t in pending if t[6] >= stop_time]
            pending.clear()
            if not cut:
                return
            bases = np.array([t[0] for t in cut], dtype=np.float64)
            delays = np.array([t[1] for t in cut], dtype=np.float64)
            lengths = np.array([t[2] for t in cut], dtype=np.int64)
            out = np.empty(len(cut), dtype=np.int64)
            total = kernels.count_undone_hops(bases, delays, lengths, stop_time, out)
            if not total:
                return
            for trunk, undone in zip(cut, out):
                if not undone:
                    continue
                _base, _delay, _hops, size, overhead, absorbed, _when = trunk
                for device in absorbed[len(absorbed) - undone:]:
                    device.packets_forwarded -= 1
                self.transmissions -= undone
                self.bytes_transferred -= size * undone
                self.netrs_overhead_bytes -= overhead * undone
            return
        while pending:
            base, delay, hops, size, overhead, absorbed, when = pending.popleft()
            if when < stop_time:
                continue  # fully delivered before the stop
            undone = 0
            t = base
            for i in range(1, hops):
                t += delay  # hop i's forwarding event time (chained float)
                if t >= stop_time:
                    undone += 1  # hop i+1 was never transmitted ...
                    absorbed[i - 1].packets_forwarded -= 1  # ... nor counted
            if undone:
                self.transmissions -= undone
                self.bytes_transferred -= size * undone
                self.netrs_overhead_bytes -= overhead * undone

    # ------------------------------------------------------------------
    # Link faults (driven by repro.faults; see docs/FAULTS.md)
    # ------------------------------------------------------------------
    def _check_link(self, a: str, b: str) -> None:
        if b not in self.topology.neighbors(a):
            raise TopologyError(f"no direct link {a} <-> {b}")

    def fail_link(self, a: str, b: str) -> None:
        """Cut the link ``a <-> b``: packets on it are dropped and counted.

        The router invalidates cached paths through both endpoints and
        ECMP-reroutes around the cut where the topology offers a choice.
        """
        self._check_link(a, b)
        self._dead_links.add((a, b))
        self._dead_links.add((b, a))
        self._faulty = True
        self.router.fail_link(a, b)

    def restore_link(self, a: str, b: str) -> None:
        """Undo :meth:`fail_link` / :meth:`degrade_link` for ``a <-> b``."""
        self._check_link(a, b)
        was_dead = (a, b) in self._dead_links
        self._dead_links.discard((a, b))
        self._dead_links.discard((b, a))
        self._degraded_links.pop((a, b), None)
        self._degraded_links.pop((b, a), None)
        self._faulty = bool(self._dead_links or self._degraded_links)
        if was_dead:
            self.router.restore_link(a, b)

    def degrade_link(self, a: str, b: str, factor: float) -> None:
        """Multiply the per-hop delay of ``a <-> b`` by ``factor`` (>= 1).

        Degradation is a latency brown-out: packets still flow (routing is
        unchanged -- a slow link is not a dead one), they just arrive late.
        """
        self._check_link(a, b)
        if factor < 1.0:
            raise ValueError(f"degradation factor must be >= 1, got {factor}")
        self._degraded_links[(a, b)] = factor
        self._degraded_links[(b, a)] = factor
        self._faulty = True

    def deliver_local(
        self, delay: float, fn: Callable[..., Any], *args: Any
    ) -> None:
        """Schedule intra-device work (e.g. switch<->accelerator hops)."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self.env.post_in(delay, fn, args)

    def top_links(self, count: int = 10) -> list:
        """Hottest directed links by bytes carried (needs ``track_links``).

        Returns ``[((from, to), bytes), ...]`` sorted hottest first.
        """
        if not self.track_links:
            raise TopologyError(
                "per-link accounting is off; construct Network with "
                "track_links=True"
            )
        return sorted(
            self.link_bytes.items(), key=lambda item: item[1], reverse=True
        )[:count]
