"""Tree-shaped data-center topologies.

A :class:`Topology` is a typed multigraph of core switches, aggregation
switches, ToR switches and hosts with the hierarchical structure of paper
Fig. 1.  :func:`build_tree` constructs a generic 3-tier Clos-like tree with
full ToR<->aggregation connectivity inside each pod and configurable
aggregation<->core wiring; :func:`~repro.network.fattree.build_fat_tree`
builds the canonical k-ary fat-tree on top of it.

Node names are human-readable and unique, e.g. ``core3``, ``agg1.2``
(pod 1, index 2), ``tor1.0``, ``host1.0.5`` (pod 1, rack 0, index 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import TopologyError
from repro.network.addressing import TIER_AGG, TIER_CORE, TIER_TOR, HostLocation


class NodeKind(Enum):
    """What a topology node is."""

    CORE = "core"
    AGG = "agg"
    TOR = "tor"
    HOST = "host"


#: Tier ID per node kind (hosts sit below ToRs; give them 3 for ordering).
KIND_TIER = {
    NodeKind.CORE: TIER_CORE,
    NodeKind.AGG: TIER_AGG,
    NodeKind.TOR: TIER_TOR,
    NodeKind.HOST: 3,
}


@dataclass(frozen=True, slots=True)
class Node:
    """One device or host in the topology."""

    name: str
    kind: NodeKind
    pod: Optional[int] = None
    rack: Optional[int] = None
    index: int = 0

    @property
    def tier(self) -> int:
        """Paper tier ID: core 0, aggregation 1, ToR 2 (hosts: 3)."""
        return KIND_TIER[self.kind]

    def location(self) -> HostLocation:
        """The :class:`HostLocation` of a host node."""
        if self.kind is not NodeKind.HOST:
            raise TopologyError(f"{self.name} is not a host")
        assert self.pod is not None and self.rack is not None
        return HostLocation(pod=self.pod, rack=self.rack, index=self.index)


@dataclass
class Topology:
    """A typed adjacency structure over :class:`Node` objects."""

    nodes: Dict[str, Node] = field(default_factory=dict)
    _adjacency: Dict[str, List[str]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Register a node; names must be unique."""
        if node.name in self.nodes:
            raise TopologyError(f"duplicate node name: {node.name}")
        self.nodes[node.name] = node
        self._adjacency[node.name] = []

    def add_link(self, a: str, b: str) -> None:
        """Create an undirected link between two existing nodes."""
        if a not in self.nodes or b not in self.nodes:
            missing = a if a not in self.nodes else b
            raise TopologyError(f"unknown node: {missing}")
        if b in self._adjacency[a]:
            raise TopologyError(f"duplicate link {a} <-> {b}")
        self._adjacency[a].append(b)
        self._adjacency[b].append(a)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node(self, name: str) -> Node:
        """Look up a node by name."""
        try:
            return self.nodes[name]
        except KeyError:
            raise TopologyError(f"unknown node: {name}") from None

    def neighbors(self, name: str) -> Tuple[str, ...]:
        """All nodes directly linked to ``name``."""
        return tuple(self._adjacency[name])

    def by_kind(self, kind: NodeKind) -> List[Node]:
        """All nodes of a given kind, in insertion (deterministic) order."""
        return [n for n in self.nodes.values() if n.kind is kind]

    @property
    def hosts(self) -> List[Node]:
        """All end-hosts."""
        return self.by_kind(NodeKind.HOST)

    @property
    def switches(self) -> List[Node]:
        """All switches (core + aggregation + ToR)."""
        return [n for n in self.nodes.values() if n.kind is not NodeKind.HOST]

    def tor_of(self, host_name: str) -> Node:
        """The ToR switch a host hangs off."""
        host = self.node(host_name)
        if host.kind is not NodeKind.HOST:
            raise TopologyError(f"{host_name} is not a host")
        for neighbor in self._adjacency[host_name]:
            if self.nodes[neighbor].kind is NodeKind.TOR:
                return self.nodes[neighbor]
        raise TopologyError(f"host {host_name} has no ToR uplink")

    def hosts_under(self, tor_name: str) -> List[Node]:
        """End-hosts attached to a ToR switch."""
        tor = self.node(tor_name)
        if tor.kind is not NodeKind.TOR:
            raise TopologyError(f"{tor_name} is not a ToR switch")
        return [
            self.nodes[n]
            for n in self._adjacency[tor_name]
            if self.nodes[n].kind is NodeKind.HOST
        ]

    def aggs_in_pod(self, pod: int) -> List[Node]:
        """Aggregation switches of one pod."""
        return [n for n in self.by_kind(NodeKind.AGG) if n.pod == pod]

    def tors_in_pod(self, pod: int) -> List[Node]:
        """ToR switches of one pod."""
        return [n for n in self.by_kind(NodeKind.TOR) if n.pod == pod]

    def uplinks(self, name: str) -> List[str]:
        """Neighbors one tier closer to the core."""
        me = self.node(name)
        return [n for n in self._adjacency[name] if self.nodes[n].tier == me.tier - 1]

    def downlinks(self, name: str) -> List[str]:
        """Neighbors one tier further from the core."""
        me = self.node(name)
        return [n for n in self._adjacency[name] if self.nodes[n].tier == me.tier + 1]

    def validate(self) -> None:
        """Check structural invariants; raises :class:`TopologyError`.

        Every host has exactly one ToR uplink; every ToR has at least one
        aggregation uplink; every aggregation switch has at least one core
        uplink; links only connect adjacent tiers.
        """
        for node in self.nodes.values():
            for neighbor_name in self._adjacency[node.name]:
                neighbor = self.nodes[neighbor_name]
                if abs(neighbor.tier - node.tier) != 1:
                    raise TopologyError(
                        f"link {node.name} <-> {neighbor_name} skips a tier"
                    )
        for host in self.hosts:
            tors = [
                n for n in self._adjacency[host.name]
                if self.nodes[n].kind is NodeKind.TOR
            ]
            if len(tors) != 1:
                raise TopologyError(f"host {host.name} has {len(tors)} ToR uplinks")
        for tor in self.by_kind(NodeKind.TOR):
            if not self.uplinks(tor.name):
                raise TopologyError(f"ToR {tor.name} has no aggregation uplink")
        for agg in self.by_kind(NodeKind.AGG):
            if not self.uplinks(agg.name):
                raise TopologyError(f"aggregation {agg.name} has no core uplink")


def build_tree(
    *,
    pods: int,
    racks_per_pod: int,
    hosts_per_rack: int,
    aggs_per_pod: int,
    cores: int,
    core_links_per_agg: Optional[int] = None,
) -> Topology:
    """Build a generic 3-tier tree (paper Fig. 1).

    Inside a pod every ToR connects to every aggregation switch.  Each
    aggregation switch connects to ``core_links_per_agg`` core switches
    (default: all of them), assigned round-robin so core fan-in is balanced.

    Args:
        pods: Number of pods.
        racks_per_pod: ToR switches (racks) per pod.
        hosts_per_rack: End-hosts per rack.
        aggs_per_pod: Aggregation switches per pod.
        cores: Core switches in the top tier.
        core_links_per_agg: Core uplinks per aggregation switch.

    Returns:
        A validated :class:`Topology`.
    """
    if min(pods, racks_per_pod, hosts_per_rack, aggs_per_pod, cores) < 1:
        raise TopologyError("all topology dimensions must be >= 1")
    if core_links_per_agg is None:
        core_links_per_agg = cores
    if not 1 <= core_links_per_agg <= cores:
        raise TopologyError(
            f"core_links_per_agg must be in [1, {cores}], got {core_links_per_agg}"
        )

    topo = Topology()
    for c in range(cores):
        topo.add_node(Node(name=f"core{c}", kind=NodeKind.CORE, index=c))
    for p in range(pods):
        for a in range(aggs_per_pod):
            topo.add_node(Node(name=f"agg{p}.{a}", kind=NodeKind.AGG, pod=p, index=a))
        for r in range(racks_per_pod):
            topo.add_node(Node(name=f"tor{p}.{r}", kind=NodeKind.TOR, pod=p, rack=r))
            for h in range(hosts_per_rack):
                topo.add_node(
                    Node(
                        name=f"host{p}.{r}.{h}",
                        kind=NodeKind.HOST,
                        pod=p,
                        rack=r,
                        index=h,
                    )
                )
                topo.add_link(f"host{p}.{r}.{h}", f"tor{p}.{r}")
            for a in range(aggs_per_pod):
                topo.add_link(f"tor{p}.{r}", f"agg{p}.{a}")
        for a in range(aggs_per_pod):
            # Round-robin block assignment keeps core degree balanced and,
            # when core_links_per_agg * aggs_per_pod == cores, yields the
            # fat-tree's disjoint core groups.
            start = (a * core_links_per_agg) % cores
            for offset in range(core_links_per_agg):
                core_index = (start + offset) % cores
                topo.add_link(f"agg{p}.{a}", f"core{core_index}")

    topo.validate()
    return topo


def iter_rack_ids(topology: Topology) -> Iterable[Tuple[int, int]]:
    """Yield every ``(pod, rack)`` pair present in the topology."""
    seen = set()
    for tor in topology.by_kind(NodeKind.TOR):
        assert tor.pod is not None and tor.rack is not None
        pair = (tor.pod, tor.rack)
        if pair not in seen:
            seen.add(pair)
            yield pair
