"""Programmable switch with the NetRS rules pipeline (paper Fig. 3).

Each switch is (potentially) one half of a NetRS operator: the other half is
the attached :class:`~repro.network.accelerator.Accelerator` running the
NetRS selector.  The ingress pipeline implements the paper's match-action
flow exactly:

* non-NetRS packets take the regular forwarding pipeline;
* a **ToR** stamps ingress packets from its hosts -- RSNode ID for NetRS
  requests (from the per-traffic-group rules the controller installs, with
  the illegal-ID/DRS escape hatch), source marker for responses;
* NetRS requests whose RSNode ID matches the local operator ID go to the
  accelerator for replica selection, others are forwarded toward their
  RSNode;
* NetRS responses matching the local operator ID are *cloned* to the
  accelerator (state update) while the original continues to the client with
  its magic rewritten to ``MAGIC_MONITOR``;
* at ToR egress, monitor-labeled packets leaving the network are counted by
  the NetRS monitor (paper section IV-D).

Forwarding follows source-routed paths computed by the shared
:class:`~repro.network.routing.Router`; a path is (re)computed whenever a
rule changes the packet's steering target, which is what a chain of real
switches running the same deterministic ECMP would do hop by hop.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol, Set

from repro.errors import ConfigurationError, RoutingError
from repro.network.accelerator import Accelerator
from repro.network.addressing import SourceMarker
from repro.network.fabric import Network
from repro.network.packet import (
    MAGIC_MONITOR,
    MAGIC_REQUEST,
    MAGIC_RESPONSE,
    RSNODE_ILLEGAL,
    Packet,
    magic_transform,
)


class Selector(Protocol):
    """NetRS selector running on the accelerator (see repro.core)."""

    def on_request(self, packet: Packet) -> Packet:
        """Choose a replica and rebuild the request; returns the packet."""
        ...  # pragma: no cover - protocol definition

    def on_response(self, packet: Packet) -> None:
        """Fold a response clone into local information."""
        ...  # pragma: no cover - protocol definition


class Monitor(Protocol):
    """NetRS monitor on ToR egress (see repro.core)."""

    def observe(self, packet: Packet) -> None:
        """Count one response leaving the network."""
        ...  # pragma: no cover - protocol definition


class ProgrammableSwitch:
    """One switch of the data center, optionally acting as a NetRS operator."""

    __slots__ = (
        "name",
        "network",
        "kind",
        "tier",
        "is_tor",
        "operator_id",
        "accelerator",
        "selector",
        "monitor",
        "failed",
        "_attached_hosts",
        "marker",
        "_group_of_host",
        "_rsnode_for_group",
        "_operator_directory",
        "packets_forwarded",
        "requests_selected",
        "responses_cloned",
        "_transmit",
        "_transmit_fast",
    )

    def __init__(
        self,
        name: str,
        network: Network,
        *,
        operator_id: int = 0,
        accelerator: Optional[Accelerator] = None,
    ) -> None:
        self.name = name
        self.network = network
        node = network.topology.node(name)
        self.kind = node.kind
        self.tier = node.tier
        self.is_tor = node.kind.value == "tor"
        self.operator_id = operator_id
        self.accelerator = accelerator
        self.selector: Optional[Selector] = None
        self.monitor: Optional[Monitor] = None
        self.failed = False
        # ToR state
        self._attached_hosts: Set[str] = (
            {h.name for h in network.topology.hosts_under(name)} if self.is_tor else set()
        )
        self.marker: Optional[SourceMarker] = (
            SourceMarker(pod=node.pod, rack=node.rack) if self.is_tor else None
        )
        # NetRS rules installed by the controller.
        self._group_of_host: Dict[str, int] = {}
        self._rsnode_for_group: Dict[int, int] = {}
        # Shared directory: operator ID -> switch name (all operators).
        self._operator_directory: Dict[int, str] = {}
        # Accounting
        self.packets_forwarded = 0
        self.requests_selected = 0
        self.responses_cloned = 0
        # Pre-bound fabric entry points for the per-hop forwarding path.
        self._transmit = network.transmit
        self._transmit_fast = network.transmit_fast
        network.attach(name, self)

    # ------------------------------------------------------------------
    # Control-plane API (used by the NetRS controller)
    # ------------------------------------------------------------------
    def bind_operator(self, selector: Selector, directory: Dict[int, str]) -> None:
        """Install the selector software and the shared operator directory."""
        if self.accelerator is None:
            raise ConfigurationError(
                f"switch {self.name} has no accelerator to run a selector on"
            )
        self.selector = selector
        self._operator_directory = directory

    def set_directory(self, directory: Dict[int, str]) -> None:
        """Install the operator directory on a non-RSNode switch."""
        self._operator_directory = directory

    def install_group_rule(self, host_name: str, group_id: int) -> None:
        """ToR rule: requests from ``host_name`` belong to ``group_id``."""
        if not self.is_tor:
            raise ConfigurationError("group rules only exist on ToR switches")
        if host_name not in self._attached_hosts:
            raise ConfigurationError(
                f"{host_name} is not attached to ToR {self.name}"
            )
        self._group_of_host[host_name] = group_id

    def install_rsnode_rule(self, group_id: int, rsnode_id: int) -> None:
        """ToR rule: stamp ``rsnode_id`` on requests of ``group_id``.

        ``rsnode_id = RSNODE_ILLEGAL`` enables Degraded Replica Selection for
        the group (paper section IV-B).
        """
        if not self.is_tor:
            raise ConfigurationError("RSNode rules only exist on ToR switches")
        self._rsnode_for_group[group_id] = rsnode_id

    def rsnode_of_group(self, group_id: int) -> Optional[int]:
        """Currently installed RSNode for a group (None if no rule)."""
        return self._rsnode_for_group.get(group_id)

    def fail(self) -> None:
        """Simulate operator failure: the accelerator stops responding."""
        self.failed = True

    def recover(self) -> None:
        """Bring a failed operator back (selector state survives)."""
        self.failed = False

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def receive(self, packet: Packet, from_name: str) -> None:
        """Ingress pipeline (paper Fig. 3)."""
        if self.is_tor and from_name in self._attached_hosts:
            self._ingress_from_host(packet)
        magic = packet.magic
        if magic == MAGIC_REQUEST:
            if packet.rsnode_id == self.operator_id:
                if self._can_select():
                    self.requests_selected += 1
                    self.accelerator.submit(  # type: ignore[union-attr]
                        packet, self.selector.on_request, self._after_selection  # type: ignore[union-attr]
                    )
                else:
                    # Local operator failed while packets were in flight:
                    # degrade this request to the client's backup replica,
                    # exactly what DRS would have done at the ToR.
                    packet.magic = magic_transform(MAGIC_MONITOR)
                    packet.dst = packet.backup_replica
                    packet.server = packet.backup_replica
                    self._regular_forward(packet)
                return
            self._forward_toward_operator(packet)
            return
        if magic == MAGIC_RESPONSE:
            if packet.rsnode_id == self.operator_id:
                if self._can_select():
                    self.responses_cloned += 1
                    self.accelerator.submit(  # type: ignore[union-attr]
                        packet.clone(), self._absorb_response, None
                    )
                packet.magic = MAGIC_MONITOR
                self._regular_forward(packet)
                return
            self._forward_toward_operator(packet)
            return
        # Inlined _regular_forward: plain and monitor traffic takes this
        # branch on every hop of every path.
        dst = packet.dst
        if dst is None:
            raise RoutingError(
                f"{self.name}: cannot forward a packet without a destination"
            )
        if dst in self._attached_hosts:
            self._egress_to_host(packet)
            return
        self._follow_route(packet, dst)

    def _can_select(self) -> bool:
        return (
            self.selector is not None
            and self.accelerator is not None
            and not self.failed
        )

    def _ingress_from_host(self, packet: Packet) -> None:
        """Extra ToR rules for packets entering the network (section IV-B)."""
        if packet.magic == MAGIC_REQUEST:
            group_id = self._group_of_host.get(packet.src)
            if group_id is None:
                raise ConfigurationError(
                    f"no traffic-group rule for host {packet.src} on {self.name}"
                )
            rsnode_id = self._rsnode_for_group.get(group_id)
            if rsnode_id is None:
                raise ConfigurationError(
                    f"no RSNode rule for group {group_id} on {self.name}"
                )
            packet.rsnode_id = rsnode_id
            if rsnode_id == RSNODE_ILLEGAL:
                # Degraded Replica Selection: label as monitor-visible
                # non-NetRS traffic and route to the client's backup replica.
                packet.magic = magic_transform(MAGIC_MONITOR)
                packet.dst = packet.backup_replica
                packet.server = packet.backup_replica
        elif packet.magic in (MAGIC_RESPONSE, MAGIC_MONITOR):
            location = self.network.topology.node(packet.src)
            packet.source_marker = SourceMarker(
                pod=location.pod if location.pod is not None else -1,
                rack=location.rack if location.rack is not None else -1,
            )

    def _after_selection(self, packet: Packet) -> None:
        """Selector handed back a rebuilt request: forward it to the server."""
        self._regular_forward(packet)

    def _absorb_response(self, packet: Packet) -> None:
        """Accelerator work for a cloned response: update state, drop."""
        if self.selector is not None:
            self.selector.on_response(packet)
        return None

    def _forward_toward_operator(self, packet: Packet) -> None:
        rsnode_id = packet.rsnode_id
        target = self._operator_directory.get(rsnode_id)
        if target is None:
            raise RoutingError(
                f"{self.name}: packet carries unknown RSNode ID {rsnode_id}"
            )
        self._follow_route(packet, target)

    def _regular_forward(self, packet: Packet) -> None:
        if packet.dst is None:
            raise RoutingError(
                f"{self.name}: cannot forward a packet without a destination"
            )
        if packet.dst in self._attached_hosts:
            self._egress_to_host(packet)
            return
        self._follow_route(packet, packet.dst)

    def _egress_to_host(self, packet: Packet) -> None:
        """Deliver to a locally attached host, counting monitor traffic."""
        if (
            self.monitor is not None
            and packet.magic == MAGIC_MONITOR
            and packet.source_marker is not None
        ):
            self.monitor.observe(packet)
        self.packets_forwarded += 1
        self._transmit(self.name, packet.dst, packet)  # type: ignore[arg-type]

    def _follow_route(self, packet: Packet, target: str) -> None:
        """Advance the packet one hop along the attached path to ``target``.

        The path is normally attached at injection (host NIC) or when a
        NetRS rule changes the steering target; the steady-state hop is a
        string compare plus an index bump, with the route-cache lookup only
        on target changes.
        """
        if packet.route_target != target:
            packet.route_target = target
            packet.route = self.network.router.path(
                self.name, target, packet.flow_key()
            )
            packet.route_pos = 0
        pos = packet.route_pos
        try:
            next_hop = packet.route[pos]
        except IndexError:
            raise RoutingError(
                f"{self.name}: exhausted route toward {target} "
                f"(route={packet.route})"
            ) from None
        packet.route_pos = pos + 1
        packet.hops += 1
        self.packets_forwarded += 1
        self._transmit_fast(self.name, next_hop, packet)
