"""NetRS reproduction: in-network replica selection for key-value stores.

This package reproduces *NetRS: Cutting Response Latency in Distributed
Key-Value Stores with In-Network Replica Selection* (ICDCS 2018) as a
discrete-event simulation, including:

* the simulation engine (:mod:`repro.sim`),
* a fat-tree data-center network with programmable switches and network
  accelerators (:mod:`repro.network`),
* a replicated key-value store with fluctuating server performance
  (:mod:`repro.kvstore`),
* replica-selection algorithms, C3 foremost (:mod:`repro.selection`),
* the NetRS controller, operators and ILP-based RSNode placement
  (:mod:`repro.core`),
* the experiment harness reproducing the paper's figures
  (:mod:`repro.experiments`),
* the parallel experiment-execution engine with checkpoint/resume
  (:mod:`repro.exec`).

Quickstart::

    from repro.experiments import ExperimentConfig, run_experiment

    config = ExperimentConfig.small(scheme="netrs-ilp", seed=1)
    result = run_experiment(config)
    print(result.latency.summary())
"""

from repro._version import __version__
from repro.errors import (
    ConfigurationError,
    ExecutionError,
    InfeasiblePlanError,
    PlacementError,
    ProtocolError,
    ReproError,
    RoutingError,
    TopologyError,
)

__all__ = [
    "ConfigurationError",
    "ExecutionError",
    "InfeasiblePlanError",
    "PlacementError",
    "ProtocolError",
    "ReproError",
    "RoutingError",
    "TopologyError",
    "__version__",
]
