"""Key-value clients: request issuing, feedback, and redundant requests.

A client is an end-host endpoint that turns workload arrivals into request
packets and records response latencies.  Depending on the scheme it either

* **selects the replica itself** (CliRS: the client is the RSNode, running a
  replica-selection algorithm over its locally observed feedback), or
* **delegates to NetRS** (sends a NetRS request carrying the RGID plus a
  client-chosen *backup replica* used if the network degrades the request).

The optional :class:`RedundancyPolicy` reproduces CliRS-R95 (section V-A): if
a primary request is outstanding longer than the client's 95th-percentile
expected latency, a redundant copy goes to a different replica and the first
response wins.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.kvstore.hashing import ConsistentHashRing
from repro.network.host import Host
from repro.network.packet import Packet, make_request
from repro.selection.base import ReplicaSelector
from repro.sim.core import Environment
from repro.sim.probes import LatencyRecorder
from repro.sim.rng import DrawSource

#: Shared generator of globally unique request IDs.
_request_ids = itertools.count(1)

#: Cap on the exponential retry backoff, as a multiple of the base timeout:
#: the k-th retransmission waits ``min(2**k, _BACKOFF_CAP) * request_timeout``
#: before timing out again.  Fixed rather than configurable -- the cap only
#: bounds pathological schedules, it is not a tuning knob (docs/FAULTS.md).
_BACKOFF_CAP = 8.0


@dataclass(slots=True)
class RedundancyPolicy:
    """CliRS-R95 parameters.

    ``percentile`` is the outstanding-time threshold (the paper uses the
    95th); ``min_samples`` delays redundancy until the client has enough
    history for a stable estimate; ``fallback_multiplier`` times the mean
    issues the threshold before that.
    """

    percentile: float = 95.0
    min_samples: int = 30
    fallback_multiplier: float = 3.0


class _QuorumState:
    """Per-read quorum bookkeeping; allocated only when ``read_quorum > 1``.

    Kept out of :class:`_Outstanding` so the single-replica read path (the
    default, and the only path the flow tier mirrors) allocates nothing new.
    ``versions`` collects ``(server, (version_ts, version_id))`` in arrival
    order -- deterministic, since packet deliveries are.
    """

    __slots__ = ("needed", "responses", "versions", "data_seen",
                 "data_server", "data_packet")

    def __init__(self, needed: int) -> None:
        self.needed = needed
        self.responses = 0
        self.versions: List[Tuple[str, Tuple[float, int]]] = []
        self.data_seen = False
        self.data_server = ""
        self.data_packet: Optional[Packet] = None


@dataclass(slots=True)
class _Outstanding:
    key: int
    rgid: int
    replicas: Tuple[str, ...]
    issued_at: float
    record: bool
    primary_target: str  # "" when NetRS selects in-network
    done: bool = False
    timer: object = None
    duplicates_sent: int = 0
    is_write: bool = False
    is_repair: bool = False  # read-repair write: no metrics, no tracker
    acks_needed: int = 1
    acks_received: int = 0
    copies_sent: int = 1
    quorum: Optional[_QuorumState] = None  # read-quorum state (R > 1 only)
    # Timeout/retry state (read path only; see docs/FAULTS.md).
    attempts: int = 0
    timeout_timer: object = None
    tried: Tuple[str, ...] = ()
    late_seen: int = 0


class CompletionTracker:
    """Counts first responses so the runner knows when the run is over."""

    __slots__ = ("expected", "completed", "_callbacks")

    def __init__(self, expected: int) -> None:
        if expected < 1:
            raise ConfigurationError("expected completions must be >= 1")
        self.expected = expected
        self.completed = 0
        self._callbacks: List[Callable[[], None]] = []

    def when_done(self, callback: Callable[[], None]) -> None:
        """Register a callback for the moment the last request completes."""
        self._callbacks.append(callback)

    def complete(self) -> None:
        """Record one request completion."""
        self.completed += 1
        if self.completed == self.expected:
            for callback in self._callbacks:
                callback()


class KVClient:
    """One client endpoint of the key-value store."""

    __slots__ = (
        "env",
        "host",
        "name",
        "ring",
        "selector",
        "recorder",
        "tracker",
        "netrs",
        "redundancy",
        "_draws",
        "write_recorder",
        "write_quorum",
        "read_quorum",
        "_outstanding",
        "_history",
        "_cached_threshold",
        "_samples_since_refresh",
        "trace_sink",
        "on_complete",
        "requests_sent",
        "redundant_sent",
        "responses_received",
        "late_responses",
        "request_timeout",
        "max_retries",
        "timeouts",
        "retries",
        "requests_lost",
        "duplicates_suppressed",
        "writes_completed",
        "write_failures",
        "stale_reads",
        "read_repairs",
        "repair_writes_sent",
        "quorum_degraded_reads",
        "digest_probes_sent",
    )

    def __init__(
        self,
        env: Environment,
        host: Host,
        *,
        ring: ConsistentHashRing,
        selector: ReplicaSelector,
        recorder: LatencyRecorder,
        tracker: Optional[CompletionTracker] = None,
        netrs: bool = False,
        redundancy: Optional[RedundancyPolicy] = None,
        rng: Optional[DrawSource] = None,
        write_recorder: Optional[LatencyRecorder] = None,
        write_quorum: Optional[int] = None,
        read_quorum: int = 1,
        request_timeout: Optional[float] = None,
        max_retries: int = 0,
    ) -> None:
        if redundancy is not None and netrs:
            raise ConfigurationError(
                "redundant requests are a client-side scheme (CliRS-R95); "
                "combine them with netrs=False"
            )
        if request_timeout is not None and request_timeout <= 0:
            raise ConfigurationError("request_timeout must be positive")
        if max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        self.env = env
        self.host = host
        self.name = host.name
        self.ring = ring
        self.selector = selector
        self.recorder = recorder
        self.tracker = tracker
        self.netrs = netrs
        self.redundancy = redundancy
        self._draws = rng
        self.write_recorder = write_recorder
        if write_quorum is not None and write_quorum < 1:
            raise ConfigurationError("write_quorum must be >= 1")
        self.write_quorum = write_quorum
        if read_quorum < 1:
            raise ConfigurationError("read_quorum must be >= 1")
        self.read_quorum = read_quorum
        self._outstanding: Dict[int, _Outstanding] = {}
        # Client-local latency history for the R95 threshold.  The threshold
        # is cached and refreshed periodically so issuing stays O(1).
        self._history = LatencyRecorder()
        self._cached_threshold: Optional[float] = None
        self._samples_since_refresh = 0
        # Optional per-request trace sink (see repro.analysis.trace); set by
        # analysis instrumentation, never by normal experiment wiring.
        self.trace_sink = None
        # Optional completion hook (closed-loop workloads issue the next
        # request from here).  Called with this client after each first
        # response, before the tracker is notified.
        self.on_complete = None
        # Timeout/retry policy (see docs/FAULTS.md): with a timeout set, a
        # request unanswered for request_timeout seconds is retransmitted up
        # to max_retries times with capped exponential backoff, then given
        # up on (counted in requests_lost).
        self.request_timeout = request_timeout
        self.max_retries = max_retries
        # Accounting
        self.requests_sent = 0
        self.redundant_sent = 0
        self.responses_received = 0
        self.late_responses = 0
        self.timeouts = 0
        self.retries = 0
        self.requests_lost = 0
        self.duplicates_suppressed = 0
        # Consistency accounting (see docs/CONSISTENCY.md).
        self.writes_completed = 0
        self.write_failures = 0
        self.stale_reads = 0
        self.read_repairs = 0
        self.repair_writes_sent = 0
        self.quorum_degraded_reads = 0
        self.digest_probes_sent = 0
        host.bind(self)

    # ------------------------------------------------------------------
    # Issuing
    # ------------------------------------------------------------------
    def issue(self, key: int, record: bool = True) -> int:
        """Issue one read request for ``key``; returns the request ID."""
        rgid, replicas = self.ring.group_for_key(key)
        request_id = next(_request_ids)
        now = self.env.now
        if self.netrs:
            # The client only supplies the backup replica; the in-network
            # RSNode makes the real choice.
            backup = self.selector.select(replicas, now)
            packet = make_request(
                client=self.name,
                request_id=request_id,
                key=key,
                rgid=rgid,
                backup_replica=backup,
                issued_at=now,
                netrs=True,
            )
            primary_target = ""
        else:
            target = self.selector.select(replicas, now)
            self.selector.note_sent(target, now)
            packet = make_request(
                client=self.name,
                request_id=request_id,
                key=key,
                rgid=rgid,
                backup_replica=target,
                issued_at=now,
                netrs=False,
                dst=target,
            )
            primary_target = target
        entry = _Outstanding(
            key=key,
            rgid=rgid,
            replicas=replicas,
            issued_at=now,
            record=record,
            primary_target=primary_target,
        )
        if primary_target:
            entry.tried = (primary_target,)
        self._outstanding[request_id] = entry
        self.requests_sent += 1
        self.host.send(packet)
        if self.redundancy is not None:
            delay = self._redundancy_threshold()
            entry.timer = self.env.call_in(
                delay, self._fire_redundant, request_id
            )
        if self.request_timeout is not None:
            # Arming a timer that never fires leaves results byte-identical:
            # extra schedule entries only bump the monotone sequence counter,
            # and cancelled timers neither run nor count as events.
            entry.timeout_timer = self.env.call_in(
                self.request_timeout, self._on_timeout, request_id
            )
        if self.read_quorum > 1:
            self._probe_digests(entry, request_id, now)
        return request_id

    def issue_write(self, key: int, record: bool = True) -> int:
        """Issue one replicated write for ``key``.

        Writes bypass replica selection entirely (NetRS is a read-path
        mechanism): the client fans the write out to every replica of the
        key and completes when ``write_quorum`` acknowledgements arrive
        (default: all replicas).  Write latencies land in
        ``write_recorder`` when one is configured.

        Each write carries an LWW version ``(issued_at, request_id)`` --
        the globally monotone request ID breaks issue-time ties, making
        last-write-wins a total order (see docs/CONSISTENCY.md).  With a
        ``request_timeout`` configured, a write that cannot gather its
        quorum (e.g. a replica crashed) fails after one timeout instead of
        hanging: counted in ``write_failures``, no latency sample, and the
        completion tracker still advances.
        """
        rgid, replicas = self.ring.group_for_key(key)
        quorum = self.write_quorum or len(replicas)
        if quorum > len(replicas):
            raise ConfigurationError(
                f"write quorum {quorum} exceeds replication factor "
                f"{len(replicas)}"
            )
        request_id = next(_request_ids)
        now = self.env.now
        entry = _Outstanding(
            key=key,
            rgid=rgid,
            replicas=replicas,
            issued_at=now,
            record=record,
            primary_target=replicas[0],
            is_write=True,
            acks_needed=quorum,
            copies_sent=len(replicas),
        )
        self._outstanding[request_id] = entry
        for replica in replicas:
            packet = make_request(
                client=self.name,
                request_id=request_id,
                key=key,
                rgid=rgid,
                backup_replica=replica,
                issued_at=now,
                netrs=False,
                dst=replica,
            )
            packet.is_write = True
            packet.version_ts = now
            packet.version_id = request_id
            self.selector.note_sent(replica, now)
            self.requests_sent += 1
            self.host.send(packet)
        if self.request_timeout is not None:
            entry.timeout_timer = self.env.call_in(
                self.request_timeout, self._on_write_timeout, request_id
            )
        return request_id

    def _handle_write_ack(self, packet: Packet, entry: _Outstanding) -> None:
        entry.acks_received += 1
        if entry.done:
            # Acks beyond the quorum, or arriving after a write timed out.
            self.late_responses += 1
        elif entry.acks_received == entry.acks_needed:
            entry.done = True
            if entry.timeout_timer is not None:
                entry.timeout_timer.cancel()  # type: ignore[attr-defined]
            latency = self.env.now - entry.issued_at
            if entry.is_repair:
                # Read-repair writes are internal traffic: no latency
                # sample, no workload completion, no closed-loop refill.
                pass
            else:
                self.writes_completed += 1
                if entry.record and self.write_recorder is not None:
                    self.write_recorder.add(latency)
                if self.trace_sink is not None:
                    self.trace_sink.record_completion(
                        packet,
                        issued_at=entry.issued_at,
                        completed_at=self.env.now,
                        recorded=entry.record,
                        rgid=entry.rgid,
                    )
                if self.on_complete is not None:
                    self.on_complete(self)
                if self.tracker is not None:
                    self.tracker.complete()
        if entry.acks_received >= entry.copies_sent:
            self._outstanding.pop(packet.request_id, None)

    def _on_write_timeout(self, request_id: int) -> None:
        """A write failed to gather its quorum within the timeout.

        Writes are not retried (replaying a fan-out write is ambiguous
        without per-replica sequencing); the write *fails*: counted, no
        latency sample, and the tracker advances so the run terminates.
        Replicas that did apply the write keep it -- LWW convergence does
        not require the client to have observed the quorum.
        """
        entry = self._outstanding.get(request_id)
        if entry is None or entry.done:
            return
        entry.done = True
        self.timeouts += 1
        self.write_failures += 1
        if entry.acks_received >= entry.copies_sent:
            del self._outstanding[request_id]
        if self.on_complete is not None:
            self.on_complete(self)
        if self.tracker is not None:
            self.tracker.complete()

    def _redundancy_threshold(self) -> float:
        policy = self.redundancy
        assert policy is not None
        if len(self._history) >= policy.min_samples:
            if self._cached_threshold is None or self._samples_since_refresh >= 25:
                self._cached_threshold = self._history.percentile(policy.percentile)
                self._samples_since_refresh = 0
            return self._cached_threshold
        mean = self._history.mean()
        if math.isnan(mean):
            # No history at all yet: be generous so cold starts do not flood
            # the servers with duplicates.
            return policy.fallback_multiplier * 10e-3
        return policy.fallback_multiplier * mean

    def _fire_redundant(self, request_id: int) -> None:
        entry = self._outstanding.get(request_id)
        if entry is None or entry.done:
            return
        others = [r for r in entry.replicas if r != entry.primary_target]
        if not others:
            return
        if self._draws is not None and len(others) > 1:
            target = others[int(self._draws.integers(len(others)))]
        else:
            target = others[0]
        self.selector.note_sent(target, self.env.now)
        duplicate = make_request(
            client=self.name,
            request_id=request_id,
            key=entry.key,
            rgid=entry.rgid,
            backup_replica=target,
            issued_at=entry.issued_at,
            netrs=False,
            dst=target,
        )
        duplicate.is_redundant = True
        entry.duplicates_sent += 1
        self.redundant_sent += 1
        self.host.send(duplicate)

    # ------------------------------------------------------------------
    # Quorum reads & read-repair (see docs/CONSISTENCY.md)
    # ------------------------------------------------------------------
    def _probe_digests(
        self, entry: _Outstanding, request_id: int, now: float
    ) -> None:
        """Fan out ``R - 1`` version-digest probes beside the data read.

        Digest probes are deterministic (the first ``R - 1`` group replicas
        other than the data target; no RNG draws) and invisible to the
        selector feedback loop: they bypass the server's service queue, so
        pairing them with ``note_sent`` would corrupt the concurrency
        estimate C3 maintains for real requests.  Under NetRS the data
        replica is chosen in-network after the probes leave, so a probe may
        land on the eventual data server -- that response pair simply
        carries matching versions.
        """
        candidates = [r for r in entry.replicas if r != entry.primary_target]
        targets = tuple(candidates[: self.read_quorum - 1])
        entry.quorum = _QuorumState(needed=1 + len(targets))
        for target in targets:
            probe = make_request(
                client=self.name,
                request_id=request_id,
                key=entry.key,
                rgid=entry.rgid,
                backup_replica=target,
                issued_at=now,
                netrs=False,
                dst=target,
            )
            probe.is_digest = True
            self.digest_probes_sent += 1
            self.host.send(probe)

    def _absorb_digest(
        self, packet: Packet, entry: Optional[_Outstanding]
    ) -> None:
        """Fold a version-digest response into its read's quorum state."""
        if entry is None or entry.done or entry.quorum is None:
            # The read already completed (or was lost/degraded); stale
            # digests carry no actionable information.
            return
        quorum = entry.quorum
        quorum.responses += 1
        quorum.versions.append(
            (packet.server, (packet.version_ts, packet.version_id))
        )
        if quorum.data_seen and quorum.responses >= quorum.needed:
            self._finish_quorum_read(packet.request_id, entry, degraded=False)

    def _absorb_quorum_data(self, packet: Packet, entry: _Outstanding) -> None:
        """Fold the data response of a quorum read; complete if R are in."""
        quorum = entry.quorum
        assert quorum is not None
        if quorum.data_seen:
            # A losing duplicate/retransmission copy while digests are
            # still pending; only its feedback (already folded) matters.
            self.late_responses += 1
            return
        quorum.data_seen = True
        quorum.data_server = packet.server
        quorum.data_packet = packet
        quorum.responses += 1
        quorum.versions.append(
            (packet.server, (packet.version_ts, packet.version_id))
        )
        if quorum.responses >= quorum.needed:
            self._finish_quorum_read(packet.request_id, entry, degraded=False)

    def _finish_quorum_read(
        self, request_id: int, entry: _Outstanding, *, degraded: bool
    ) -> None:
        """Complete a quorum read: record latency, detect staleness, repair.

        The latency sample spans issue to *quorum* (last arrival of the R
        responses), so consulting more replicas honestly prices the extra
        wait.  Degraded completions (timeout with data in hand but digests
        missing) record the timeout instant -- the time the client actually
        waited before giving up on full agreement.
        """
        quorum = entry.quorum
        assert quorum is not None
        entry.done = True
        now = self.env.now
        latency = now - entry.issued_at
        self._history.add(latency)
        self._samples_since_refresh += 1
        packet = quorum.data_packet
        if self.trace_sink is not None and packet is not None:
            self.trace_sink.record_completion(
                packet,
                issued_at=entry.issued_at,
                completed_at=now,
                recorded=entry.record,
                rgid=entry.rgid,
            )
        if entry.record:
            self.recorder.add(latency)
        if entry.timer is not None:
            entry.timer.cancel()  # type: ignore[attr-defined]
        if entry.timeout_timer is not None:
            entry.timeout_timer.cancel()  # type: ignore[attr-defined]
        if degraded:
            self.quorum_degraded_reads += 1
        self._repair_if_stale(entry, quorum)
        if entry.duplicates_sent == 0 and entry.attempts == 0:
            self._outstanding.pop(request_id, None)
        if self.on_complete is not None:
            self.on_complete(self)
        if self.tracker is not None:
            self.tracker.complete()

    def _repair_if_stale(
        self, entry: _Outstanding, quorum: _QuorumState
    ) -> None:
        """Version-mismatch detection plus asynchronous read-repair.

        ``stale_reads`` counts reads whose *data* response was older than
        the newest version observed in the quorum -- the value the client
        returned was stale.  Any responder behind the newest version gets a
        fire-and-forget repair write carrying that version (LWW: applying
        it is idempotent and commutative).
        """
        newest = (0.0, 0)
        for _server, version in quorum.versions:
            if version > newest:
                newest = version
        if newest == (0.0, 0):
            # Key never written anywhere: nothing to compare or repair.
            return
        stale: List[str] = []
        data_stale = False
        for server, version in quorum.versions:
            if version < newest:
                if server == quorum.data_server:
                    data_stale = True
                if server not in stale:
                    stale.append(server)
        if data_stale:
            self.stale_reads += 1
        if not stale:
            return
        self.read_repairs += 1
        self._send_repair(entry, tuple(stale), newest)

    def _send_repair(
        self,
        entry: _Outstanding,
        targets: Tuple[str, ...],
        version: Tuple[float, int],
    ) -> None:
        """Send asynchronous repair writes installing ``version``.

        Repairs reuse the write-ack path but are flagged ``is_repair``:
        they never arm timeouts (a repair lost to a crashed replica is
        retried by the next stale read), record no latency, and do not
        advance the completion tracker -- they are background traffic, not
        workload.
        """
        request_id = next(_request_ids)
        now = self.env.now
        repair = _Outstanding(
            key=entry.key,
            rgid=entry.rgid,
            replicas=targets,
            issued_at=now,
            record=False,
            primary_target=targets[0],
            is_write=True,
            is_repair=True,
            acks_needed=len(targets),
            copies_sent=len(targets),
        )
        self._outstanding[request_id] = repair
        for target in targets:
            packet = make_request(
                client=self.name,
                request_id=request_id,
                key=entry.key,
                rgid=entry.rgid,
                backup_replica=target,
                issued_at=now,
                netrs=False,
                dst=target,
            )
            packet.is_write = True
            packet.is_repair = True
            packet.version_ts, packet.version_id = version
            self.selector.note_sent(target, now)
            self.repair_writes_sent += 1
            self.host.send(packet)

    # ------------------------------------------------------------------
    # Timeouts & retries (read path only; see docs/FAULTS.md)
    # ------------------------------------------------------------------
    def _on_timeout(self, request_id: int) -> None:
        entry = self._outstanding.get(request_id)
        if entry is None or entry.done:
            return
        if entry.quorum is not None and entry.quorum.data_seen:
            self.timeouts += 1
            self._finish_quorum_read(request_id, entry, degraded=True)
            return
        self.timeouts += 1
        if entry.attempts >= self.max_retries:
            # Retry budget exhausted: the request is *lost*.  No latency
            # sample is recorded, but the tracker still advances so the run
            # terminates instead of stalling on a dead server.
            entry.done = True
            self.requests_lost += 1
            del self._outstanding[request_id]
            if self.on_complete is not None:
                self.on_complete(self)
            if self.tracker is not None:
                self.tracker.complete()
            return
        entry.attempts += 1
        self.retries += 1
        now = self.env.now
        if self.netrs:
            # Re-enter the NetRS path with a fresh backup choice; the
            # in-network RSNode re-selects (it may know the primary is slow
            # by now -- exactly the aggregated-feedback advantage).
            backup = self.selector.select(entry.replicas, now)
            packet = make_request(
                client=self.name,
                request_id=request_id,
                key=entry.key,
                rgid=entry.rgid,
                backup_replica=backup,
                issued_at=entry.issued_at,
                netrs=True,
            )
        else:
            # Prefer replicas not yet tried (RepNet-style retry discipline:
            # a timed-out server is the worst candidate for the retry); once
            # every replica has been tried, select over the full set again.
            untried = tuple(r for r in entry.replicas if r not in entry.tried)
            candidates = untried or entry.replicas
            if len(candidates) > 1:
                target = self.selector.select(candidates, now)
            else:
                target = candidates[0]
            entry.tried = entry.tried + (target,)
            entry.primary_target = target
            self.selector.note_sent(target, now)
            packet = make_request(
                client=self.name,
                request_id=request_id,
                key=entry.key,
                rgid=entry.rgid,
                backup_replica=target,
                issued_at=entry.issued_at,
                netrs=False,
                dst=target,
            )
        self.requests_sent += 1
        self.host.send(packet)
        assert self.request_timeout is not None
        delay = self.request_timeout * min(2.0 ** entry.attempts, _BACKOFF_CAP)
        entry.timeout_timer = self.env.call_in(delay, self._on_timeout, request_id)

    # ------------------------------------------------------------------
    # Responses
    # ------------------------------------------------------------------
    def handle_packet(self, packet: Packet) -> None:
        """Endpoint callback: fold a response into state and metrics."""
        self.responses_received += 1
        now = self.env.now
        status = packet.server_status
        entry = self._outstanding.get(packet.request_id)
        if packet.is_digest:
            self._absorb_digest(packet, entry)
            return
        # Feedback always updates the local selector: in CliRS this is the
        # decision input, in NetRS it keeps the backup choice fresh.
        if status is not None and entry is not None:
            self.selector.note_response(
                packet.server, now - entry.issued_at, status, now
            )
        if entry is not None and entry.is_write:
            self._handle_write_ack(packet, entry)
            return
        if entry is None or entry.done:
            self.late_responses += 1
            if entry is not None:
                # A losing copy of a duplicated or retransmitted request.
                # Retransmission copies are suppressed here: the first
                # response completed the request, later ones only update
                # selector feedback (above) and counters.
                if entry.attempts:
                    self.duplicates_suppressed += 1
                entry.late_seen += 1
                if entry.late_seen >= entry.duplicates_sent + entry.attempts:
                    # All possible extra responses are in; drop the entry.
                    # (Copies swallowed by a dead server or link never
                    # arrive, so their entries are kept until run end.)
                    self._outstanding.pop(packet.request_id, None)
            return
        if entry.quorum is not None:
            self._absorb_quorum_data(packet, entry)
            return
        entry.done = True
        latency = now - entry.issued_at
        self._history.add(latency)
        self._samples_since_refresh += 1
        if self.trace_sink is not None:
            self.trace_sink.record_completion(
                packet,
                issued_at=entry.issued_at,
                completed_at=now,
                recorded=entry.record,
                rgid=entry.rgid,
            )
        if entry.record:
            self.recorder.add(latency)
        if entry.timer is not None:
            entry.timer.cancel()  # type: ignore[attr-defined]
        if entry.timeout_timer is not None:
            entry.timeout_timer.cancel()  # type: ignore[attr-defined]
        # Keep duplicates findable until their responses arrive, but free
        # completed singletons immediately to bound memory.
        if entry.duplicates_sent == 0 and entry.attempts == 0:
            del self._outstanding[packet.request_id]
        if self.on_complete is not None:
            self.on_complete(self)
        if self.tracker is not None:
            self.tracker.complete()
