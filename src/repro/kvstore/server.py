"""Key-value server: Np-parallel queue with fluctuating exponential service.

A server processes up to ``parallelism`` requests concurrently (paper:
``Np = 4``); excess requests wait in FIFO order.  Each request's service time
is exponential with the *current* fluctuating mean.  Every response
piggybacks a :class:`~repro.network.packet.ServerStatus` -- the queue size at
departure and the server's EWMA service-rate estimate -- which is the
feedback channel C3-style selectors rely on.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Protocol, Tuple

from repro.network.host import Host
from repro.network.packet import MAGIC_PLAIN, Packet, ServerStatus, make_response
from repro.sim.core import Environment
from repro.sim.rng import DrawSource


class ServiceModel(Protocol):
    """Provides the time-varying mean service time."""

    @property
    def current_mean(self) -> float:
        """Mean service time right now."""
        ...  # pragma: no cover - protocol definition

    def start(self, env: Environment) -> None:
        """Begin any time-varying behaviour."""
        ...  # pragma: no cover - protocol definition


class KVServer:
    """One replica server of the key-value store."""

    __slots__ = (
        "env",
        "host",
        "name",
        "service_model",
        "parallelism",
        "value_size",
        "_draws",
        "_alpha",
        "_waiting",
        "_in_service",
        "_ewma_service_time",
        "completions",
        "arrivals",
        "max_queue_seen",
        "down",
        "_epoch",
        "dropped_requests",
        "lost_in_service",
        "_versions",
        "digest_requests",
        "repairs_applied",
        "migration_keys_in",
        "migration_bytes_in",
    )

    def __init__(
        self,
        env: Environment,
        host: Host,
        *,
        service_model: ServiceModel,
        parallelism: int = 4,
        rng: DrawSource,
        value_size: int = 1024,
        rate_ewma_alpha: float = 0.9,
    ) -> None:
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        if not 0 <= rate_ewma_alpha < 1:
            raise ValueError("rate_ewma_alpha must be in [0, 1)")
        self.env = env
        self.host = host
        self.name = host.name
        self.service_model = service_model
        self.parallelism = parallelism
        self.value_size = value_size
        self._draws = rng
        self._alpha = rate_ewma_alpha
        self._waiting: Deque[Tuple[Packet, float]] = deque()
        self._in_service = 0
        # EWMA of observed service durations seeds at the nominal mean so the
        # first piggybacked rates are sane.
        self._ewma_service_time = service_model.current_mean
        # Accounting
        self.completions = 0
        self.arrivals = 0
        self.max_queue_seen = 0
        # Crash-stop state (see repro.faults and docs/FAULTS.md).  The epoch
        # stamps in-flight completions so work scheduled before a crash dies
        # with the server instead of completing across it.
        self.down = False
        self._epoch = 0
        self.dropped_requests = 0
        self.lost_in_service = 0
        # Per-key LWW version store: key -> (version_ts, version_id).  Only
        # written keys have entries (reads of never-written keys carry the
        # zero version).  Versions survive crashes -- crash-stop loses the
        # queue, not the disk -- and are the payload key migration ships.
        self._versions: "dict[int, Tuple[float, int]]" = {}
        self.digest_requests = 0
        self.repairs_applied = 0
        self.migration_keys_in = 0
        self.migration_bytes_in = 0
        host.bind(self)
        service_model.start(env)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def queue_size(self) -> int:
        """Pending requests: waiting plus in service (what C3 piggybacks)."""
        return len(self._waiting) + self._in_service

    @property
    def service_rate_estimate(self) -> float:
        """EWMA-based aggregate drain rate (requests/second)."""
        return self.parallelism / self._ewma_service_time

    def status(self) -> ServerStatus:
        """Snapshot the piggybacked status segment."""
        return ServerStatus(
            queue_size=self.queue_size,
            service_rate=self.service_rate_estimate,
            timestamp=self.env.now,
        )

    # ------------------------------------------------------------------
    # Crash-stop faults
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Crash the server: lose the queue and all requests in service.

        Idempotent.  Requests arriving while down are dropped (and counted
        in ``dropped_requests``); clients recover them via their timeout and
        retry path.  The EWMA rate estimate survives the crash -- the paper's
        feedback channel carries no tombstones, so stale state after
        recovery is part of the model.
        """
        if self.down:
            return
        self.down = True
        self._epoch += 1
        self.lost_in_service += self._in_service + len(self._waiting)
        self._waiting.clear()
        self._in_service = 0

    def recover(self) -> None:
        """Bring a crashed server back with an empty queue (idempotent)."""
        self.down = False

    # ------------------------------------------------------------------
    # Packet handling
    # ------------------------------------------------------------------
    def handle_packet(self, packet: Packet) -> None:
        """Endpoint callback: accept a request (read, write, or metadata)."""
        if self.down:
            self.dropped_requests += 1
            return
        if packet.is_digest or packet.is_migration:
            self._handle_metadata(packet)
            return
        self.arrivals += 1
        if self.queue_size + 1 > self.max_queue_seen:
            self.max_queue_seen = self.queue_size + 1
        if self._in_service < self.parallelism:
            self._begin_service(packet, arrived_at=self.env.now)
        else:
            self._waiting.append((packet, self.env.now))

    def _begin_service(self, packet: Packet, arrived_at: float) -> None:
        self._in_service += 1
        duration = self._draws.exponential(self.service_model.current_mean)
        packet.server_queue_delay = self.env.now - arrived_at
        packet.server_service_time = duration
        self.env.post_in(duration, self._complete, (packet, duration, self._epoch))

    def _complete(self, packet: Packet, duration: float, epoch: int) -> None:
        if epoch != self._epoch:
            # Scheduled before a crash: that work died with the server.
            return
        self._in_service -= 1
        self.completions += 1
        self._ewma_service_time = (
            self._alpha * self._ewma_service_time + (1 - self._alpha) * duration
        )
        response = make_response(
            packet,
            server=self.name,
            status=self.status(),
            value_size=self.value_size,
        )
        self._fold_version(packet, response)
        self.host.send(response)
        if self._waiting:
            next_packet, arrived_at = self._waiting.popleft()
            self._begin_service(next_packet, arrived_at)

    # ------------------------------------------------------------------
    # Consistency protocol (see docs/CONSISTENCY.md)
    # ------------------------------------------------------------------
    def version_of(self, key: int) -> Tuple[float, int]:
        """The LWW version of ``key``; the zero version if never written."""
        return self._versions.get(key, (0.0, 0))

    def version_items(self):
        """Stored ``(key, version)`` pairs in write-application order.

        Dict insertion order is the order writes were first applied, which
        is deterministic per seed -- migration payloads iterate this.
        """
        return self._versions.items()

    def _fold_version(self, packet: Packet, response: Packet) -> None:
        """Apply a write's version (LWW) and stamp the store's onto the reply.

        Called at completion time from ``_complete`` (the packet tier's only
        write-path hook in a mirrored method; the flow tier drops it by
        contract until writes are mirrored).  Ordering ties break on the
        globally monotone ``version_id``, so last-write-wins is a total
        order and replicas converge regardless of apply order.
        """
        if packet.is_write:
            incoming = (packet.version_ts, packet.version_id)
            if incoming > self._versions.get(packet.key, (0.0, 0)):
                self._versions[packet.key] = incoming
                if packet.is_repair:
                    self.repairs_applied += 1
        version = self._versions.get(packet.key)
        if version is not None:
            response.version_ts, response.version_id = version

    def _handle_metadata(self, packet: Packet) -> None:
        """Serve version metadata outside the service queue.

        Digest probes and migration installs touch only the in-memory
        version table (no value retrieval), so they answer immediately
        instead of competing with data requests for the ``Np`` service
        slots -- and deliberately do not perturb ``arrivals``, queue sizes,
        or the piggybacked feedback loop.
        """
        if packet.is_migration:
            self._install_migration(packet)
            return
        self.digest_requests += 1
        response = Packet(
            src=self.name,
            dst=packet.client,
            magic=MAGIC_PLAIN,
            request_id=packet.request_id,
            server_status=self.status(),
            key=packet.key,
            value_size=0,
            client=packet.client,
            server=self.name,
            issued_at=packet.issued_at,
            is_digest=True,
        )
        version = self._versions.get(packet.key)
        if version is not None:
            response.version_ts, response.version_id = version
        self.host.send(response)

    def _install_migration(self, packet: Packet) -> None:
        """Fold a migration chunk into the version store (LWW per key)."""
        for key, version_ts, version_id in packet.migration_entries:
            incoming = (version_ts, version_id)
            if incoming > self._versions.get(key, (0.0, 0)):
                self._versions[key] = incoming
                self.migration_keys_in += 1
        self.migration_bytes_in += packet.value_size
