"""Consistent hashing with virtual nodes and replica groups.

Keys are placed on a hash ring; each server owns several virtual points.  A
key's replica group is the first ``replication_factor`` *distinct* servers
clockwise from the key's hash.  Every ring segment therefore maps to one
replica group, and the segment index doubles as the paper's **RGID** (Fig. 2):
a compact ID a NetRS selector resolves to candidate servers through its local
replica-group database, keeping packet headers fixed-size.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError

_HASH_SPACE = 2**64


def stable_hash(text: str) -> int:
    """64-bit stable hash (md5-based, independent of PYTHONHASHSEED)."""
    digest = hashlib.md5(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ConsistentHashRing:
    """Hash ring mapping keys to replica groups.

    Args:
        servers: Server host names participating in the ring.
        replication_factor: Distinct replicas per key (paper: 3).
        virtual_nodes: Ring points per server; more points smooth the load
            distribution at the cost of a larger replica-group database.
    """

    def __init__(
        self,
        servers: Sequence[str],
        *,
        replication_factor: int = 3,
        virtual_nodes: int = 16,
    ) -> None:
        if replication_factor < 1:
            raise ConfigurationError("replication_factor must be >= 1")
        if virtual_nodes < 1:
            raise ConfigurationError("virtual_nodes must be >= 1")
        unique = list(dict.fromkeys(servers))
        if len(unique) != len(servers):
            raise ConfigurationError("duplicate server names in ring")
        if len(unique) < replication_factor:
            raise ConfigurationError(
                f"need at least {replication_factor} servers, got {len(unique)}"
            )
        self.servers: Tuple[str, ...] = tuple(unique)
        self.replication_factor = replication_factor
        self.virtual_nodes = virtual_nodes

        points: List[Tuple[int, str]] = []
        for server in self.servers:
            for v in range(virtual_nodes):
                points.append((stable_hash(f"{server}#{v}"), server))
        points.sort()
        self._hashes: List[int] = [h for h, _ in points]
        self._owners: List[str] = [s for _, s in points]
        self._groups: List[Tuple[str, ...]] = [
            self._walk_replicas(i) for i in range(len(points))
        ]
        # Key-lookup memo: the ring is frozen after construction and
        # group_for_key is a pure function of the key, so Zipf-skewed
        # workloads (hot keys repeat constantly) hit this cache instead of
        # re-hashing md5 per request.  Bounded to keep huge key spaces from
        # accumulating; clearing is deterministic, so results are unchanged.
        self._key_cache: Dict[int, Tuple[int, Tuple[str, ...]]] = {}

    _KEY_CACHE_LIMIT = 1 << 17

    def _walk_replicas(self, start: int) -> Tuple[str, ...]:
        """First ``replication_factor`` distinct servers clockwise of a point."""
        replicas: List[str] = []
        n = len(self._owners)
        index = start
        while len(replicas) < self.replication_factor:
            owner = self._owners[index % n]
            if owner not in replicas:
                replicas.append(owner)
            index += 1
            if index - start > n:  # pragma: no cover - guarded by ctor checks
                raise ConfigurationError("not enough distinct servers on ring")
        return tuple(replicas)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of ring segments (= number of RGIDs)."""
        return len(self._hashes)

    def group_for_key(self, key: int) -> Tuple[int, Tuple[str, ...]]:
        """Map a key to ``(rgid, replica servers)``."""
        hit = self._key_cache.get(key)
        if hit is not None:
            return hit
        point = stable_hash(f"key:{key}") % _HASH_SPACE
        index = bisect.bisect_left(self._hashes, point)
        if index == len(self._hashes):
            index = 0
        if len(self._key_cache) >= self._KEY_CACHE_LIMIT:
            self._key_cache.clear()
        result = (index, self._groups[index])
        self._key_cache[key] = result
        return result

    def replicas(self, rgid: int) -> Tuple[str, ...]:
        """Replica-group database lookup: RGID -> candidate servers."""
        try:
            return self._groups[rgid]
        except IndexError:
            raise ConfigurationError(f"unknown RGID {rgid}") from None

    def group_database(self) -> Dict[int, Tuple[str, ...]]:
        """Full RGID -> replicas mapping (what a selector would hold)."""
        return dict(enumerate(self._groups))

    def ownership_counts(self) -> Dict[str, int]:
        """Primary-ownership counts per server (for balance diagnostics)."""
        counts: Dict[str, int] = {server: 0 for server in self.servers}
        for group in self._groups:
            counts[group[0]] += 1
        return counts


_RING_MEMO: Dict[Tuple, ConsistentHashRing] = {}
_RING_MEMO_LIMIT = 8


def shared_ring(
    servers: Sequence[str],
    *,
    replication_factor: int = 3,
    virtual_nodes: int = 16,
) -> ConsistentHashRing:
    """Memoized :class:`ConsistentHashRing` for repeated identical topologies.

    The ring is frozen after construction and every lookup is a pure
    function of its arguments, so engines built over the same
    ``(servers, replication_factor, virtual_nodes)`` triple can share one
    instance.  Sweeps, best-of-N benchmarks and shard workers construct
    hundreds of engines over one topology; sharing skips the md5 point
    hashing per construction and keeps the key-lookup memo warm across
    runs.  Results are unchanged -- only the per-construction cost.
    """
    key = (tuple(servers), replication_factor, virtual_nodes)
    ring = _RING_MEMO.get(key)
    if ring is None:
        if len(_RING_MEMO) >= _RING_MEMO_LIMIT:
            _RING_MEMO.clear()
        ring = ConsistentHashRing(
            servers,
            replication_factor=replication_factor,
            virtual_nodes=virtual_nodes,
        )
        _RING_MEMO[key] = ring
    return ring
