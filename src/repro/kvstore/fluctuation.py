"""Server performance fluctuation (paper section V-A).

Server performance in shared clouds varies over time.  Following Schad et
al.'s measurements the paper models it as a **bimodal distribution**: in each
fluctuation interval (50 ms) the mean service time of a server is redrawn to
be either ``t_kv`` or ``t_kv / d`` with equal probability (range parameter
``d = 3``).  Each server fluctuates independently.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sim.core import Environment
from repro.sim.rng import DrawSource


class StableService:
    """Degenerate model: constant mean service time (ablation baseline)."""

    __slots__ = ("mean_service_time",)

    def __init__(self, mean_service_time: float) -> None:
        if mean_service_time <= 0:
            raise ConfigurationError("mean_service_time must be positive")
        self.mean_service_time = mean_service_time

    def start(self, env: Environment) -> None:
        """Nothing to schedule for a stable server."""

    @property
    def current_mean(self) -> float:
        """The (constant) mean service time."""
        return self.mean_service_time

    def expected_mean(self) -> float:
        """Long-run average of the mean service time."""
        return self.mean_service_time


class BimodalFluctuation:
    """Bimodal mean-service-time fluctuation with a fixed redraw interval."""

    __slots__ = (
        "base_service_time",
        "range_parameter",
        "interval",
        "_draws",
        "_current",
        "redraws",
    )

    def __init__(
        self,
        *,
        base_service_time: float,
        range_parameter: float = 3.0,
        interval: float = 50e-3,
        rng: DrawSource,
    ) -> None:
        if base_service_time <= 0:
            raise ConfigurationError("base_service_time must be positive")
        if range_parameter < 1:
            raise ConfigurationError("range parameter d must be >= 1")
        if interval <= 0:
            raise ConfigurationError("fluctuation interval must be positive")
        self.base_service_time = base_service_time
        self.range_parameter = range_parameter
        self.interval = interval
        self._draws = rng
        self._current = self._draw()
        self.redraws = 0

    def _draw(self) -> float:
        if self._draws.random() < 0.5:
            return self.base_service_time
        return self.base_service_time / self.range_parameter

    def start(self, env: Environment) -> None:
        """Begin the periodic redraw cycle."""
        env.call_in(self.interval, self._tick, env)

    def _tick(self, env: Environment) -> None:
        self._current = self._draw()
        self.redraws += 1
        env.call_in(self.interval, self._tick, env)

    @property
    def current_mean(self) -> float:
        """Mean service time in the current fluctuation interval."""
        return self._current

    def expected_mean(self) -> float:
        """Long-run average mean service time: ``(t + t/d) / 2``."""
        return 0.5 * (
            self.base_service_time + self.base_service_time / self.range_parameter
        )

    def expected_rate_utilization_factor(self) -> float:
        """The paper's ``2 / (1 + d)`` factor.

        Rate-averaged capacity under fluctuation: half the time the server
        drains at ``1/t``, half at ``d/t``, so nominal utilization ``rho``
        corresponds to effective utilization ``2 rho / (1 + d)``.
        """
        return 2.0 / (1.0 + self.range_parameter)
