"""Distributed key-value store substrate.

Models the Cassandra/Dynamo-style store the paper targets: data replicated
over ``Ns`` servers by consistent hashing (replication factor 3), servers
processing ``Np`` requests in parallel with exponentially distributed service
times whose mean fluctuates bimodally, and open-loop clients issuing
read requests with Zipfian key popularity.
"""

from repro.kvstore.client import CompletionTracker, KVClient, RedundancyPolicy
from repro.kvstore.fluctuation import BimodalFluctuation, StableService
from repro.kvstore.hashing import ConsistentHashRing
from repro.kvstore.membership import ChurnableRing, ChurnCoordinator
from repro.kvstore.server import KVServer
from repro.kvstore.workload import (
    DemandWeights,
    OpenLoopWorkload,
    ZipfSampler,
)

__all__ = [
    "BimodalFluctuation",
    "ChurnCoordinator",
    "ChurnableRing",
    "CompletionTracker",
    "ConsistentHashRing",
    "DemandWeights",
    "KVClient",
    "KVServer",
    "OpenLoopWorkload",
    "RedundancyPolicy",
    "StableService",
    "ZipfSampler",
]
