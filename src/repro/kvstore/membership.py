"""Membership churn on the hash ring: graceful join/leave plus key migration.

Churn here is *planned* rebalancing, not failure (docs/CONSISTENCY.md).  A
:class:`ChurnableRing` keeps every server's virtual points on the ring for
the whole run and toggles an **active set**: inactive owners are skipped
when walking replica groups, so the RGID universe (one ID per ring segment)
never changes and RGIDs stamped into in-flight NetRS requests stay
resolvable across membership changes.

The :class:`ChurnCoordinator` applies scheduled
:class:`~repro.faults.events.NodeJoin` / ``NodeLeave`` events (dispatched by
:class:`~repro.faults.injector.FaultInjector`), diffs replica-group
ownership before/after each change, and ships the affected key ranges as
``is_migration`` packets through the real fabric -- background transfer
traffic that competes with foreground requests for links, exactly like a
rebalance would.  Everything is deterministic: donors iterate their version
stores in write-application order and no RNG streams are involved.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.faults.events import NodeJoin, NodeLeave
from repro.kvstore.hashing import ConsistentHashRing
from repro.network.packet import MAGIC_PLAIN, Packet

#: Keys per migration packet.  Chunking keeps individual transfer packets
#: bounded (a whole key range in one jumbo frame would under-model the
#: fabric cost) without flooding the event queue with per-key packets.
MIGRATION_CHUNK_KEYS = 64


class ChurnableRing(ConsistentHashRing):
    """A consistent-hash ring whose membership can change mid-run.

    The virtual-point universe is fixed at construction over *all* servers;
    :meth:`activate` / :meth:`deactivate` toggle which owners count when
    walking replica groups.  With every server active the ring is
    positionally identical to a frozen :class:`ConsistentHashRing` over the
    same arguments -- static-membership runs are unaffected by the subclass.

    Mutable by design, so never memoized via ``shared_ring``.
    """

    def __init__(
        self,
        servers: Sequence[str],
        *,
        replication_factor: int = 3,
        virtual_nodes: int = 16,
    ) -> None:
        # Set before super().__init__ -- the base constructor walks replica
        # groups, which consults the active set.
        self._active = set(dict.fromkeys(servers))
        super().__init__(
            servers,
            replication_factor=replication_factor,
            virtual_nodes=virtual_nodes,
        )

    def _walk_replicas(self, start: int) -> Tuple[str, ...]:
        """First ``replication_factor`` distinct *active* servers clockwise."""
        replicas: List[str] = []
        n = len(self._owners)
        index = start
        while len(replicas) < self.replication_factor:
            owner = self._owners[index % n]
            if owner in self._active and owner not in replicas:
                replicas.append(owner)
            index += 1
            if index - start > n:
                raise ConfigurationError(
                    "not enough active servers on ring to form replica "
                    f"groups of {self.replication_factor}"
                )
        return tuple(replicas)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    @property
    def active_servers(self) -> Tuple[str, ...]:
        """Currently active servers, in ring-universe order."""
        return tuple(s for s in self.servers if s in self._active)

    def is_active(self, server: str) -> bool:
        return server in self._active

    def group_snapshot(self) -> List[Tuple[str, ...]]:
        """Copy of the current RGID -> replicas table (for ownership diffs)."""
        return list(self._groups)

    def activate(self, server: str) -> None:
        """Admit ``server``; recomputes every replica group."""
        self._require_member(server)
        if server in self._active:
            raise ConfigurationError(f"{server} is already active on the ring")
        self._active.add(server)
        self._rebuild()

    def deactivate(self, server: str) -> None:
        """Retire ``server``; recomputes every replica group."""
        self._require_member(server)
        if server not in self._active:
            raise ConfigurationError(f"{server} is not active on the ring")
        if len(self._active) - 1 < self.replication_factor:
            raise ConfigurationError(
                f"removing {server} would leave "
                f"{len(self._active) - 1} active servers, fewer than "
                f"replication_factor={self.replication_factor}"
            )
        self._active.discard(server)
        self._rebuild()

    def _require_member(self, server: str) -> None:
        if server not in self.servers:
            raise ConfigurationError(
                f"{server} is not part of the ring universe"
            )

    def _rebuild(self) -> None:
        self._groups = [self._walk_replicas(i) for i in range(len(self._hashes))]
        # Cached (rgid, group) pairs embed the old groups; the rgid half of
        # each entry is membership-independent but the memo stores both.
        self._key_cache.clear()


class ChurnCoordinator:
    """Applies churn events to a :class:`ChurnableRing` and migrates keys.

    On each membership change the coordinator diffs replica-group ownership
    and, for every RGID that gained members, picks a **donor** -- the first
    member of the *old* group whose server is not crashed (a leaver can
    donate: it is retired from the ring, not down).  Each donor makes one
    pass over its version store, buckets entries by receiver, and ships
    them as chunked ``is_migration`` packets via its host, so rebalance
    traffic traverses the fabric and is charged to the run's byte counters.

    Transfers are fire-and-forget version metadata: receivers fold chunks
    LWW (:meth:`KVServer._install_migration`), so migration commutes with
    concurrent writes and duplicate delivery is harmless.
    """

    __slots__ = (
        "env",
        "ring",
        "servers",
        "value_size",
        "chunk_keys",
        "joins",
        "leaves",
        "migrated_keys",
        "migration_bytes",
        "migration_transfers",
        "migration_unserved_groups",
    )

    def __init__(
        self,
        env,
        ring: ChurnableRing,
        servers: Dict[str, object],
        *,
        value_size: int,
        chunk_keys: int = MIGRATION_CHUNK_KEYS,
    ) -> None:
        if chunk_keys < 1:
            raise ConfigurationError("chunk_keys must be >= 1")
        self.env = env
        self.ring = ring
        self.servers = servers
        self.value_size = value_size
        self.chunk_keys = chunk_keys
        self.joins = 0
        self.leaves = 0
        self.migrated_keys = 0
        self.migration_bytes = 0
        self.migration_transfers = 0
        # RGIDs whose entire old group was crashed when ownership moved:
        # nobody could donate, the new owners start cold.
        self.migration_unserved_groups = 0

    @property
    def churn_applied(self) -> int:
        return self.joins + self.leaves

    # ------------------------------------------------------------------
    # Static validation
    # ------------------------------------------------------------------
    def preflight(self, events: Iterable) -> None:
        """Reject impossible churn sequences before the run starts.

        Simulates the active set through the resolved event sequence:
        leaves must target active servers, joins inactive ones, and the
        active count may never drop below the replication factor.  Called
        by :class:`~repro.faults.injector.FaultInjector` at build time so
        bad schedules fail at config time, not mid-run.
        """
        active = set(self.ring.active_servers)
        for event in events:
            name = event.server
            if name not in self.ring.servers:
                raise ConfigurationError(
                    f"churn target {name!r} is not part of the ring universe"
                )
            if isinstance(event, NodeLeave):
                if name not in active:
                    raise ConfigurationError(
                        f"node-leave@{event.at:g} targets {name}, which is "
                        "not active at that point in the churn schedule"
                    )
                active.discard(name)
                if len(active) < self.ring.replication_factor:
                    raise ConfigurationError(
                        f"node-leave@{event.at:g}:{name} would leave "
                        f"{len(active)} active servers, fewer than "
                        f"replication_factor={self.ring.replication_factor}"
                    )
            elif isinstance(event, NodeJoin):
                if name in active:
                    raise ConfigurationError(
                        f"node-join@{event.at:g} targets {name}, which is "
                        "already active at that point in the churn schedule"
                    )
                active.add(name)
            else:  # pragma: no cover - injector filters to churn events
                raise ConfigurationError(
                    f"unexpected churn event {type(event).__name__}"
                )

    # ------------------------------------------------------------------
    # Event application (called by FaultInjector at scheduled times)
    # ------------------------------------------------------------------
    def leave(self, server: str) -> None:
        """Retire ``server`` and migrate its key ranges to the new owners."""
        before = self.ring.group_snapshot()
        self.ring.deactivate(server)
        self.leaves += 1
        self._migrate(before)

    def join(self, server: str) -> None:
        """Admit ``server``; previous owners stream its new ranges to it."""
        before = self.ring.group_snapshot()
        self.ring.activate(server)
        self.joins += 1
        self._migrate(before)

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------
    def _migrate(self, before: List[Tuple[str, ...]]) -> None:
        """Diff ownership against ``before`` and ship gained key ranges."""
        after = self.ring.group_snapshot()
        # donor -> rgid -> receivers.  Built in RGID order, so iteration
        # (and therefore packet emission) is deterministic.
        donor_tasks: Dict[str, Dict[int, Tuple[str, ...]]] = {}
        for rgid, (old_group, new_group) in enumerate(zip(before, after)):
            gained = tuple(s for s in new_group if s not in old_group)
            if not gained:
                continue
            donor = next(
                (s for s in old_group if not self.servers[s].down), None
            )
            if donor is None:
                self.migration_unserved_groups += 1
                continue
            donor_tasks.setdefault(donor, {})[rgid] = gained
        for donor, tasks in donor_tasks.items():
            self._donate(donor, tasks)

    def _donate(self, donor: str, tasks: Dict[int, Tuple[str, ...]]) -> None:
        """One pass over the donor's version store; bucket and ship chunks."""
        donor_server = self.servers[donor]
        buckets: Dict[str, List[Tuple[int, float, int]]] = {}
        for key, (version_ts, version_id) in donor_server.version_items():
            # A key's ring segment (RGID) depends only on the key's hash
            # point, never on membership, so the lookup stays valid across
            # the change that triggered this migration.
            rgid = self.ring.group_for_key(key)[0]
            receivers = tasks.get(rgid)
            if receivers is None:
                continue
            for receiver in receivers:
                buckets.setdefault(receiver, []).append(
                    (key, version_ts, version_id)
                )
        for receiver, entries in buckets.items():
            for start in range(0, len(entries), self.chunk_keys):
                chunk = tuple(entries[start : start + self.chunk_keys])
                self._ship(donor_server, receiver, chunk)

    def _ship(
        self,
        donor_server,
        receiver: str,
        chunk: Tuple[Tuple[int, float, int], ...],
    ) -> None:
        packet = Packet(
            src=donor_server.name,
            dst=receiver,
            magic=MAGIC_PLAIN,
            request_id=0,
            value_size=len(chunk) * self.value_size,
            client=donor_server.name,
            server=receiver,
            issued_at=self.env.now,
            is_migration=True,
            migration_entries=chunk,
        )
        self.migration_transfers += 1
        self.migrated_keys += len(chunk)
        self.migration_bytes += packet.value_size
        donor_server.host.send(packet)
