"""Workload generation: Zipfian keys, demand skew, open-loop Poisson arrivals.

The paper's workload (section V-A): an **open-loop** aggregate Poisson
arrival process (approximating web-application request arrivals), keys drawn
from a Zipfian distribution (parameter 0.99 over 100 million keys), and an
optional *demand skew* where a given percentage of requests is issued by 20 %
of the clients.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Callable, List, Optional, Protocol, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.core import Environment
from repro.sim.rng import DrawSource


class ZipfSampler:
    """Bounded Zipf(s, N) sampler via rejection-inversion (Hoermann & Derflinger).

    Draws from ``P(k) ~ k^-s`` for ``k in {1..n}`` in O(1) expected time with
    no O(n) table, which matters for the paper's 100-million-key space.
    """

    __slots__ = ("n", "s", "_draws", "_h_x1", "_h_n", "_threshold")

    def __init__(self, n: int, s: float, rng: DrawSource) -> None:
        if n < 1:
            raise ConfigurationError(f"key space must be >= 1, got {n}")
        if s <= 0:
            raise ConfigurationError(f"Zipf exponent must be positive, got {s}")
        self.n = n
        self.s = s
        self._draws = rng
        self._h_x1 = self._h_integral(1.5) - 1.0
        self._h_n = self._h_integral(n + 0.5)
        self._threshold = 2.0 - self._h_integral_inverse(
            self._h_integral(2.5) - self._h(2.0)
        )

    def _h_integral(self, x: float) -> float:
        log_x = math.log(x)
        return _helper2((1.0 - self.s) * log_x) * log_x

    def _h(self, x: float) -> float:
        return math.exp(-self.s * math.log(x))

    def _h_integral_inverse(self, x: float) -> float:
        t = x * (1.0 - self.s)
        if t < -1.0:
            t = -1.0  # numerical guard near the distribution head
        return math.exp(_helper1(t) * x)

    def sample(self) -> int:
        """Draw one key in ``{1..n}``."""
        while True:
            u = self._h_n + self._draws.random() * (self._h_x1 - self._h_n)
            x = self._h_integral_inverse(u)
            k = int(x + 0.5)
            if k < 1:
                k = 1
            elif k > self.n:
                k = self.n
            if k - x <= self._threshold or u >= self._h_integral(k + 0.5) - self._h(k):
                return k


def _helper1(x: float) -> float:
    """``log1p(x) / x`` with a stable expansion near zero."""
    if abs(x) > 1e-8:
        return math.log1p(x) / x
    return 1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))


def _helper2(x: float) -> float:
    """``expm1(x) / x`` with a stable expansion near zero."""
    if abs(x) > 1e-8:
        return math.expm1(x) / x
    return 1.0 + x * 0.5 * (1.0 + x / 3.0 * (1.0 + 0.25 * x))


class DemandWeights:
    """Per-client request probabilities, optionally skewed.

    ``skew`` is the paper's demand-skew metric: the fraction of all requests
    issued by ``hot_fraction`` (default 20 %) of the clients.  ``skew=None``
    means uniform demand.  Which clients are hot is drawn from ``rng``.
    """

    __slots__ = (
        "n_clients",
        "skew",
        "hot_fraction",
        "hot_clients",
        "probabilities",
        "_cumulative",
        "_cumulative_list",
    )

    def __init__(
        self,
        n_clients: int,
        *,
        skew: Optional[float] = None,
        hot_fraction: float = 0.2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if n_clients < 1:
            raise ConfigurationError("need at least one client")
        if skew is not None:
            if not 0.0 < skew < 1.0:
                raise ConfigurationError(f"skew must be in (0, 1), got {skew}")
            if not 0.0 < hot_fraction < 1.0:
                raise ConfigurationError(
                    f"hot_fraction must be in (0, 1), got {hot_fraction}"
                )
            if rng is None:
                raise ConfigurationError("skewed demand requires an rng")
        self.n_clients = n_clients
        self.skew = skew
        self.hot_fraction = hot_fraction
        self.hot_clients: List[int] = []

        weights = np.full(n_clients, 1.0 / n_clients)
        if skew is not None:
            n_hot = max(1, round(hot_fraction * n_clients))
            if n_hot >= n_clients:
                raise ConfigurationError("hot_fraction leaves no cold clients")
            hot = rng.choice(n_clients, size=n_hot, replace=False)
            self.hot_clients = sorted(int(i) for i in hot)
            weights = np.full(n_clients, (1.0 - skew) / (n_clients - n_hot))
            weights[self.hot_clients] = skew / n_hot
        self.probabilities = weights
        self._cumulative = np.cumsum(weights)
        # Guard against floating-point drift in the final bin.
        self._cumulative[-1] = 1.0
        # Python-float copy for bisect: same values, no per-sample ufunc
        # dispatch (bisect_right == np.searchsorted(..., side="right")).
        self._cumulative_list = self._cumulative.tolist()

    def sample(self, rng: np.random.Generator) -> int:
        """Draw one client index according to the demand distribution.

        ``rng`` is the caller's stream: the open-loop driver interleaves
        this uniform draw with its exponential gaps on one generator, which
        is exactly the mixed-family pattern BatchedStream cannot serve.
        """
        return bisect_right(self._cumulative_list, rng.random())  # repro: noqa(PERF001) - mixed-family arrival stream must stay scalar

    def achieved_skew(self, counts: Sequence[int]) -> float:
        """Fraction of requests issued by the hot clients in ``counts``."""
        total = sum(counts)
        if total == 0:
            return math.nan
        hot = self.hot_clients or range(0)
        return sum(counts[i] for i in hot) / total


class RequestSink(Protocol):
    """What the workload drives: a client that can issue a keyed request."""

    def issue(self, key: int, record: bool) -> None:
        """Issue one read request for ``key``."""
        ...  # pragma: no cover - protocol definition

    def issue_write(self, key: int, record: bool) -> None:
        """Issue one replicated write for ``key`` (mixed workloads only)."""
        ...  # pragma: no cover - protocol definition


class OpenLoopWorkload:
    """Aggregate Poisson arrivals fanned out to clients by demand weight.

    The arrival stream interleaves three distribution families on one
    generator (exponential gaps, the uniform weight pick, the uniform
    write-fraction check), so it must stay on a raw scalar generator: a
    :class:`~repro.sim.rng.BatchedStream` would consume the bitstream in a
    different order and change every downstream draw.
    """

    __slots__ = (
        "env",
        "rate",
        "clients",
        "weights",
        "key_sampler",
        "_rng",
        "total_requests",
        "warmup_requests",
        "write_fraction",
        "on_finished",
        "issued",
        "writes_issued",
        "per_client_counts",
    )

    def __init__(
        self,
        env: Environment,
        *,
        rate: float,
        clients: Sequence[RequestSink],
        weights: DemandWeights,
        key_sampler: ZipfSampler,
        rng: np.random.Generator,
        total_requests: int,
        warmup_requests: int = 0,
        write_fraction: float = 0.0,
        on_finished: Optional[Callable[[], None]] = None,
    ) -> None:
        if rate <= 0:
            raise ConfigurationError(f"arrival rate must be positive, got {rate}")
        if not 0 <= write_fraction < 1:
            raise ConfigurationError("write_fraction must be in [0, 1)")
        if total_requests < 1:
            raise ConfigurationError("total_requests must be >= 1")
        if not 0 <= warmup_requests < total_requests:
            raise ConfigurationError(
                "warmup_requests must be in [0, total_requests)"
            )
        if weights.n_clients != len(clients):
            raise ConfigurationError(
                f"weights cover {weights.n_clients} clients, got {len(clients)}"
            )
        self.env = env
        self.rate = rate
        self.clients = list(clients)
        self.weights = weights
        self.key_sampler = key_sampler
        self._rng = rng
        self.total_requests = total_requests
        self.warmup_requests = warmup_requests
        self.write_fraction = write_fraction
        self.on_finished = on_finished
        self.issued = 0
        self.writes_issued = 0
        self.per_client_counts = [0] * len(clients)

    def start(self) -> None:
        """Schedule the first arrival."""
        self.env.call_in(self._rng.exponential(1.0 / self.rate), self._arrival)  # repro: noqa(PERF001) - mixed-family stream, see class docstring

    def _arrival(self) -> None:
        index = self.weights.sample(self._rng)
        key = self.key_sampler.sample()
        record = self.issued >= self.warmup_requests
        self.per_client_counts[index] += 1
        self.issued += 1
        if self.write_fraction and self._rng.random() < self.write_fraction:  # repro: noqa(PERF001) - mixed-family stream, see class docstring
            self.writes_issued += 1
            self.clients[index].issue_write(key, record=record)
        else:
            self.clients[index].issue(key, record=record)
        if self.issued < self.total_requests:
            self.env.call_in(self._rng.exponential(1.0 / self.rate), self._arrival)  # repro: noqa(PERF001) - mixed-family stream, see class docstring
        elif self.on_finished is not None:
            self.on_finished()


class ClosedLoopWorkload:
    """Closed-loop driver: each client keeps ``window`` requests in flight.

    This is the workload style of C3's own evaluation: a client issues the
    next request when one completes, optionally after a think time, so the
    offered load self-regulates with system speed.  The paper's NetRS
    evaluation uses the open-loop model instead; this driver exists for
    cross-checking behaviour under both (see DESIGN.md's ablations).

    Clients must expose an ``on_complete`` hook (see
    :class:`~repro.kvstore.client.KVClient`).
    """

    __slots__ = (
        "env",
        "clients",
        "key_sampler",
        "_draws",
        "total_requests",
        "window",
        "think_time",
        "warmup_requests",
        "on_finished",
        "issued",
        "per_client_counts",
        "_index_of",
    )

    def __init__(
        self,
        env: Environment,
        *,
        clients: Sequence["RequestSink"],
        key_sampler: ZipfSampler,
        rng: DrawSource,
        total_requests: int,
        window: int = 1,
        think_time: float = 0.0,
        warmup_requests: int = 0,
        on_finished: Optional[Callable[[], None]] = None,
    ) -> None:
        if not clients:
            raise ConfigurationError("need at least one client")
        if total_requests < 1:
            raise ConfigurationError("total_requests must be >= 1")
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        if think_time < 0:
            raise ConfigurationError("think_time must be non-negative")
        if not 0 <= warmup_requests < total_requests:
            raise ConfigurationError(
                "warmup_requests must be in [0, total_requests)"
            )
        self.env = env
        self.clients = list(clients)
        self.key_sampler = key_sampler
        self._draws = rng
        self.total_requests = total_requests
        self.window = window
        self.think_time = think_time
        self.warmup_requests = warmup_requests
        self.on_finished = on_finished
        self.issued = 0
        self.per_client_counts = [0] * len(clients)
        self._index_of = {id(c): i for i, c in enumerate(self.clients)}

    def start(self) -> None:
        """Prime every client with ``window`` outstanding requests."""
        for client in self.clients:
            client.on_complete = self._on_complete  # type: ignore[attr-defined]
        for client in self.clients:
            for _ in range(self.window):
                if not self._issue_on(client):
                    return

    def _issue_on(self, client) -> bool:
        if self.issued >= self.total_requests:
            return False
        key = self.key_sampler.sample()
        record = self.issued >= self.warmup_requests
        self.per_client_counts[self._index_of[id(client)]] += 1
        self.issued += 1
        client.issue(key, record=record)
        if self.issued == self.total_requests and self.on_finished is not None:
            self.on_finished()
        return True

    def _on_complete(self, client) -> None:
        if self.issued >= self.total_requests:
            return
        if self.think_time > 0:
            # Exponential think time keeps clients desynchronized.  The
            # timer is never cancelled, so the handle-free post_in suffices.
            delay = self._draws.exponential(self.think_time)
            self.env.post_in(delay, self._issue_on, (client,))
        else:
            self._issue_on(client)
