"""Declared kernel mirror contracts (checked by ``netrs contracts``).

The compiled numba/cython kernels mirror their pure-Python reference loops
operation for operation -- float arithmetic is evaluation-order sensitive,
so "equivalent math" is not enough (see :mod:`repro.sim.backend`).  The
pairing itself lives in :data:`repro.sim.backend.KERNEL_MIRRORS`, next to
the registry that dispatches to the kernels; this module turns it into
CON001 contracts:

* ``chained_arrival`` and ``count_undone_hops`` are compared body-for-body
  between the numba and cython implementations (annotations and typed
  loop-variable declarations are normalization noise; ``len(x)`` vs
  ``x.shape[0]`` is a declared rewrite).
* ``c3_select`` cannot be compared body-for-body -- numba inlines the
  scoring while cython extracts a ``_score`` cfunc -- so the surrounding
  min-scan is paired with the scoring statements declared equivalent, and
  the cubic formula itself is pinned by an :class:`ExprAnchor` that must
  appear, normalized, in all four sites: ``C3Selector.score``, the scalar
  loop in ``C3Selector.select``, the numba kernel and the cython cfunc.
"""

from __future__ import annotations

from repro.lint.contracts import (
    AnchorSite,
    ContractRegistry,
    ExprAnchor,
    MirrorPair,
    Site,
)
from repro.sim.backend import KERNEL_MIRRORS


def _site(kernel: str, impl: str) -> Site:
    path, qualname = KERNEL_MIRRORS[kernel][impl].split(":")
    return Site(path, qualname)


MIRROR_PAIRS = (
    MirrorPair(
        name="kernel.chained_arrival",
        reference=_site("chained_arrival", "numba"),
        mirror=_site("chained_arrival", "cython"),
        # cython's typed loop variable vs numba's throwaway underscore.
        mirror_renames=(("i", "_"),),
    ),
    MirrorPair(
        name="kernel.count_undone_hops",
        reference=_site("count_undone_hops", "numba"),
        mirror=_site("count_undone_hops", "cython"),
        mirror_renames=(
            ("len(bases)", "bases.shape[0]"),
            ("int(hops[j])", "hops[j]"),
        ),
    ),
    MirrorPair(
        name="kernel.path_chain",
        reference=_site("path_chain", "numba"),
        mirror=_site("path_chain", "cython"),
        mirror_renames=(
            ("len(times)", "times.shape[0]"),
            ("len(hops)", "hops.shape[0]"),
        ),
    ),
    MirrorPair(
        name="kernel.hop_class_batch",
        reference=_site("hop_class_batch", "numba"),
        mirror=_site("hop_class_batch", "cython"),
        mirror_renames=(("len(client_rack)", "client_rack.shape[0]"),),
    ),
    MirrorPair(
        name="kernel.c3_select",
        reference=_site("c3_select", "numba"),
        mirror=_site("c3_select", "cython"),
        mirror_renames=(("len(service_rate)", "service_rate.shape[0]"),),
        # Both initialize best_score to +inf, spelled np.inf vs
        # float('inf') and ordered differently relative to ``ties = 0``
        # (independent assignments).
        drop_reference=(
            "best_score = np.inf",
            "rate = service_rate[i]",
            "if not rate > 0.0: ...",
            "expected_service = 1.0 / rate",
            "q_hat = 1.0 + outstanding[i] * weight + queue_size[i]",
        ),
        drop_mirror=("best_score = float('inf')",),
        equivalences=(
            (
                "score = response_time[i] - expected_service "
                "+ q_hat ** exponent * expected_service",
                "score = _score(service_rate[i], outstanding[i], queue_size[i], "
                "response_time[i], prior, weight, exponent)",
            ),
        ),
    ),
)

#: The C3 cubic scoring formula, pinned at every site that spells it out.
#: The dropped statements above mean the kernel pair alone would not catch
#: a drifted formula; this anchor does, in all four implementations.
EXPR_ANCHORS = (
    ExprAnchor(
        name="c3-cubic-score",
        expr="resp - expected_service + q_hat ** exponent * expected_service",
        sites=(
            AnchorSite(
                Site("src/repro/selection/c3.py", "C3Selector.score"),
                renames=(
                    ("track.response_time", "resp"),
                    ("self.cubic_exponent", "exponent"),
                ),
            ),
            AnchorSite(
                Site("src/repro/selection/c3.py", "C3Selector.select"),
                renames=(("track.response_time", "resp"),),
            ),
            AnchorSite(
                _site("c3_select", "numba"),
                renames=(("response_time[i]", "resp"),),
            ),
            AnchorSite(_site("c3_select", "cython_score")),
        ),
    ),
)

CONTRACTS = ContractRegistry(
    mirror_pairs=list(MIRROR_PAIRS),
    expr_anchors=list(EXPR_ANCHORS),
)
