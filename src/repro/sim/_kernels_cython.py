"""Cython kernels for the event core (see :mod:`repro.sim.backend`).

Same three entry points as :mod:`repro.sim._kernels_numba`, written in
Cython *pure-Python mode*: the module runs as-is under CPython (typed via
``cython`` decorators that are no-ops when interpreted) and compiles to C
with ``cythonize -i src/repro/sim/_kernels_cython.py`` for the actual
speedup.  Importing it requires the ``cython`` package so that
``engine_backend="cython"`` never silently resolves to an untyped module
masquerading as a compiled one -- :func:`repro.sim.backend.resolve` treats
Cython's presence as this backend's availability, and the bench metadata
records whether the module was actually compiled.

Every loop mirrors its pure-Python reference operation for operation; see
the numba module's docstring for the pairing table and the byte-identity
contract.  The pairing is registered in
:data:`repro.sim.backend.KERNEL_MIRRORS` and enforced statically by
``netrs contracts`` (rule CON001, declarations in ``repro.sim.contracts``).
"""

from __future__ import annotations

import cython  # ImportError here means: use engine_backend="python"

#: True when the module was cythonized; interpreted pure-Python mode is
#: correctness-equivalent but has no performance story.
COMPILED = cython.compiled


@cython.cfunc
def _score(
    rate: cython.double,
    out: cython.double,
    queue: cython.double,
    resp: cython.double,
    prior: cython.double,
    weight: cython.double,
    exponent: cython.double,
) -> cython.double:
    if not rate > 0.0:
        rate = prior
    expected_service: cython.double = 1.0 / rate
    q_hat: cython.double = 1.0 + out * weight + queue
    return resp - expected_service + q_hat**exponent * expected_service


def c3_select(service_rate, outstanding, queue_size, response_time,
              prior, weight, exponent):
    """Single-pass C3 minimum; returns ``(best_index, tie_count)``."""
    best: cython.Py_ssize_t = -1
    ties: cython.Py_ssize_t = 0
    best_score: cython.double = float("inf")
    i: cython.Py_ssize_t
    for i in range(len(service_rate)):
        score = _score(
            service_rate[i], outstanding[i], queue_size[i],
            response_time[i], prior, weight, exponent,
        )
        if score < best_score:
            best = i
            best_score = score
            ties = 1
        elif score == best_score:
            ties += 1
    return best, ties


def chained_arrival(base, delay, hops):
    """Delivery time of a trunk: ``hops`` chained float additions (ulp-exact)."""
    when: cython.double = base
    i: cython.Py_ssize_t
    for i in range(hops):
        when += delay
    return when


def count_undone_hops(bases, delays, hops, stop_time, undone):
    """Per pending trunk: chained hop events landing at/after the stop."""
    total: cython.Py_ssize_t = 0
    j: cython.Py_ssize_t
    for j in range(len(bases)):
        t: cython.double = bases[j]
        delay: cython.double = delays[j]
        count: cython.Py_ssize_t = 0
        for _ in range(1, int(hops[j])):
            t += delay
            if t >= stop_time:
                count += 1
        undone[j] = count
        total += count
    return total


def path_chain(times, hops, out):
    """Chained per-hop accumulation over a block of start times (ulp-exact).

    Per element this is the scalar hop chain ``t += delay`` in hop order,
    matching the numpy reference's element-wise per-hop additions bit for
    bit.
    """
    i: cython.Py_ssize_t
    j: cython.Py_ssize_t
    for i in range(len(times)):
        t: cython.double = times[i]
        for j in range(len(hops)):
            t += hops[j]
        out[i] = t
    return out


def hop_class_batch(client_rack, client_pod, replica_rack, replica_pod, out):
    """Locality class (0=same rack, 1=same pod, 2=cross-pod) per cell."""
    i: cython.Py_ssize_t
    j: cython.Py_ssize_t
    for i in range(len(client_rack)):
        rack: cython.long = client_rack[i]
        pod: cython.long = client_pod[i]
        for j in range(replica_rack.shape[1]):
            if replica_rack[i, j] == rack:
                out[i, j] = 0
            elif replica_pod[i, j] == pod:
                out[i, j] = 1
            else:
                out[i, j] = 2
    return out
