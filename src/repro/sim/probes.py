"""Measurement helpers: counters, streaming stats, latency percentiles.

These are plain data collectors -- they never schedule anything, so attaching
probes cannot change simulation behaviour.
"""

from __future__ import annotations

import math
from array import array
from bisect import insort
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np


class Counter:
    """A named bag of integer counters."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def increment(self, key: str, amount: int = 1) -> None:
        """Add ``amount`` to the counter ``key`` (created at 0)."""
        self._counts[key] = self._counts.get(key, 0) + amount

    def get(self, key: str) -> int:
        """Current value of ``key`` (0 if never incremented)."""
        return self._counts.get(key, 0)

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of all counters."""
        return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self._counts!r})"


class WelfordStats:
    """Streaming mean / variance / min / max without storing samples."""

    __slots__ = ("count", "_mean", "_m2", "_min", "_max")

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Fold one sample into the running statistics."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def mean(self) -> float:
        """Sample mean (NaN when empty)."""
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance (NaN for fewer than 2 samples)."""
        return self._m2 / (self.count - 1) if self.count > 1 else math.nan

    @property
    def stddev(self) -> float:
        """Unbiased sample standard deviation."""
        variance = self.variance
        return math.sqrt(variance) if not math.isnan(variance) else math.nan

    @property
    def minimum(self) -> float:
        """Smallest sample seen (NaN when empty)."""
        return self._min if self.count else math.nan

    @property
    def maximum(self) -> float:
        """Largest sample seen (NaN when empty)."""
        return self._max if self.count else math.nan


class LatencyRecorder:
    """Stores every latency sample and computes exact percentiles.

    The NetRS evaluation reports Avg / 95th / 99th / 99.9th percentiles, and
    99.9th of a few ten-thousand samples needs the exact empirical quantile,
    so we keep all samples (floats are cheap at this scale) rather than a
    sketch.
    """

    __slots__ = ("_samples", "_sorted", "_mean_cache")

    def __init__(self) -> None:
        self._samples: List[float] = []
        # Sorted mirror of _samples, built on first query and then kept
        # sorted incrementally (insort is one C-level memmove): the R95
        # issue path queries the mean/percentile after nearly every add,
        # and re-sorting per query is quadratic in run length.
        self._sorted: array | None = None
        # (sample count, mean) of the last mean() call: repeated queries
        # between adds (the R95 warmup issues faster than it completes)
        # return the identical float without re-reducing.
        self._mean_cache: Tuple[int, float] | None = None

    def add(self, latency: float) -> None:
        """Record one latency sample, in seconds."""
        if latency < 0:
            raise ValueError(f"negative latency: {latency}")
        self._samples.append(latency)
        if self._sorted is not None:
            insort(self._sorted, latency)

    def extend(self, latencies: Iterable[float]) -> None:
        """Record many samples at once."""
        for value in latencies:
            self.add(value)

    def extend_array(self, latencies: np.ndarray) -> None:
        """Record a vectorized block of samples (numpy float array).

        Used by batched producers (mesoscale flow completions, backend
        kernels) to fold a whole block in two O(n) operations instead of
        n scalar ``add`` calls.
        """
        if len(latencies) == 0:
            return
        if float(latencies.min()) < 0:
            raise ValueError("negative latency in block")
        self._samples += latencies.tolist()
        self._sorted = None  # bulk append: cheaper to re-sort on next query

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> Sequence[float]:
        """Read-only view of the raw samples (insertion order)."""
        return tuple(self._samples)

    def _ensure_sorted(self) -> np.ndarray:
        if self._sorted is None:
            self._sorted = array("d", sorted(self._samples))
        # Zero-copy float64 view over the sorted mirror; numpy reductions
        # over it are bit-identical to the former sort-per-query arrays.
        return np.frombuffer(self._sorted, dtype=np.float64)

    def mean(self) -> float:
        """Arithmetic mean (NaN when empty)."""
        count = len(self._samples)
        if not count:
            return math.nan
        cache = self._mean_cache
        if cache is not None and cache[0] == count:
            return cache[1]
        # np.add.reduce is the exact pairwise reduction ndarray.mean()
        # dispatches to internally; calling it directly (and dividing by
        # the known count) skips the _methods._mean wrapper while keeping
        # the bits identical.  This sits on the R95 issue path.
        value = float(np.add.reduce(self._ensure_sorted()) / count)
        self._mean_cache = (count, value)
        return value

    def percentile(self, q: float) -> float:
        """Empirical ``q``-th percentile, ``0 <= q <= 100`` (NaN when empty).

        Computes numpy's default ``linear`` quantile directly on the sorted
        mirror: virtual index ``(n - 1) * q/100``, then the two-sided lerp
        ``_quantile`` uses (``b - diff * (1 - g)`` when ``g >= 0.5``).  The
        scalar arithmetic is the same operation order numpy performs, so
        values are bit-equal to ``np.percentile`` while skipping its array
        machinery -- this sits on the R95 threshold-refresh path.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile out of range: {q}")
        count = len(self._samples)
        if not count:
            return math.nan
        mirror = self._sorted
        if mirror is None:
            mirror = self._sorted = array("d", sorted(self._samples))
        virtual = (count - 1) * (q / 100.0)
        previous = int(virtual)
        if previous > count - 1:
            previous = count - 1
        following = previous + 1
        if following > count - 1:
            following = count - 1
        gamma = virtual - previous
        # array('d') stores C doubles, so indexing yields the identical
        # float64 value the numpy view would -- without materialising it.
        low = mirror[previous]
        high = mirror[following]
        diff = high - low
        if gamma >= 0.5:
            return high - diff * (1.0 - gamma)
        return low + diff * gamma

    def summary(self) -> Dict[str, float]:
        """The four paper metrics: mean, p95, p99, p999 (seconds).

        One vectorized ``np.percentile`` call over the cached sorted array;
        the values are exactly those of per-quantile calls.
        """
        if not self._samples:
            return {
                "mean": math.nan,
                "p95": math.nan,
                "p99": math.nan,
                "p999": math.nan,
            }
        data = self._ensure_sorted()
        p95, p99, p999 = np.percentile(data, (95.0, 99.0, 99.9))
        return {
            "mean": float(data.mean()),
            "p95": float(p95),
            "p99": float(p99),
            "p999": float(p999),
        }


class TimeSeries:
    """Append-only ``(time, value)`` sequence, e.g. queue length over time."""

    __slots__ = ("_times", "_values")

    def __init__(self) -> None:
        self._times: List[float] = []
        self._values: List[float] = []

    def record(self, time: float, value: float) -> None:
        """Append one observation; times must be non-decreasing."""
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"time went backwards: {time} < {self._times[-1]}"
            )
        self._times.append(time)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._times)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(times, values)`` numpy arrays."""
        return np.asarray(self._times), np.asarray(self._values)

    def time_average(self, until: float) -> float:
        """Time-weighted average of the step function up to ``until``."""
        if not self._times:
            return math.nan
        if until < self._times[0]:
            raise ValueError("until precedes the first observation")
        total = 0.0
        for i, start in enumerate(self._times):
            end = self._times[i + 1] if i + 1 < len(self._times) else until
            end = min(end, until)
            if end > start:
                total += self._values[i] * (end - start)
        span = until - self._times[0]
        return total / span if span > 0 else self._values[0]
