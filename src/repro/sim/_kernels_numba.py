"""Numba ``@njit`` kernels for the event core (see :mod:`repro.sim.backend`).

Importing this module requires numba; :func:`repro.sim.backend.resolve`
only does so after probing availability.  Each kernel mirrors its pure-
Python reference loop **operation for operation, in the same order** --
float arithmetic is evaluation-order sensitive, and the byte-identity
suites (cache determinism, fault counters, mesoscale flow-vs-packet) run
against every installed backend with the pure loops as oracle.  When
editing a kernel, edit its reference loop in the same commit:

* :func:`c3_select`        <-> ``repro.selection.c3.C3Selector.select``
* :func:`chained_arrival`  <-> ``repro.network.fabric.Network.transmit_fast``
* :func:`count_undone_hops` <-> ``repro.network.fabric.Network.settle_trunks``
* :func:`path_chain`       <-> ``repro.mesoscale.vector.path_chain``
* :func:`hop_class_batch`  <-> ``repro.mesoscale.vector.hop_class_batch``

The pairing is registered in :data:`repro.sim.backend.KERNEL_MIRRORS` and
enforced statically: ``netrs contracts`` (rule CON001) compares this module
against the cython implementations and pins the C3 scoring formula across
all four sites, so an un-replayed edit fails CI before any golden runs.

``cache=True`` persists the compiled artifacts next to the module so the
~1 s first-call compilation is paid once per machine, not once per process
(benchmarks would otherwise measure the compiler).
"""

from __future__ import annotations

import numpy as np
from numba import njit  # ImportError here means: use engine_backend="python"


@njit(cache=True)
def c3_select(
    service_rate: np.ndarray,  # float64[n], pool order
    outstanding: np.ndarray,  # float64[n]
    queue_size: np.ndarray,  # float64[n]
    response_time: np.ndarray,  # float64[n]
    prior: float,
    weight: float,
    exponent: float,
):  # -> (best_index, tie_count)
    """Single-pass C3 minimum over a candidate pool.

    Returns the index of the first minimum and how many candidates share
    that exact score.  The caller falls back to the scalar tie-break path
    when ``tie_count > 1`` (the RNG draw must consume the same stream
    position as the reference loop).
    """
    best = -1
    best_score = np.inf
    ties = 0
    for i in range(service_rate.shape[0]):
        rate = service_rate[i]
        if not rate > 0.0:
            rate = prior
        expected_service = 1.0 / rate
        q_hat = 1.0 + outstanding[i] * weight + queue_size[i]
        score = (
            response_time[i]
            - expected_service
            + q_hat**exponent * expected_service
        )
        if score < best_score:
            best = i
            best_score = score
            ties = 1
        elif score == best_score:
            ties += 1
    return best, ties


@njit(cache=True)
def chained_arrival(base: float, delay: float, hops: int) -> float:
    """Delivery time of a ``hops``-long trunk: ``hops`` chained additions.

    Not ``base + delay * hops``: hop-by-hop forwarding accumulates the
    delay one event at a time and the two float sums differ in the last
    ulp.  Byte-identity with the reference path requires the chain.
    """
    when = base
    for _ in range(hops):
        when += delay
    return when


@njit(cache=True)
def count_undone_hops(
    bases: np.ndarray,  # float64[m], trunk send times
    delays: np.ndarray,  # float64[m], per-hop link delays
    hops: np.ndarray,  # int64[m], trunk lengths
    stop_time: float,
    undone: np.ndarray,  # int64[m], output
) -> int:
    """Per pending trunk: chained hop events that land at/after the stop.

    Mirrors the settlement loop in ``Network.settle_trunks``; returns the
    total so the caller can skip the unwind entirely when nothing was cut
    short.
    """
    total = 0
    for j in range(bases.shape[0]):
        t = bases[j]
        delay = delays[j]
        count = 0
        for _ in range(1, hops[j]):
            t += delay
            if t >= stop_time:
                count += 1
        undone[j] = count
        total += count
    return total


@njit(cache=True)
def path_chain(
    times: np.ndarray,  # float64[n], block start times
    hops: np.ndarray,  # float64[h], per-hop delays of one locality class
    out: np.ndarray,  # float64[n], output
) -> np.ndarray:
    """Chained per-hop accumulation over a block of start times.

    Per element this is the scalar hop chain ``t += delay`` in hop order --
    the numpy reference applies each hop element-wise over the whole block,
    which performs the identical additions, so delivery timestamps are
    bit-equal across backends.
    """
    for i in range(times.shape[0]):
        t = times[i]
        for j in range(hops.shape[0]):
            t += hops[j]
        out[i] = t
    return out


@njit(cache=True)
def hop_class_batch(
    client_rack: np.ndarray,  # int64[n], per-request client rack
    client_pod: np.ndarray,  # int64[n], per-request client pod
    replica_rack: np.ndarray,  # int64[n, r], per-(request, replica) rack
    replica_pod: np.ndarray,  # int64[n, r], per-(request, replica) pod
    out: np.ndarray,  # int64[n, r], output locality class
) -> np.ndarray:
    """Locality class (0=same rack, 1=same pod, 2=cross-pod) per cell.

    Integer compares only; trivially exact on every backend.
    """
    for i in range(client_rack.shape[0]):
        rack = client_rack[i]
        pod = client_pod[i]
        for j in range(replica_rack.shape[1]):
            if replica_rack[i, j] == rack:
                out[i, j] = 0
            elif replica_pod[i, j] == pod:
                out[i, j] = 1
            else:
                out[i, j] = 2
    return out
