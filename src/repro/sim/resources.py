"""Capacity-limited resources and message stores for processes.

:class:`Resource` models ``capacity`` interchangeable slots (e.g. the Np
parallel request slots of a key-value server).  :class:`Store` is an
unbounded FIFO of items with blocking ``get`` (e.g. a NIC receive queue).

Both hand out plain :class:`~repro.sim.core.Event` objects so they compose
with processes and ``any_of``/``all_of``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from repro.sim.core import Environment, Event, SimulationError


class Resource:
    """``capacity`` slots granted FIFO.

    Usage inside a process::

        grant = resource.request()
        yield grant
        try:
            yield env.timeout(service_time)
        finally:
            resource.release()
    """

    def __init__(self, env: Environment, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that succeeds when a slot is granted."""
        event = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Release one held slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without a matching request()")
        if self._waiters:
            # Hand the slot straight to the next waiter: in_use is unchanged.
            waiter = self._waiters.popleft()
            waiter.succeed()
        else:
            self._in_use -= 1


class Store:
    """Unbounded FIFO of items with blocking ``get``.

    ``put`` never blocks.  ``get`` returns an event that succeeds with the
    oldest item as soon as one is available.
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def waiting_getters(self) -> int:
        """Number of blocked ``get`` calls."""
        return len(self._getters)

    def put(self, item: Any) -> None:
        """Deposit ``item``, waking the oldest blocked getter if any."""
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that succeeds with the next item."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event
