"""Hot-path benchmark harness: engine, fabric, routing, fig4 slice.

Measures the simulator's own throughput on the same workloads as
``benchmarks/test_bench_engine.py`` and writes a machine-readable JSON
report (``BENCH_<n>.json`` at the repo root by convention) so successive
PRs can track regressions without the pytest-benchmark machinery:

* ``event_scheduling``  -- schedule-and-drain of raw callbacks (events/s),
* ``timer_cancellation`` -- timers cancelled before firing, the CliRS-R95
  fast path (timers/s),
* ``packet_forwarding`` -- fabric transmissions over a host-to-host pipe
  (hops/s),
* ``routing``           -- ECMP path computations on a paper-scale
  16-ary fat-tree (paths/s),
* ``fig4_slice``        -- wall time of one small Figure-4 cell end to end.

Usage::

    PYTHONPATH=src python -m repro.sim.bench --out BENCH_2.json

Each microbenchmark reports the best of ``--repeats`` runs (minimum wall
time is the standard low-noise estimator for this kind of measurement).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Callable, Dict

from repro.sim.core import Environment


def _best_of(fn: Callable[[], int], repeats: int) -> Dict[str, float]:
    """Run ``fn`` ``repeats`` times; report best wall time and its rate."""
    best = float("inf")
    units = 0
    for _ in range(repeats):
        started = time.perf_counter()
        units = fn()
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return {
        "units": units,
        "wall_s": best,
        "rate_per_s": units / best if best > 0 else float("inf"),
    }


def bench_event_scheduling(n: int = 10_000) -> int:
    """Schedule-and-drain cost of ``n`` raw callbacks (mirrors
    ``test_event_scheduling_throughput``)."""
    env = Environment()
    for i in range(n):
        env.call_in(i * 1e-6, lambda: None)
    env.run()
    assert env.events_executed == n
    return n


def bench_timer_cancellation(n: int = 10_000) -> int:
    """Timers that never fire (mirrors ``test_timer_cancellation_throughput``)."""
    env = Environment()
    handles = [env.call_in(1.0, lambda: None) for _ in range(n)]
    for handle in handles:
        handle.cancel()
    env.run()
    assert env.events_executed == 0
    return n


def bench_packet_forwarding(n: int = 5_000) -> int:
    """Fabric transmissions over a host-to-host pipe (mirrors
    ``test_packet_hop_throughput``); returns total hops delivered."""
    from repro.network.fabric import Network
    from repro.network.fattree import build_fat_tree
    from repro.network.packet import make_request

    env = Environment()
    topo = build_fat_tree(8)
    network = Network(env, topo)

    class Sink:
        count = 0

        def receive(self, packet, from_name):
            Sink.count += 1

    network.attach("tor0.0", Sink())
    for i in range(n):
        packet = make_request(
            client="host0.0.0",
            request_id=i,
            key=i,
            rgid=1,
            backup_replica="host0.0.1",
            issued_at=0.0,
            netrs=False,
            dst="host0.0.1",
        )
        network.transmit("host0.0.0", "tor0.0", packet)
    env.run()
    return network.transmissions


def bench_routing(n: int = 2_000) -> int:
    """ECMP path computations across a paper-scale 16-ary fat-tree (mirrors
    ``test_routing_throughput``)."""
    from repro.network.fattree import build_fat_tree
    from repro.network.routing import Router

    topo = build_fat_tree(16)
    router = Router(topo)
    hosts = [h.name for h in topo.hosts]
    for i in range(n):
        router.path(hosts[i % 512], hosts[-1 - (i % 511)], i)
    return n


def bench_fig4_slice(requests: int = 2_000) -> int:
    """One small Figure-4 cell (clirs-r95, 32 clients) end to end; returns
    the number of completed requests."""
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import run_experiment

    config = ExperimentConfig.small(
        scheme="clirs-r95", seed=1, n_clients=32, total_requests=requests
    )
    result = run_experiment(config)
    return result.completed_requests


def run_benchmarks(repeats: int = 5, fig4_repeats: int = 1) -> Dict[str, object]:
    """Run the full suite and return the report payload."""
    report: Dict[str, object] = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeats": repeats,
        "benchmarks": {},
    }
    benches = report["benchmarks"]
    benches["event_scheduling"] = _best_of(bench_event_scheduling, repeats)
    benches["timer_cancellation"] = _best_of(bench_timer_cancellation, repeats)
    benches["packet_forwarding"] = _best_of(bench_packet_forwarding, repeats)
    benches["routing"] = _best_of(bench_routing, repeats)
    benches["fig4_slice"] = _best_of(bench_fig4_slice, fig4_repeats)
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, help="write JSON report here")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--fig4-repeats", type=int, default=1, help="repeats of the fig4 slice"
    )
    args = parser.parse_args(argv)
    report = run_benchmarks(repeats=args.repeats, fig4_repeats=args.fig4_repeats)
    payload = json.dumps(report, indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w", encoding="ascii") as fh:
            fh.write(payload)
    sys.stdout.write(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
