"""Hot-path benchmark harness: engine, fabric, routing, rng, metrics, fig4.

Measures the simulator's own throughput on the same workloads as
``benchmarks/test_bench_engine.py`` and writes a machine-readable JSON
report (``BENCH_<n>.json`` at the repo root by convention) so successive
PRs can track regressions without the pytest-benchmark machinery:

* ``event_scheduling``  -- schedule-and-drain of raw callbacks (events/s),
* ``timer_cancellation`` -- timers cancelled before firing, the CliRS-R95
  fast path (timers/s),
* ``packet_forwarding`` -- fabric transmissions over a host-to-host pipe
  (hops/s),
* ``routing``           -- ECMP path computations on a paper-scale
  16-ary fat-tree (paths/s),
* ``rng_draws``         -- scalar draws through a BatchedStream, the
  service-time/jitter hot path (draws/s),
* ``metrics_aggregation`` -- LatencyRecorder summaries plus cross-trial
  aggregation, the end-of-run path (samples/s),
* ``backend_dispatch``  -- C3 selections through the resolved event-core
  backend (selections/s); the per-backend kernel canary,
* ``fig4_slice``        -- wall time of one small Figure-4 cell end to end,
* ``mesoscale_slice``   -- the same cell on the flow tier's SoA fast path
  (requests/s), the mesoscale speedup canary (see docs/MESOSCALE.md),
* ``flow_request_batch`` -- the vectorized whole-request fast path on a
  fault-free cell (requests/s); the block prologue + flat-drain canary,
* ``shard_merge``       -- a 4-shard flow run fanned out and merged in
  process (requests/s); the shard split/remap/merge overhead canary.

Usage::

    PYTHONPATH=src python -m repro.sim.bench --out BENCH_4.json
    PYTHONPATH=src python -m repro.sim.bench rng_draws routing
    PYTHONPATH=src python -m repro.sim.bench --profile fig4.pstats fig4_slice
    PYTHONPATH=src python -m repro.sim.bench --compare BENCH_4.json

Each microbenchmark reports the best of ``--repeats`` runs (minimum wall
time is the standard low-noise estimator for this kind of measurement).
Reports are stamped with a ``schema_version``, the git commit, and the
numpy/python versions so archived JSONs stay comparable across PRs.

``--compare`` re-runs the suite and checks measured rates against an
archived report; a benchmark falling below its tolerance band **fails the
run** (exit 1) so CI can gate on it.  Thresholds are per benchmark
(:data:`THRESHOLDS`): deliberately generous, because archived numbers come
from other machines and shared runners jitter by tens of percent.
``--compare-warn`` is the escape hatch that restores the old warn-only
behaviour (exit 0 regardless).
"""

from __future__ import annotations

import argparse
import cProfile
import json
import platform
import pstats
import subprocess
import sys
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.sim.core import Environment
from repro.sim.rng import batched_from_seed, stream_from_seed

#: Bump when the report layout changes shape (not when numbers move).
#: v2: ``engine_backend`` + compiler versions stamped into the payload and
#: the ``backend_dispatch`` benchmark (cross-backend rates are not
#: comparable; ``--compare`` refuses mismatched baselines).
SCHEMA_VERSION = 2


def _best_of(fn: Callable[[], int], repeats: int) -> Dict[str, float]:
    """Run ``fn`` ``repeats`` times; report best wall time and its rate."""
    best = float("inf")
    units = 0
    for _ in range(repeats):
        started = time.perf_counter()
        units = fn()
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return {
        "units": units,
        "wall_s": best,
        "rate_per_s": units / best if best > 0 else float("inf"),
    }


def bench_event_scheduling(n: int = 10_000) -> int:
    """Schedule-and-drain cost of ``n`` raw callbacks (mirrors
    ``test_event_scheduling_throughput``)."""
    env = Environment()
    for i in range(n):
        env.call_in(i * 1e-6, lambda: None)
    env.run()
    assert env.events_executed == n
    return n


def bench_timer_cancellation(n: int = 10_000) -> int:
    """Timers that never fire (mirrors ``test_timer_cancellation_throughput``)."""
    env = Environment()
    handles = [env.call_in(1.0, lambda: None) for _ in range(n)]
    for handle in handles:
        handle.cancel()
    env.run()
    assert env.events_executed == 0
    return n


def bench_packet_forwarding(n: int = 5_000) -> int:
    """Fabric transmissions over a host-to-host pipe (mirrors
    ``test_packet_hop_throughput``); returns total hops delivered."""
    from repro.network.fabric import Network
    from repro.network.fattree import build_fat_tree
    from repro.network.packet import make_request

    env = Environment()
    topo = build_fat_tree(8)
    network = Network(env, topo)

    class Sink:
        count = 0

        def receive(self, packet, from_name):
            Sink.count += 1

    network.attach("tor0.0", Sink())
    for i in range(n):
        packet = make_request(
            client="host0.0.0",
            request_id=i,
            key=i,
            rgid=1,
            backup_replica="host0.0.1",
            issued_at=0.0,
            netrs=False,
            dst="host0.0.1",
        )
        network.transmit("host0.0.0", "tor0.0", packet)
    env.run()
    return network.transmissions


def bench_routing(n: int = 2_000) -> int:
    """ECMP path computations across a paper-scale 16-ary fat-tree (mirrors
    ``test_routing_throughput``)."""
    from repro.network.fattree import build_fat_tree
    from repro.network.routing import Router

    topo = build_fat_tree(16)
    router = Router(topo)
    hosts = [h.name for h in topo.hosts]
    for i in range(n):
        router.path(hosts[i % 512], hosts[-1 - (i % 511)], i)
    return n


def bench_rng_draws(n: int = 200_000) -> int:
    """Scalar draws served from a BatchedStream's prefetched blocks.

    This is the shape of the simulator's hottest stochastic path: servers
    and fluctuation timers pull one exponential at a time, and the batched
    layer amortizes numpy's per-call dispatch across 1024-draw blocks.
    """
    draws = batched_from_seed(1, "bench.rng", block_size=1024)
    total = 0.0
    for _ in range(n):
        total += draws.exponential(1e-4)
    assert total > 0
    return n


def bench_metrics_aggregation(n: int = 200_000, trials: int = 20) -> int:
    """End-of-run metrics: one big latency summary plus cross-trial means.

    Mirrors what ``run_experiment`` does after the event loop drains: the
    vectorized ``LatencyRecorder.summary`` over the full sample vector,
    then ``mean_of_summaries`` across per-trial summaries.
    """
    from repro.experiments.metrics import mean_of_summaries
    from repro.sim.probes import LatencyRecorder

    rng = stream_from_seed(2, "bench.metrics")
    samples = rng.exponential(1e-3, size=n)
    recorder = LatencyRecorder()
    recorder.extend(samples.tolist())
    summary = recorder.summary()
    assert summary["mean"] > 0
    per_trial = []
    step = max(1, n // trials)
    for i in range(trials):
        trial = LatencyRecorder()
        trial.extend(samples[i * step : (i + 1) * step].tolist())
        if len(trial):
            per_trial.append(trial.summary())
    merged = mean_of_summaries(per_trial)
    assert merged["mean"] > 0
    return n


def bench_backend_dispatch(n: int = 20_000, servers: int = 16) -> int:
    """C3 selections through the resolved event-core backend.

    Exercises exactly what :mod:`repro.sim.backend` swaps out: the scoring
    pass (compiled kernel or reference loop), the mirror-array updates on
    feedback, and -- on compiled backends -- the per-call gather/dispatch
    overhead.  Comparing this rate across backends is the point; comparing
    it across *different* backends in ``--compare`` is meaningless, which
    is why reports stamp ``engine_backend``.
    """
    from repro.network.packet import ServerStatus
    from repro.selection.c3 import C3Selector
    from repro.sim.backend import resolve

    backend = resolve("auto")
    selector = C3Selector(
        prior_service_rate=1000.0, rng=stream_from_seed(3, "bench.backend")
    )
    if backend.compiled:
        selector.use_kernel(backend.kernels)
    pool = [f"server{i}" for i in range(servers)]
    status = ServerStatus(queue_size=4, service_rate=900.0, timestamp=0.0)
    for i in range(n):
        server = selector.select(pool, now=i * 1e-4)
        selector.note_sent(server, now=i * 1e-4)
        if i % 4 == 0:
            selector.note_response(server, 1e-3, status, now=i * 1e-4)
    assert selector.selections == n
    return n


def bench_fig4_slice(requests: int = 2_000) -> int:
    """One small Figure-4 cell (clirs-r95, 32 clients) end to end; returns
    the number of completed requests."""
    from repro.experiments.config import ExperimentConfig
    from repro.experiments.runner import run_experiment

    config = ExperimentConfig.small(
        scheme="clirs-r95", seed=1, n_clients=32, total_requests=requests
    )
    result = run_experiment(config)
    return result.completed_requests


#: Flow-tier knobs the slices below run under, stamped into the report
#: metadata: rates measured with different knobs are different benchmarks.
MESOSCALE_VECTOR_BATCH = 4_096
SHARD_BENCH_SHARDS = 4


def bench_mesoscale_slice(requests: int = 2_000) -> int:
    """The fig4 cell on the flow tier's SoA fast path (``fidelity="flow"``,
    ``vector_batch > 0``); returns the number of completed requests.
    Divide the two slices' rates for the mesoscale speedup on this
    machine.  Byte-identity with the scalar flow engine is asserted by the
    test suite, so the vector knob changes only the rate."""
    from repro.experiments.config import ExperimentConfig
    from repro.mesoscale.runner import run_flow_experiment

    config = ExperimentConfig.small(
        scheme="clirs-r95", seed=1, n_clients=32, total_requests=requests
    ).replace(fidelity="flow", vector_batch=MESOSCALE_VECTOR_BATCH)
    result = run_flow_experiment(config)
    return result.completed_requests


def bench_flow_request_batch(requests: int = 4_000) -> int:
    """The vectorized whole-request fast path, isolated: a fault-free
    single-send cell (clirs) where every request takes the dense SoA route
    -- block prologue, kernel-built delivery tables, flat drain."""
    from repro.experiments.config import ExperimentConfig
    from repro.mesoscale.runner import run_flow_experiment

    config = ExperimentConfig.small(
        scheme="clirs", seed=1, n_clients=32, total_requests=requests
    ).replace(fidelity="flow", vector_batch=1_024)
    result = run_flow_experiment(config)
    return result.completed_requests


def bench_shard_merge(requests: int = 2_000) -> int:
    """A sharded flow run, fanned out serially in process and merged.

    Measures what sharding adds around the sub-runs: config splitting,
    per-shard job spool, and the key-ordered merge (worker processes are
    deliberately not spawned -- process startup would swamp the signal and
    CI boxes disagree on core counts)."""
    from repro.experiments.config import ExperimentConfig
    from repro.mesoscale.shard import run_sharded_flow_experiment

    config = ExperimentConfig.small(
        scheme="clirs-r95", seed=1, n_clients=32, n_servers=64,
        total_requests=requests,
    ).replace(
        fidelity="flow",
        shards=SHARD_BENCH_SHARDS,
        vector_batch=MESOSCALE_VECTOR_BATCH,
    )
    result = run_sharded_flow_experiment(config, workers=1)
    return result.completed_requests


#: Registry of benchmark name -> callable, in report order.  The CLI's
#: positional arguments select from these names and reject anything else.
BENCHMARKS: Dict[str, Callable[[], int]] = {
    "event_scheduling": bench_event_scheduling,
    "timer_cancellation": bench_timer_cancellation,
    "packet_forwarding": bench_packet_forwarding,
    "routing": bench_routing,
    "rng_draws": bench_rng_draws,
    "metrics_aggregation": bench_metrics_aggregation,
    "backend_dispatch": bench_backend_dispatch,
    "fig4_slice": bench_fig4_slice,
    "mesoscale_slice": bench_mesoscale_slice,
    "flow_request_batch": bench_flow_request_batch,
    "shard_merge": bench_shard_merge,
}

#: Per-benchmark allowed fractional rate drop before --compare fails.
#: Microbenchmarks are stable enough for the 50 % default; the end-to-end
#: slices see compounded jitter (allocator, GC, cache state) and get more
#: headroom.  Names absent here fall back to the CLI ``--tolerance``.
THRESHOLDS: Dict[str, float] = {
    "event_scheduling": 0.5,
    "timer_cancellation": 0.5,
    "packet_forwarding": 0.5,
    "routing": 0.5,
    "rng_draws": 0.5,
    "metrics_aggregation": 0.5,
    "backend_dispatch": 0.5,
    "fig4_slice": 0.6,
    "mesoscale_slice": 0.6,
    "flow_request_batch": 0.6,
    "shard_merge": 0.6,
}


def _git_commit() -> str:
    """Current commit hash, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except OSError:
        return "unknown"
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else "unknown"


def run_benchmarks(
    repeats: int = 5,
    fig4_repeats: int = 1,
    only: Optional[List[str]] = None,
) -> Dict[str, object]:
    """Run the suite (or the ``only`` subset) and return the report payload."""
    from repro.sim.backend import cython_version, numba_version, resolve

    report: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "git_commit": _git_commit(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        # Which event-core backend the benchmarks actually ran on: rates
        # measured under different backends are not comparable, so
        # --compare refuses mismatched baselines (see main()).
        "engine_backend": resolve("auto").describe(),
        "numba": numba_version(),
        "cython": cython_version(),
        # Flow-tier knobs the mesoscale slices ran under (additive v2
        # metadata): a rate measured with different knobs is a different
        # benchmark, so archived reports record them.
        "flow_tier": {
            "vector_batch": MESOSCALE_VECTOR_BATCH,
            "shards": SHARD_BENCH_SHARDS,
        },
        "platform": platform.platform(),
        "repeats": repeats,
        "benchmarks": {},
    }
    benches = report["benchmarks"]
    for name, fn in BENCHMARKS.items():
        if only is not None and name not in only:
            continue
        n_repeats = fig4_repeats if name == "fig4_slice" else repeats
        benches[name] = _best_of(fn, n_repeats)
    return report


def compare_reports(
    baseline: Dict[str, object],
    current: Dict[str, object],
    tolerance: float = 0.5,
    thresholds: Optional[Dict[str, float]] = None,
) -> Dict[str, object]:
    """Regression check of ``current`` rates against ``baseline``.

    A benchmark *regresses* when its measured ``rate_per_s`` drops below
    ``(1 - tolerance)`` of the archived rate, where the per-benchmark
    tolerance comes from ``thresholds`` (falling back to ``tolerance``).
    Tolerances are deliberately generous: archived numbers come from a
    different machine, and shared CI runners jitter by tens of percent.
    Whether regressions fail the run is the *caller's* policy (the CLI
    gates by default; ``--compare-warn`` downgrades to warnings).
    """
    base_benches = baseline.get("benchmarks", {})
    cur_benches = current.get("benchmarks", {})
    comparison: Dict[str, object] = {
        "baseline_commit": baseline.get("git_commit", "unknown"),
        "current_commit": current.get("git_commit", "unknown"),
        "tolerance": tolerance,
        "benchmarks": {},
        "regressions": [],
    }
    for name, cur in sorted(cur_benches.items()):
        base = base_benches.get(name)
        if base is None:
            continue
        allowed = (thresholds or {}).get(name, tolerance)
        base_rate = base["rate_per_s"]
        cur_rate = cur["rate_per_s"]
        ratio = cur_rate / base_rate if base_rate > 0 else float("inf")
        regressed = ratio < (1.0 - allowed)
        comparison["benchmarks"][name] = {
            "baseline_rate_per_s": base_rate,
            "current_rate_per_s": cur_rate,
            "ratio": ratio,
            "tolerance": allowed,
            "regressed": regressed,
        }
        if regressed:
            comparison["regressions"].append(name)
    return comparison


def _print_profile(profile: cProfile.Profile, out_path: Optional[str]) -> None:
    """Dump pstats data (if requested) and print the top-25 cumulative table."""
    stats = pstats.Stats(profile, stream=sys.stderr)
    if out_path:
        stats.dump_stats(out_path)
        sys.stderr.write(f"profile data written to {out_path}\n")
    stats.sort_stats("cumulative").print_stats(25)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "names",
        nargs="*",
        metavar="BENCHMARK",
        help=(
            "benchmarks to run (default: all); one of: "
            + ", ".join(BENCHMARKS)
        ),
    )
    parser.add_argument("--out", default=None, help="write JSON report here")
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--fig4-repeats", type=int, default=1, help="repeats of the fig4 slice"
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const="",
        default=None,
        metavar="PSTATS_FILE",
        help=(
            "profile the run under cProfile; prints the top-25 functions by "
            "cumulative time and, given a path, dumps raw pstats data there"
        ),
    )
    parser.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE_JSON",
        help=(
            "regression gate: compare measured rates against an archived "
            "report; exits 1 when any benchmark drops below its threshold "
            "(see --compare-warn)"
        ),
    )
    parser.add_argument(
        "--compare-warn",
        action="store_true",
        help=(
            "escape hatch: report --compare regressions as warnings only, "
            "never failing the run (the pre-gate behaviour)"
        ),
    )
    parser.add_argument(
        "--compare-out",
        default=None,
        metavar="COMPARISON_JSON",
        help="write the --compare result here (for CI artifacts)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help=(
            "fallback fractional rate drop allowed before --compare flags a "
            "benchmark without its own THRESHOLDS entry (default 0.5)"
        ),
    )
    args = parser.parse_args(argv)

    unknown = [name for name in args.names if name not in BENCHMARKS]
    if unknown:
        parser.error(
            f"unknown benchmark(s): {', '.join(unknown)} "
            f"(choose from: {', '.join(BENCHMARKS)})"
        )
    only = args.names or None

    profile: Optional[cProfile.Profile] = None
    if args.profile is not None:
        profile = cProfile.Profile()
        profile.enable()
    try:
        report = run_benchmarks(
            repeats=args.repeats, fig4_repeats=args.fig4_repeats, only=only
        )
    finally:
        if profile is not None:
            profile.disable()
            _print_profile(profile, args.profile or None)

    payload = json.dumps(report, indent=2, sort_keys=True) + "\n"
    if args.out:
        with open(args.out, "w", encoding="ascii") as fh:
            fh.write(payload)
    sys.stdout.write(payload)

    if args.compare:
        with open(args.compare, "r", encoding="ascii") as fh:
            baseline = json.load(fh)
        # Rates measured under different event-core backends are not
        # comparable (a compiled kernel vs the reference loop is exactly
        # the difference the gate must not absorb).  Schema-v1 baselines
        # predate the field and were always pure python.
        base_backend = baseline.get("engine_backend", "python")
        cur_backend = report["engine_backend"]
        if base_backend != cur_backend:
            message = (
                f"bench comparison: baseline backend '{base_backend}' != "
                f"current backend '{cur_backend}'; rates are not comparable"
            )
            if not args.compare_warn:
                sys.stderr.write(
                    f"FAIL: {message} (use --compare-warn to downgrade)\n"
                )
                return 1
            sys.stderr.write(f"WARNING: {message}\n")
        comparison = compare_reports(
            baseline, report, tolerance=args.tolerance, thresholds=THRESHOLDS
        )
        comparison_payload = json.dumps(comparison, indent=2, sort_keys=True) + "\n"
        if args.compare_out:
            with open(args.compare_out, "w", encoding="ascii") as fh:
                fh.write(comparison_payload)
        sys.stderr.write(comparison_payload)
        severity = "WARNING" if args.compare_warn else "FAIL"
        for name in comparison["regressions"]:
            entry = comparison["benchmarks"][name]
            sys.stderr.write(
                f"{severity}: {name} regressed: "
                f"{entry['current_rate_per_s']:.0f}/s vs baseline "
                f"{entry['baseline_rate_per_s']:.0f}/s "
                f"(ratio {entry['ratio']:.2f} < {1.0 - entry['tolerance']:.2f})\n"
            )
        if not comparison["regressions"]:
            sys.stderr.write("bench comparison: no regressions beyond tolerance\n")
        elif not args.compare_warn:
            sys.stderr.write(
                f"bench comparison: {len(comparison['regressions'])} "
                "regression(s) -- failing (use --compare-warn to downgrade)\n"
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
