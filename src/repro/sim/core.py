"""Core of the discrete-event engine: the clock, the heap, and events.

Time is a ``float`` in **seconds**.  All scheduling goes through
:class:`Environment`; entities never touch the heap directly.

Two scheduling styles coexist:

* **Callbacks** -- ``env.call_in(delay, fn, *args)`` runs ``fn`` at
  ``env.now + delay``.  This is the cheap path used for packet hops.
* **Events** -- :class:`Event` objects that processes can wait on.  An event
  is *triggered* exactly once (``succeed``/``fail``) and then notifies its
  callbacks in FIFO order.

Ties in time are broken by insertion order, so the simulation is fully
deterministic for a fixed seed.

Schedule entries are flat tuples ``(time, seq, kind, ...)`` -- ``seq`` is
unique, so tuple comparison never inspects the payload and entries of
different lengths can share a container:

* ``kind 0`` -- cancellable callback ``(time, seq, 0, fn, args, handle)``,
* ``kind 1`` -- event processing ``(time, seq, 1, event)``,
* ``kind 2`` -- fast non-cancellable callback ``(time, seq, 2, fn, args)``
  (the packet-hop hot path; no handle allocation).

The schedule is split across two structures (a "lazy queue"):

* a FIFO **deque** that absorbs entries scheduled in non-decreasing time
  order -- O(1) push and pop, which covers most of a simulation's traffic
  (arrival processes, same-instant bursts, drain phases);
* a binary **heap** for out-of-order arrivals.

The next entry to execute is whichever of the two front entries compares
smaller; since ``seq`` totally orders ties, execution order is *identical*
to a single-heap engine, preserving determinism bit-for-bit.

Cancelled ``kind 0`` entries stay in place (lazy deletion) and are counted;
once they exceed both a floor and half the schedule, both structures are
compacted in one O(n) pass.  Cancelled entries never run, never advance the
clock, and do not count toward :attr:`Environment.events_executed`.
"""

from __future__ import annotations

import gc
import heapq
from collections import deque
from typing import Any, Callable, Iterable, Optional


class SimulationError(Exception):
    """Base class for errors raised by the simulation engine."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Environment.run` early."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process that is interrupted by another process."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that callbacks and processes can wait on.

    An event starts *pending*.  Calling :meth:`succeed` or :meth:`fail`
    *triggers* it: the event is placed on the heap at the current time and,
    when popped, its callbacks run with the event as sole argument.

    Attributes:
        env: The owning :class:`Environment`.
        callbacks: Callables invoked when the event is processed.  ``None``
            after processing (late ``wait`` attempts raise).
        value: Payload passed to :meth:`succeed`, or the exception passed to
            :meth:`fail`.
    """

    __slots__ = ("env", "callbacks", "value", "_ok", "_processed")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self.value: Any = None
        self._ok: Optional[bool] = None  # None => pending
        self._processed = False

    @property
    def triggered(self) -> bool:
        """Whether ``succeed``/``fail`` has been called."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """Whether the callbacks have already run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """Whether the event succeeded.  Only meaningful once triggered."""
        if self._ok is None:
            raise SimulationError("event is not triggered yet")
        return self._ok

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional ``value``."""
        if self._ok is not None:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self.value = value
        self.env._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception as its outcome."""
        if self._ok is not None:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self.value = exception
        self.env._schedule_event(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event is processed."""
        if self.callbacks is None:
            raise SimulationError(f"{self!r} was already processed")
        self.callbacks.append(callback)

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending" if self._ok is None else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} {state} at t={self.env.now:.6f}>"


class Timeout(Event):
    """An event that succeeds ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self.value = value
        env._schedule_event(self, delay=delay)


class AnyOf(Event):
    """Succeeds when the first of ``events`` is processed.

    The value is a dict mapping the completed event(s) to their values (events
    already processed before construction are included immediately).
    """

    __slots__ = ("_events",)

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:  # already processed
                if event.ok:
                    self.succeed({event: event.value})
                else:
                    self.fail(event.value)
                break
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
        else:
            self.succeed({event: event.value})


class AllOf(Event):
    """Succeeds when every one of ``events`` has been processed."""

    __slots__ = ("_events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._remaining = 0
        for event in self._events:
            if event.callbacks is not None:
                self._remaining += 1
                event.add_callback(self._on_child)
        if self._remaining == 0:
            self.succeed({e: e.value for e in self._events})

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({e: e.value for e in self._events})


class _Handle:
    """Cancellation handle returned by :meth:`Environment.call_at`.

    ``_env`` back-references the environment while the entry is still in the
    heap so a cancellation can be counted toward lazy-deletion bookkeeping;
    it is dropped when the callback runs (or the entry is compacted away) so
    late ``cancel()`` calls are harmless no-ops.
    """

    __slots__ = ("cancelled", "_env")

    def __init__(self, env: Optional["Environment"] = None) -> None:
        self.cancelled = False
        self._env = env

    def cancel(self) -> None:
        """Prevent the scheduled callback from running."""
        if self.cancelled:
            return
        self.cancelled = True
        env = self._env
        if env is not None:
            self._env = None
            env._note_cancelled()


class Environment:
    """The simulation environment: virtual clock plus event heap.

    Args:
        initial_time: Starting value of the clock, in seconds.
        compaction: Enable threshold-triggered compaction of cancelled
            entries.  Disabling it (determinism audits) falls back to pure
            lazy deletion; observable behaviour is identical either way.

    See the module docstring for the heap-entry layout.
    """

    #: Cancelled entries below this floor never trigger a compaction pass.
    COMPACTION_MIN_CANCELLED = 64

    def __init__(self, initial_time: float = 0.0, *, compaction: bool = True) -> None:
        self._now = float(initial_time)
        self._heap: list[tuple] = []  # out-of-order entries
        self._dq: deque = deque()  # entries pushed in non-decreasing time
        self._seq = 0
        self._event_count = 0
        self._cancelled = 0  # cancelled kind-0 entries still scheduled
        self._compaction = bool(compaction)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Heap entries whose callbacks actually ran (throughput metric).

        Cancelled callbacks are bookkeeping, not work: they are excluded.
        """
        return self._event_count

    @property
    def pending_cancelled(self) -> int:
        """Cancelled entries currently awaiting lazy deletion (diagnostics)."""
        return self._cancelled

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def call_at(
        self, when: float, fn: Callable[..., Any], *args: Any
    ) -> _Handle:
        """Run ``fn(*args)`` at absolute time ``when``; returns a handle."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {when} < now={self._now}"
            )
        handle = _Handle(self)
        self._seq += 1
        dq = self._dq
        if not dq or when >= dq[-1][0]:
            dq.append((when, self._seq, 0, fn, args, handle))
        else:
            heapq.heappush(self._heap, (when, self._seq, 0, fn, args, handle))
        return handle

    def call_in(self, delay: float, fn: Callable[..., Any], *args: Any) -> _Handle:
        """Run ``fn(*args)`` after ``delay`` seconds; returns a handle."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        handle = _Handle(self)
        self._seq += 1
        when = self._now + delay
        dq = self._dq
        if not dq or when >= dq[-1][0]:
            dq.append((when, self._seq, 0, fn, args, handle))
        else:
            heapq.heappush(self._heap, (when, self._seq, 0, fn, args, handle))
        return handle

    def post_at(self, when: float, fn: Callable[..., Any], args: tuple = ()) -> None:
        """Hot-path variant of :meth:`call_at`: no handle, no validation.

        The caller must guarantee ``when >= now``; there is no way to cancel.
        Used by the fabric for per-packet-hop delivery, where the handle
        allocation and bounds check of :meth:`call_at` are measurable.
        """
        self._seq += 1
        dq = self._dq
        if not dq or when >= dq[-1][0]:
            dq.append((when, self._seq, 2, fn, args))
        else:
            heapq.heappush(self._heap, (when, self._seq, 2, fn, args))

    def post_in(self, delay: float, fn: Callable[..., Any], args: tuple = ()) -> None:
        """Hot-path variant of :meth:`call_in`; ``delay`` must be >= 0.

        ``Network.transmit`` inlines this body (it runs once per packet
        hop); keep the two in sync when changing the scheduling layout.
        """
        self._seq += 1
        when = self._now + delay
        dq = self._dq
        if not dq or when >= dq[-1][0]:
            dq.append((when, self._seq, 2, fn, args))
        else:
            heapq.heappush(self._heap, (when, self._seq, 2, fn, args))

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        self._seq += 1
        when = self._now + delay
        dq = self._dq
        if not dq or when >= dq[-1][0]:
            dq.append((when, self._seq, 1, event))
        else:
            heapq.heappush(self._heap, (when, self._seq, 1, event))

    # ------------------------------------------------------------------
    # Lazy deletion / compaction
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        self._cancelled += 1
        if (
            self._compaction
            and self._cancelled >= self.COMPACTION_MIN_CANCELLED
            and self._cancelled * 2 >= len(self._heap) + len(self._dq)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry from the schedule in one O(n) pass.

        Mutates the containers in place: ``run`` holds local references to
        them while dispatching, and a cancellation (hence a compaction) can
        happen inside a callback mid-run.
        """
        heap = self._heap
        heap[:] = [e for e in heap if not (e[2] == 0 and e[5].cancelled)]
        heapq.heapify(heap)
        dq = self._dq
        live = [e for e in dq if not (e[2] == 0 and e[5].cancelled)]
        dq.clear()
        dq.extend(live)
        self._cancelled = 0

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` that fires after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event succeeding when the first of ``events`` completes."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event succeeding when all of ``events`` complete."""
        return AllOf(self, events)

    def process(self, generator: Any) -> "Process":
        """Start a generator as a simulated :class:`Process`."""
        from repro.sim.process import Process

        return Process(self, generator)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _pop_next(self) -> tuple:
        """Remove and return the globally next entry (deque vs heap front).

        Raises ``IndexError`` when the schedule is empty.
        """
        dq = self._dq
        heap = self._heap
        if dq:
            if heap and heap[0] < dq[0]:
                return heapq.heappop(heap)
            return dq.popleft()
        return heapq.heappop(heap)

    def _dispatch(self, entry: tuple) -> bool:
        """Run one schedule entry; False if it was a cancelled callback."""
        kind = entry[2]
        if kind == 0:
            handle = entry[5]
            if handle.cancelled:
                self._cancelled -= 1
                return False
            handle._env = None
            self._now = entry[0]
            self._event_count += 1
            entry[3](*entry[4])
        elif kind == 1:
            self._now = entry[0]
            self._event_count += 1
            entry[3]._process()
        else:
            self._now = entry[0]
            self._event_count += 1
            entry[3](*entry[4])
        return True

    def step(self) -> None:
        """Execute the next *runnable* schedule entry.

        Cancelled entries are discarded without running, without advancing
        the clock, and without counting toward ``events_executed``; raises
        ``IndexError`` when nothing runnable remains (as an empty heap did
        before lazy deletion existed).
        """
        while not self._dispatch(self._pop_next()):
            pass

    def peek(self) -> float:
        """Time of the next *runnable* entry, or ``inf`` if none.

        Cancelled entries at the front of the schedule are dropped on the
        way, so ``peek``/``run(until=...)`` never report (or advance to)
        the timestamp of work that will not happen.
        """
        self._drop_cancelled_front()
        dq = self._dq
        heap = self._heap
        if dq:
            if heap and heap[0] < dq[0]:
                return heap[0][0]
            return dq[0][0]
        if heap:
            return heap[0][0]
        return float("inf")

    def _drop_cancelled_front(self) -> None:
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[2] == 0 and entry[5].cancelled:
                heapq.heappop(heap)
                self._cancelled -= 1
            else:
                break
        dq = self._dq
        while dq:
            entry = dq[0]
            if entry[2] == 0 and entry[5].cancelled:
                dq.popleft()
                self._cancelled -= 1
            else:
                break

    def run(self, until: Optional[float] = None) -> Any:
        """Run until the schedule drains or the clock passes ``until``.

        Returns the value carried by :class:`StopSimulation` if something
        stopped the run early, else ``None``.

        The dispatch loop is inlined (rather than delegating to
        :meth:`step`) because the per-event call overhead is measurable at
        paper scale; :meth:`step` remains for tests and debugging.

        The cyclic garbage collector is paused while the loop runs: events
        are tuples of floats and callables and packets hold no back
        references, so everything the loop churns through is freed by
        reference counting alone, while the allocation rate (tens of
        objects per event) makes generation-0 scans a measurable tax.
        Collection resumes on exit; anything cyclic created by callbacks is
        picked up then.

        **Batched same-timestamp drains.**  When several entries share the
        exact front timestamp (startup bursts, synchronized timer fans,
        flow-tier completion clusters) the loop drains the whole run into a
        flat pre-sorted buffer in one pass -- one deque/heap merge instead
        of a full two-structure comparison per entry -- and dispatches it
        with the clock pinned.  Entries scheduled *during* the batch carry
        higher seqs than everything in it, so they sort after the batch by
        construction and are picked up by the next outer iteration;
        execution order is bit-identical to the entry-at-a-time loop.  A
        ``StopSimulation`` raised mid-batch re-queues the undispatched tail
        at the deque front (times equal, seqs ascending: the sorted-front
        invariant holds), so a later ``run()`` resumes exactly where the
        stop landed.  The probe costs one float compare per event, which is
        noise; the win scales with cluster size.
        """
        heap = self._heap
        dq = self._dq
        pop = heapq.heappop
        popleft = dq.popleft
        executed = 0
        if until is not None:
            until = float(until)
            if until < self._now:
                raise SimulationError(
                    f"run(until={until}) is in the past (now={self._now})"
                )
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while True:
                # Select the globally next entry across both structures.
                if dq:
                    if heap and heap[0] < dq[0]:
                        if until is not None and heap[0][0] > until:
                            break
                        entry = pop(heap)
                    else:
                        if until is not None and dq[0][0] > until:
                            break
                        entry = popleft()
                elif heap:
                    if until is not None and heap[0][0] > until:
                        break
                    entry = pop(heap)
                else:
                    break
                kind = entry[2]
                if kind == 2:
                    self._now = entry[0]
                    executed += 1
                    entry[3](*entry[4])
                elif kind == 0:
                    handle = entry[5]
                    if handle.cancelled:
                        self._cancelled -= 1
                        continue
                    handle._env = None
                    self._now = entry[0]
                    executed += 1
                    entry[3](*entry[4])
                else:
                    self._now = entry[0]
                    executed += 1
                    entry[3]._process()
                # Same-timestamp run at the front?  Drain it in one pass.
                time = entry[0]
                if (dq and dq[0][0] == time) or (heap and heap[0][0] == time):
                    executed += self._run_batch(time)
        except StopSimulation as stop:
            return stop.value
        finally:
            if gc_was_enabled:
                gc.enable()
            self._event_count += executed
        if until is not None and self._now < until:
            self._now = until
        return None

    def _run_batch(self, time: float) -> int:
        """Drain and dispatch every remaining entry stamped ``time``.

        Called from :meth:`run` with the clock already advanced to ``time``;
        returns the number of entries executed.  The deque front and heap
        front are both seq-ascending at a fixed timestamp, so the batch is
        their two-way merge -- a flat pre-sorted buffer dispatched without
        per-entry front comparisons or clock stores.
        """
        dq = self._dq
        heap = self._heap
        d: list = []
        while dq and dq[0][0] == time:
            d.append(dq.popleft())
        h: list = []
        while heap and heap[0][0] == time:
            h.append(heapq.heappop(heap))
        batch = list(heapq.merge(d, h)) if (d and h) else (d or h)
        # Settle kind-0 bookkeeping now that the entries left the schedule:
        # already-cancelled entries are dropped here (their cancellation was
        # counted while they sat in the schedule), and live handles are
        # detached up front -- exactly what dispatch would do -- so a cancel
        # landing mid-batch stays off the lazy-deletion counter (the entry
        # is no longer in either structure for compaction to find).
        live = []
        for entry in batch:
            if entry[2] == 0:
                handle = entry[5]
                if handle.cancelled:
                    self._cancelled -= 1
                    continue
                handle._env = None
            live.append(entry)
        executed = 0
        index = 0
        total = len(live)
        try:
            while index < total:
                entry = live[index]
                index += 1
                kind = entry[2]
                if kind == 2:
                    executed += 1
                    entry[3](*entry[4])
                elif kind == 0:
                    if entry[5].cancelled:
                        continue  # cancelled by an earlier batch entry
                    executed += 1
                    entry[3](*entry[4])
                else:
                    executed += 1
                    entry[3]._process()
        except BaseException:
            # Re-queue the undispatched tail at the deque front (equal
            # times, ascending seqs: the sorted-front invariant holds) so a
            # later ``run()`` resumes exactly past the entry that raised.
            tail = live[index:]
            for entry in tail:
                if entry[2] == 0:
                    handle = entry[5]
                    if handle.cancelled:
                        # Back in the schedule, still awaiting lazy deletion.
                        self._cancelled += 1
                    else:
                        handle._env = self
            dq.extendleft(reversed(tail))
            # run()'s finally only adds its own local count; fold the batch
            # work in here so events_executed stays exact across a stop.
            self._event_count += executed
            raise
        return executed

    def stop(self, value: Any = None) -> None:
        """Stop the current :meth:`run` immediately (callable from callbacks)."""
        raise StopSimulation(value)
