"""Core of the discrete-event engine: the clock, the heap, and events.

Time is a ``float`` in **seconds**.  All scheduling goes through
:class:`Environment`; entities never touch the heap directly.

Two scheduling styles coexist:

* **Callbacks** -- ``env.call_in(delay, fn, *args)`` runs ``fn`` at
  ``env.now + delay``.  This is the cheap path used for packet hops.
* **Events** -- :class:`Event` objects that processes can wait on.  An event
  is *triggered* exactly once (``succeed``/``fail``) and then notifies its
  callbacks in FIFO order.

Ties in time are broken by insertion order, so the simulation is fully
deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Optional


class SimulationError(Exception):
    """Base class for errors raised by the simulation engine."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Environment.run` early."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process that is interrupted by another process."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that callbacks and processes can wait on.

    An event starts *pending*.  Calling :meth:`succeed` or :meth:`fail`
    *triggers* it: the event is placed on the heap at the current time and,
    when popped, its callbacks run with the event as sole argument.

    Attributes:
        env: The owning :class:`Environment`.
        callbacks: Callables invoked when the event is processed.  ``None``
            after processing (late ``wait`` attempts raise).
        value: Payload passed to :meth:`succeed`, or the exception passed to
            :meth:`fail`.
    """

    __slots__ = ("env", "callbacks", "value", "_ok", "_processed")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self.value: Any = None
        self._ok: Optional[bool] = None  # None => pending
        self._processed = False

    @property
    def triggered(self) -> bool:
        """Whether ``succeed``/``fail`` has been called."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """Whether the callbacks have already run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """Whether the event succeeded.  Only meaningful once triggered."""
        if self._ok is None:
            raise SimulationError("event is not triggered yet")
        return self._ok

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional ``value``."""
        if self._ok is not None:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self.value = value
        self.env._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception as its outcome."""
        if self._ok is not None:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self.value = exception
        self.env._schedule_event(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to run when the event is processed."""
        if self.callbacks is None:
            raise SimulationError(f"{self!r} was already processed")
        self.callbacks.append(callback)

    def _process(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending" if self._ok is None else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} {state} at t={self.env.now:.6f}>"


class Timeout(Event):
    """An event that succeeds ``delay`` seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self.value = value
        env._schedule_event(self, delay=delay)


class AnyOf(Event):
    """Succeeds when the first of ``events`` is processed.

    The value is a dict mapping the completed event(s) to their values (events
    already processed before construction are included immediately).
    """

    __slots__ = ("_events",)

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:  # already processed
                if not self.triggered:
                    self.succeed({event: event.value})
            else:
                event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
        else:
            self.succeed({event: event.value})


class AllOf(Event):
    """Succeeds when every one of ``events`` has been processed."""

    __slots__ = ("_events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._remaining = 0
        for event in self._events:
            if event.callbacks is not None:
                self._remaining += 1
                event.add_callback(self._on_child)
        if self._remaining == 0:
            self.succeed({e: e.value for e in self._events})

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({e: e.value for e in self._events})


class _Handle:
    """Cancellation handle returned by :meth:`Environment.call_at`."""

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the scheduled callback from running."""
        self.cancelled = True


class Environment:
    """The simulation environment: virtual clock plus event heap.

    Args:
        initial_time: Starting value of the clock, in seconds.

    The heap holds tuples ``(time, seq, kind, payload)`` where ``seq`` is a
    monotonically increasing tiebreaker.  ``kind`` 0 = raw callback,
    1 = event processing.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, int, Any]] = []
        self._seq = 0
        self._event_count = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Total heap entries processed so far (engine throughput metric)."""
        return self._event_count

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def call_at(
        self, when: float, fn: Callable[..., Any], *args: Any
    ) -> _Handle:
        """Run ``fn(*args)`` at absolute time ``when``; returns a handle."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past: {when} < now={self._now}"
            )
        handle = _Handle()
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, 0, (fn, args, handle)))
        return handle

    def call_in(self, delay: float, fn: Callable[..., Any], *args: Any) -> _Handle:
        """Run ``fn(*args)`` after ``delay`` seconds; returns a handle."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, fn, *args)

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, 1, event))

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` that fires after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event succeeding when the first of ``events`` completes."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event succeeding when all of ``events`` complete."""
        return AllOf(self, events)

    def process(self, generator: Any) -> "Process":
        """Start a generator as a simulated :class:`Process`."""
        from repro.sim.process import Process

        return Process(self, generator)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Process the single next heap entry."""
        when, _seq, kind, payload = heapq.heappop(self._heap)
        self._now = when
        self._event_count += 1
        if kind == 0:
            fn, args, handle = payload
            if not handle.cancelled:
                fn(*args)
        else:
            payload._process()

    def peek(self) -> float:
        """Time of the next scheduled entry, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def run(self, until: Optional[float] = None) -> Any:
        """Run until the heap drains or the clock passes ``until``.

        Returns the value carried by :class:`StopSimulation` if something
        stopped the run early, else ``None``.
        """
        try:
            if until is None:
                while self._heap:
                    self.step()
            else:
                until = float(until)
                if until < self._now:
                    raise SimulationError(
                        f"run(until={until}) is in the past (now={self._now})"
                    )
                while self._heap and self._heap[0][0] <= until:
                    self.step()
                self._now = max(self._now, until)
        except StopSimulation as stop:
            return stop.value
        return None

    def stop(self, value: Any = None) -> None:
        """Stop the current :meth:`run` immediately (callable from callbacks)."""
        raise StopSimulation(value)
