"""Pluggable compiled backends for the event core.

The simulator's hot loops are pure Python by design (byte-identical,
debuggable, dependency-free), but three of them dominate packet-tier wall
time and have compiled counterparts behind this registry:

* **C3 scoring** -- the single-pass minimum over candidate scores in
  :meth:`repro.selection.c3.C3Selector.select`;
* **fabric trunk timing** -- the chained per-hop delay accumulation in
  :meth:`repro.network.fabric.Network.transmit_fast` (the ULP-exact float
  chain that byte-identity requires);
* **trunk settlement** -- the per-pending-trunk undone-hop count in
  :meth:`repro.network.fabric.Network.settle_trunks`.

A backend is a named bundle of kernels sharing one interface
(:data:`KERNEL_NAMES`); ``repro.sim._kernels_numba`` provides the numba
``@njit`` implementations and ``repro.sim._kernels_cython`` the (optional)
Cython ones.  Neither dependency is required: resolution degrades to the
pure-Python reference loops, which remain the oracle -- every kernel mirrors
its reference loop operation for operation, and the byte-identity suites run
against every installed backend.

The **engine dispatch loop itself is deliberately not compiled**.  The
schedule containers are C already (``collections.deque``, ``heapq``), each
entry dispatches into arbitrary Python callbacks, and crossing the
compiled/interpreted boundary once per event costs more than the loop body
saves.  Measured on the Figure-4 slice, dispatch is ~4 % of wall time after
the structural work (trunk collapse, batched same-timestamp drains) --
see docs/SIMULATOR.md ("Backends") for the numbers behind this rejection.

Selection rules (``ExperimentConfig.engine_backend``):

* ``"auto"`` (default) -- numba if importable, else cython, else python;
  never raises.
* ``"python"`` -- the reference loops, always available.
* ``"numba"`` / ``"cython"`` -- that compiled backend, or
  :class:`~repro.errors.ConfigurationError` if the dependency is missing
  (explicit requests must not silently degrade: benchmark comparisons
  across backends are meaningless -- see ``repro.sim.bench --compare``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.errors import ConfigurationError

#: Every backend name accepted by :func:`resolve` (and the config knob).
BACKEND_CHOICES = ("auto", "python", "numba", "cython")

#: The kernel entry points a compiled backend module must export.  One
#: interface, two implementations: the modules are drop-in replacements.
KERNEL_NAMES = (
    "c3_select",
    "chained_arrival",
    "count_undone_hops",
    "path_chain",
    "hop_class_batch",
)

#: Where each kernel's implementations live (``path:qualname``).  This is
#: the registry behind the "edit the reference loop in the same commit"
#: rule in the kernel modules' docstrings: ``repro.sim.contracts`` turns it
#: into CON001 mirror contracts, so ``netrs contracts`` fails CI when the
#: implementations drift apart.  ``reference`` names the pure-Python oracle
#: loop (checked at runtime by the byte-identity suites; its surrounding
#: control flow differs too much for a static body pair, so the scoring
#: formula is pinned by an expression anchor instead -- see
#: ``repro.sim.contracts.EXPR_ANCHORS``).
KERNEL_MIRRORS = {
    "c3_select": {
        "reference": "src/repro/selection/c3.py:C3Selector.select",
        "numba": "src/repro/sim/_kernels_numba.py:c3_select",
        "cython": "src/repro/sim/_kernels_cython.py:c3_select",
        "cython_score": "src/repro/sim/_kernels_cython.py:_score",
    },
    "chained_arrival": {
        "reference": "src/repro/network/fabric.py:Network.transmit_fast",
        "numba": "src/repro/sim/_kernels_numba.py:chained_arrival",
        "cython": "src/repro/sim/_kernels_cython.py:chained_arrival",
    },
    "count_undone_hops": {
        "reference": "src/repro/network/fabric.py:Network.settle_trunks",
        "numba": "src/repro/sim/_kernels_numba.py:count_undone_hops",
        "cython": "src/repro/sim/_kernels_cython.py:count_undone_hops",
    },
    # Whole-request SoA kernels of the vectorized flow tier; here the
    # pure-Python "reference" is itself a numpy function (the oracle the
    # byte-identity suites compare against is the *scalar* flow engine).
    "path_chain": {
        "reference": "src/repro/mesoscale/vector.py:path_chain",
        "numba": "src/repro/sim/_kernels_numba.py:path_chain",
        "cython": "src/repro/sim/_kernels_cython.py:path_chain",
    },
    "hop_class_batch": {
        "reference": "src/repro/mesoscale/vector.py:hop_class_batch",
        "numba": "src/repro/sim/_kernels_numba.py:hop_class_batch",
        "cython": "src/repro/sim/_kernels_cython.py:hop_class_batch",
    },
}


@dataclass(frozen=True)
class Backend:
    """A resolved event-core backend.

    ``kernels`` is the module exporting :data:`KERNEL_NAMES` for compiled
    backends and ``None`` for pure Python (callers keep their reference
    loops; there is nothing to dispatch to).
    """

    name: str  # "python" | "numba" | "cython"
    compiled: bool
    version: Optional[str] = None  # the compiler package's version
    kernels: Optional[object] = field(default=None, compare=False)

    def describe(self) -> str:
        """``"python"`` or e.g. ``"numba-0.59.1"`` (for bench metadata)."""
        if self.version is None:
            return self.name
        return f"{self.name}-{self.version}"


def numba_version() -> Optional[str]:
    """Installed numba version, or None."""
    try:
        import numba  # noqa: F401 -- availability probe
    except ImportError:
        return None
    return getattr(numba, "__version__", "unknown")


def cython_version() -> Optional[str]:
    """Installed Cython version, or None."""
    try:
        import Cython  # noqa: F401 -- availability probe
    except ImportError:
        return None
    return getattr(Cython, "__version__", "unknown")


def available_backends() -> Tuple[str, ...]:
    """Concrete backends importable right now (``python`` always is)."""
    names = ["python"]
    if numba_version() is not None:
        names.append("numba")
    if cython_version() is not None:
        names.append("cython")
    return tuple(names)


def _load_kernels(name: str) -> object:
    if name == "numba":
        from repro.sim import _kernels_numba as kernels
    else:
        from repro.sim import _kernels_cython as kernels  # type: ignore[no-redef]
    missing = [k for k in KERNEL_NAMES if not callable(getattr(kernels, k, None))]
    if missing:  # pragma: no cover - guards future kernel additions
        raise ConfigurationError(
            f"backend {name!r} is missing kernels: {', '.join(missing)}"
        )
    return kernels


def resolve(name: str = "auto") -> Backend:
    """Resolve a backend name to a :class:`Backend`.

    ``"auto"`` prefers numba over cython over python and never raises;
    explicitly requesting an unavailable compiled backend raises
    :class:`ConfigurationError` (silent degradation would invalidate any
    benchmark comparison made against the run).
    """
    if name not in BACKEND_CHOICES:
        raise ConfigurationError(
            f"unknown engine backend {name!r}; choose from {BACKEND_CHOICES}"
        )
    if name == "auto":
        if numba_version() is not None:
            name = "numba"
        elif cython_version() is not None:
            name = "cython"
        else:
            return Backend("python", compiled=False)
    if name == "python":
        return Backend("python", compiled=False)
    version = numba_version() if name == "numba" else cython_version()
    if version is None:
        raise ConfigurationError(
            f"engine_backend={name!r} was requested explicitly but {name} is "
            "not installed; use 'auto' to fall back to pure Python"
        )
    return Backend(name, compiled=True, version=version, kernels=_load_kernels(name))
