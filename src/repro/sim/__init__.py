"""Discrete-event simulation engine.

This subpackage is the substrate every other component runs on.  It provides:

* :class:`~repro.sim.core.Environment` -- the event loop with a virtual clock,
* :class:`~repro.sim.core.Event` and :class:`~repro.sim.core.Timeout` -- the
  primitive synchronization objects,
* :class:`~repro.sim.process.Process` -- generator-based simulated processes,
* :mod:`~repro.sim.resources` -- queues and capacity-limited resources,
* :mod:`~repro.sim.rng` -- named, reproducible random streams,
* :mod:`~repro.sim.probes` -- measurement helpers (counters, latency
  recorders, time series).

The engine is deliberately simpy-like so that modeling code reads naturally,
but it also exposes a cheap callback API (:meth:`Environment.call_at` /
:meth:`Environment.call_in`) used on the per-packet hot path where spinning up
a generator per hop would be wasteful.
"""

from repro.sim.core import (
    Environment,
    Event,
    Interrupt,
    SimulationError,
    StopSimulation,
    Timeout,
)
from repro.sim.process import Process
from repro.sim.probes import Counter, LatencyRecorder, TimeSeries, WelfordStats
from repro.sim.resources import Resource, Store
from repro.sim.rng import BatchedStream, RngRegistry

__all__ = [
    "BatchedStream",
    "Counter",
    "Environment",
    "Event",
    "Interrupt",
    "LatencyRecorder",
    "Process",
    "Resource",
    "RngRegistry",
    "SimulationError",
    "StopSimulation",
    "Store",
    "TimeSeries",
    "Timeout",
    "WelfordStats",
]
