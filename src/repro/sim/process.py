"""Generator-based simulated processes.

A process is a Python generator that ``yield``\\ s :class:`~repro.sim.core.Event`
objects.  Each yield suspends the process until the event is processed; the
event's value is sent back into the generator (or its exception thrown in).

Example::

    def server(env, store):
        while True:
            request = yield store.get()
            yield env.timeout(0.004)
            request.done.succeed()

    env.process(server(env, store))

A :class:`Process` is itself an :class:`Event` that succeeds with the
generator's return value, so processes can wait on each other.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.sim.core import Environment, Event, Interrupt, SimulationError


class Process(Event):
    """Wraps a generator and steps it through the event loop."""

    __slots__ = ("_generator", "_waiting_on", "name")

    def __init__(
        self,
        env: Environment,
        generator: Generator[Event, Any, Any],
        name: str = "",
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        super().__init__(env)
        self._generator = generator
        self._waiting_on: Event | None = None
        self.name = name or getattr(generator, "__name__", "process")
        # Kick off on the next heap pop at the current time so construction
        # order does not matter within a timestep.
        bootstrap = Event(env)
        bootstrap.succeed()
        bootstrap.add_callback(self._resume)
        self._waiting_on = bootstrap

    @property
    def is_alive(self) -> bool:
        """Whether the underlying generator has not finished yet."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The event the process was waiting on is detached: its eventual
        completion no longer resumes the process.
        """
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        if self._waiting_on is None:
            raise SimulationError(f"process {self.name!r} is not waiting")
        waited = self._waiting_on
        self._waiting_on = None
        if waited.callbacks is not None:
            try:
                waited.callbacks.remove(self._resume)
            except ValueError:
                pass
        interrupt_event = Event(self.env)
        interrupt_event.add_callback(self._resume)
        interrupt_event.fail(Interrupt(cause))
        self._waiting_on = interrupt_event

    def _resume(self, event: Event) -> None:
        if self._waiting_on is not event:
            return  # stale wakeup after an interrupt detached it
        self._waiting_on = None
        try:
            if event.ok:
                target = self._generator.send(event.value)
            else:
                target = self._generator.throw(event.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # Process chose not to handle its interruption: treat as failure.
            self.fail(SimulationError(f"process {self.name!r} killed by interrupt"))
            return
        if not isinstance(target, Event):
            self._generator.close()
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {target!r}; expected an Event"
                )
            )
            return
        if target.callbacks is None:
            # Already processed: resume immediately via a fresh trampoline so
            # we do not recurse arbitrarily deep.
            trampoline = Event(self.env)
            trampoline.add_callback(self._resume)
            self._waiting_on = trampoline
            if target.ok:
                trampoline.succeed(target.value)
            else:
                trampoline.fail(target.value)
        else:
            target.add_callback(self._resume)
            self._waiting_on = target

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.is_alive else "done"
        return f"<Process {self.name!r} {state}>"
