"""Named, reproducible random-number streams.

Every stochastic component in the simulation (arrival process, key sampler,
each server's fluctuation, ...) draws from its own ``numpy.random.Generator``.
Streams are derived from one experiment seed by *name*, so

* the whole experiment is reproducible from a single integer, and
* adding a new consumer does not perturb the draws of existing ones (unlike
  sharing one generator).

Names are hashed through ``SeedSequence(root, name_bytes)`` which gives
statistically independent child streams.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RngRegistry:
    """Factory of named child generators derived from one root seed."""

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always maps to the same stream within a registry.
        """
        generator = self._streams.get(name)
        if generator is None:
            # Stable 32-bit digest of the name keeps spawn keys deterministic
            # across processes and Python builds (hash() is salted).
            digest = zlib.crc32(name.encode("utf-8"))
            sequence = np.random.SeedSequence(entropy=(self.seed, digest))
            generator = np.random.Generator(np.random.PCG64(sequence))
            self._streams[name] = generator
        return generator

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RngRegistry seed={self.seed} streams={len(self._streams)}>"


def stream_from_seed(seed: int, name: str) -> np.random.Generator:
    """One named stream derived from ``seed``, without keeping a registry.

    Convenience for entry points that accept ``rng=None`` plus a ``seed``:
    the fallback generator is identical to ``RngRegistry(seed).stream(name)``,
    so ad-hoc callers and the full experiment harness draw from the same
    deterministic universe.
    """
    return RngRegistry(seed).stream(name)
